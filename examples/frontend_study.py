#!/usr/bin/env python3
"""Front-end sensitivity study: the kind of work ChampSim users do.

Sweeps front-end parameters of the timing model on one converted trace:
direction predictor, BTB capacity, FDIP runahead depth, and the
decoupled-front-end toggle — showing how the trace-conversion fidelity
question of the paper interacts with front-end research questions
(cf. the paper's discussion of Ishii et al.).

Run::

    python examples/frontend_study.py [trace-name]
"""

import sys

from repro.core import Converter, Improvement
from repro.sim import SimConfig, Simulator
from repro.synth import make_trace


def run(instrs, rules, **overrides):
    return Simulator(SimConfig.main(**overrides)).run(instrs, rules)


def main() -> int:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "secret_srv155"
    records = make_trace(trace_name, 20_000)
    converter = Converter(Improvement.ALL)
    instrs = list(converter.convert(records))
    rules = converter.required_branch_rules

    print(f"trace {trace_name!r}: {len(instrs)} converted instructions\n")

    print("direction predictor sweep:")
    for predictor in ("bimodal", "gshare", "tage"):
        stats = run(instrs, rules, direction_predictor=predictor)
        print(f"  {predictor:8s} IPC={stats.ipc:.3f} "
              f"direction-MPKI={stats.direction_mpki:.2f}")

    print("\nBTB capacity sweep:")
    for entries in (1024, 4096, 16384):
        stats = run(instrs, rules, btb_entries=entries)
        print(f"  {entries:6d} entries  IPC={stats.ipc:.3f} "
              f"target-MPKI={stats.target_mpki:.2f}")

    print("\nFDIP runahead sweep (decoupled front-end):")
    for lookahead in (0, 4, 12, 24):
        stats = run(instrs, rules, fdip_lookahead=lookahead)
        print(f"  {lookahead:3d} lines  IPC={stats.ipc:.3f} "
              f"L1I-MPKI={stats.l1i_mpki:.2f}")

    print("\ncoupled vs decoupled front-end (the Ishii et al. point):")
    coupled = run(instrs, rules, decoupled_frontend=False, fdip_lookahead=0)
    decoupled = run(instrs, rules)
    print(f"  coupled    IPC={coupled.ipc:.3f} L1I-MPKI={coupled.l1i_mpki:.2f}")
    print(f"  decoupled  IPC={decoupled.ipc:.3f} L1I-MPKI={decoupled.l1i_mpki:.2f}")
    print("  (instruction prefetchers evaluated on a coupled front-end "
          "overstate their value — paper Section 4.4)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
