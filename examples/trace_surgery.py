#!/usr/bin/env python3
"""Trace surgery: watch the converter's per-instruction decisions.

Walks a synthetic CVP-1 trace and shows, side by side, how the original
and improved converters translate the interesting instruction kinds the
paper discusses: base-update loads (addressing-mode inference), BLR-X30
calls (the call-stack bug), destination-less compares (flag-reg), and
conditional branches with register sources (branch-regs).

Run::

    python examples/trace_surgery.py
"""

from repro.champsim.branch_info import deduce_branch_type
from repro.core import Converter, Improvement
from repro.cvp.addrmode import infer_addressing
from repro.cvp.isa import InstClass, LINK_REGISTER
from repro.cvp.reader import CvpTraceReader
from repro.synth import make_trace


def describe(instr):
    return (
        f"ip={instr.ip:#x} src={instr.src_regs} dst={instr.dst_regs} "
        f"mem_src={tuple(hex(a) for a in instr.src_mem)} "
        f"mem_dst={tuple(hex(a) for a in instr.dst_mem)}"
    )


def show(record, reader):
    original = Converter(Improvement.NONE)
    improved = Converter(Improvement.ALL)
    print(f"\nCVP-1 record @ {record.pc:#x}  class={record.inst_class.name}")
    print(f"  srcs={record.src_regs} dsts={record.dst_regs}", end="")
    if record.is_memory:
        info = infer_addressing(record, reader.registers)
        print(f" ea={record.mem_address:#x} size={record.mem_size} "
              f"-> inferred addressing: {info.mode.value}", end="")
    print()
    for label, converter in (("original", original), ("improved", improved)):
        out = converter.convert_record(record, reader.registers)
        for instr in out:
            kind = deduce_branch_type(instr, converter.required_branch_rules)
            print(f"  [{label}] {describe(instr)}  ({kind.value})")


def main() -> int:
    records = make_trace("srv_3", 30_000)
    reader = CvpTraceReader(records)

    seen = set()
    wanted = {
        "base-update load": lambda r, rd: r.is_load
        and infer_addressing(r, rd.registers).is_base_update,
        "BLR X30 (call-stack bug)": lambda r, rd: r.is_branch
        and LINK_REGISTER in r.src_regs
        and LINK_REGISTER in r.dst_regs,
        "zero-destination compare": lambda r, rd: r.inst_class is InstClass.ALU
        and not r.dst_regs,
        "cb(n)z-style conditional": lambda r, rd: r.inst_class
        is InstClass.COND_BRANCH
        and bool(r.src_regs),
        "software prefetch": lambda r, rd: r.is_load and not r.dst_regs,
        "genuine return": lambda r, rd: r.inst_class
        is InstClass.UNCOND_INDIRECT_BRANCH
        and LINK_REGISTER in r.src_regs
        and not r.dst_regs,
    }

    for record in reader.records_with_registers():
        for label, predicate in wanted.items():
            if label not in seen and predicate(record, reader):
                seen.add(label)
                print(f"\n{'=' * 70}\n{label.upper()}")
                show(record, reader)
        if len(seen) == len(wanted):
            break

    missing = set(wanted) - seen
    if missing:
        print(f"\n(not encountered in this trace: {sorted(missing)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
