#!/usr/bin/env python3
"""Mini IPC-1 championship: re-rank instruction prefetchers (Table 3).

Runs the eight IPC-1 prefetcher submissions over a sample of the IPC-1
trace suite on the contest's simulator configuration, once on traces
from the original converter ("competition traces") and once on traces
with the paper's fixes ("fixed traces"), then prints both rankings —
the paper's Table 3.

Run::

    python examples/ipc1_rerank.py [traces] [instructions]
"""

import sys

from repro.experiments.report import render_table3
from repro.experiments.runner import ExperimentRunner
from repro.experiments.tables import table3


def main() -> int:
    limit = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 10_000

    runner = ExperimentRunner(
        instructions=instructions, limit=limit, stride=7
    )
    names = runner.ipc1_trace_names()
    print(f"Re-running the IPC-1 championship on {len(names)} traces "
          f"({instructions} instructions each): {', '.join(names)}")
    print("This takes a couple of minutes (2 trace sets x 9 configurations "
          "per trace)...\n")

    data = table3(runner)
    print(render_table3(data))

    moved = [
        entry.prefetcher
        for entry in data.competition
        if data.rank_of(entry.prefetcher, fixed=True) != entry.rank
    ]
    if moved:
        print(f"\nRank changes on fixed traces: {', '.join(moved)} — the "
              "paper's point: trace fidelity can reorder a championship.")
    else:
        print("\nNo rank changes at this sample size; try more traces or "
              "longer traces.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
