#!/usr/bin/env python3
"""Quickstart: generate a trace, convert it both ways, compare the runs.

This is the paper's core experiment in miniature: the same synthetic
CVP-1 workload converted with the *original* ``cvp2champsim`` behaviour
and with all six improvements, simulated on the paper's Section 4
configuration.

Run::

    python examples/quickstart.py [trace-name] [instructions]
"""

import sys

from repro.core import Converter, Improvement
from repro.sim import SimConfig, Simulator
from repro.synth import make_trace


def main() -> int:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "srv_3"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    print(f"Generating synthetic CVP-1 trace {trace_name!r} "
          f"({instructions} instructions)...")
    records = make_trace(trace_name, instructions)

    results = {}
    for label, improvements in (
        ("original converter", Improvement.NONE),
        ("improved converter", Improvement.ALL),
    ):
        converter = Converter(improvements)
        instrs = list(converter.convert(records))
        stats = Simulator(SimConfig.main()).run(
            instrs, converter.required_branch_rules
        )
        results[label] = stats
        print(f"\n=== {label} "
              f"({converter.stats.instructions_out} ChampSim instructions) ===")
        print(stats.summary())
        if improvements is Improvement.ALL:
            cs = converter.stats
            print(
                f"converter activity: {cs.base_updates_split} base-update "
                f"splits, {cs.misclassified_calls_fixed} calls re-classified, "
                f"{cs.flag_dsts_added} flag destinations added, "
                f"{cs.two_line_accesses} line-crossing accesses"
            )

    orig = results["original converter"]
    imp = results["improved converter"]
    delta = 100 * (imp.ipc / orig.ipc - 1)
    print(f"\nIPC with higher-fidelity conversion: {imp.ipc:.3f} vs "
          f"{orig.ipc:.3f} ({delta:+.1f}%)")
    print("(The paper: the IPC of 43 of the 135 CVP-1 public traces moves "
          "by more than 5%.)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
