#!/usr/bin/env python3
"""Value prediction on CVP-1 traces — the traces' original purpose.

The CVP-1 traces were released for the first Championship Value
Prediction.  This example runs the classic predictor family on a
synthetic CVP-1 trace through the reimplemented championship simulator,
and then demonstrates the *fidelity flaw* the paper's introduction
recounts: the CVP-1 infrastructure attached memory latency to every
output register of a load, including updated base registers, which the
cancelled CVP-2 patched.

Run::

    python examples/value_prediction.py [trace-name] [instructions]
"""

import sys

from repro.cvpsim import CvpSimulator, make_value_predictor
from repro.synth import make_trace


def main() -> int:
    trace_name = sys.argv[1] if len(sys.argv) > 1 else "compute_int_5"
    instructions = int(sys.argv[2]) if len(sys.argv) > 2 else 20_000

    records = make_trace(trace_name, instructions)
    print(f"championship run on {trace_name!r} ({instructions} instructions)\n")

    print(f"{'predictor':12s} {'IPC':>6s} {'coverage':>9s} {'accuracy':>9s} "
          f"{'speedup':>8s}")
    print("-" * 50)
    baseline = None
    for name in ("none", "last-value", "stride", "context", "composite"):
        stats = CvpSimulator(make_value_predictor(name)).run(records)
        if baseline is None:
            baseline = stats.ipc
        print(f"{name:12s} {stats.ipc:6.3f} {100 * stats.coverage:8.1f}% "
              f"{100 * stats.accuracy:8.1f}% {stats.ipc / baseline:8.3f}x")

    print("\nThe CVP-1 base-update latency flaw (paper introduction):")
    flawed = CvpSimulator(base_update_fix=False).run(records)
    fixed = CvpSimulator(base_update_fix=True).run(records)
    print(f"  CVP-1 behaviour (base registers wait for memory): "
          f"IPC={flawed.ipc:.3f}")
    print(f"  CVP-2 patch     (base registers ready at ALU):    "
          f"IPC={fixed.ipc:.3f} "
          f"({100 * (fixed.ipc / flawed.ipc - 1):+.1f}%)")
    print("  — the same inaccuracy the converter's base-update improvement "
          "removes on the ChampSim side.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
