"""Cache-hierarchy tests: latency classes, MPKI accounting, prefetch flow."""

from repro.sim.cache.hierarchy import CacheHierarchy
from repro.sim.config import SimConfig
from repro.sim.stats import SimStats


def hierarchy():
    stats = SimStats()
    return CacheHierarchy(SimConfig.main(), stats), stats


def test_cold_access_costs_dram_latency():
    h, stats = hierarchy()
    result = h.access_data(0x10, 0x100000, now=0)
    assert result.source == "DRAM"
    assert result.latency == h.dram_latency
    assert stats.cache_misses == {"L1D": 1, "L2": 1, "LLC": 1}


def test_warm_access_hits_l1():
    h, stats = hierarchy()
    h.access_data(0x10, 0x100000, now=0)
    result = h.access_data(0x10, 0x100000, now=1000)
    assert result.source == "L1"
    assert result.latency == h.l1d.latency


def test_in_flight_merge_counts_as_miss_with_residual_latency():
    h, stats = hierarchy()
    h.access_data(0x10, 0x100000, now=0)  # fill arrives at t=200
    result = h.access_data(0x10, 0x100000, now=50)
    assert result.source == "L1-inflight"
    assert result.latency == 150
    assert stats.cache_misses["L1D"] == 2


def test_instruction_and_data_sides_are_separate():
    h, stats = hierarchy()
    h.access_instruction(0x400000, now=0)
    assert "L1I" in stats.cache_misses
    assert "L1D" not in stats.cache_misses
    # ...but both share the L2: the second request hits there.
    result = h.access_data(0x10, 0x400000, now=1000)
    assert result.source == "L2"


def test_l2_hit_after_l1_eviction():
    h, stats = hierarchy()
    h.access_data(0x10, 0x100000, now=0)
    # Blow the L1D with conflicting lines (same set, > ways).
    sets = h.l1d.num_sets
    for i in range(1, h.l1d.ways + 2):
        h.access_data(0x10, 0x100000 + i * sets * 64, now=10 * i)
    result = h.access_data(0x10, 0x100000, now=10_000)
    assert result.source in ("L2", "LLC")
    assert result.latency < h.dram_latency


def test_prefetch_data_fills_l2_without_demand_miss_counts():
    h, stats = hierarchy()
    h.prefetch_data(0x200000, now=0)
    assert stats.cache_misses.get("L2", 0) == 0
    assert stats.prefetches_issued["L2"] == 1
    result = h.access_data(0x10, 0x200000, now=1000)
    assert result.source == "L2"


def test_prefetch_into_l1_reduces_demand_latency():
    h, stats = hierarchy()
    h.prefetch_data(0x200000, now=0, fill_l1=True)
    result = h.access_data(0x10, 0x200000, now=1000)
    assert result.source == "L1"


def test_prefetch_timeliness_residual():
    h, stats = hierarchy()
    h.prefetch_instruction(0x400000, now=0)  # cold: arrives at t=200
    result = h.access_instruction(0x400000, now=100)
    assert result.source == "L1-inflight"
    assert result.latency == 100


def test_duplicate_prefetch_is_free():
    h, stats = hierarchy()
    h.prefetch_instruction(0x400000, now=0)
    h.prefetch_instruction(0x400000, now=5)
    assert stats.prefetches_issued["L1I"] == 1


def test_stats_gating():
    h, stats = hierarchy()
    stats.enabled = False
    h.access_data(0x10, 0x100000, now=0)
    assert stats.cache_misses == {}
    stats.enabled = True
    h.access_data(0x10, 0x900000, now=0)
    assert stats.cache_misses["L1D"] == 1
