"""Binary encoding tests, including hypothesis round-trips."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cvp.encoding import TraceFormatError, decode_record, encode_record
from repro.cvp.isa import FIRST_VEC_REGISTER, InstClass
from repro.cvp.record import CvpRecord

from tests.conftest import alu, branch, load, store


def roundtrip(record):
    return decode_record(io.BytesIO(encode_record(record)))


def test_alu_roundtrip():
    record = alu(dsts=(1, 2), srcs=(3,), values=(10, 20))
    assert roundtrip(record) == record


def test_load_roundtrip():
    record = load(dsts=(4,), srcs=(5,), address=0xABCDEF00, size=16)
    assert roundtrip(record) == record


def test_store_roundtrip():
    record = store(srcs=(6, 7), address=0x1234, size=64)
    assert roundtrip(record) == record


def test_taken_branch_roundtrip():
    record = branch(taken=True, target=0xFFFF_FFFF_FFFF_0000)
    assert roundtrip(record) == record


def test_not_taken_branch_roundtrip():
    record = branch(taken=False)
    assert roundtrip(record) == record


def test_simd_values_use_sixteen_bytes():
    small = alu(dsts=(1,), values=(1,))
    simd = alu(dsts=(FIRST_VEC_REGISTER,), values=(1,))
    assert len(encode_record(simd)) == len(encode_record(small)) + 8


def test_simd_128bit_value_roundtrip():
    value = (0xAAAA_BBBB_CCCC_DDDD << 64) | 0x1111_2222_3333_4444
    record = alu(dsts=(40,), values=(value,), cls=InstClass.FP)
    assert roundtrip(record).dst_values == (value,)


def test_empty_stream_decodes_to_none():
    assert decode_record(io.BytesIO(b"")) is None


def test_truncated_pc_raises():
    with pytest.raises(TraceFormatError):
        decode_record(io.BytesIO(b"\x00\x01\x02"))


def test_truncated_mid_record_raises():
    data = encode_record(load())
    with pytest.raises(TraceFormatError):
        decode_record(io.BytesIO(data[:-3]))


def test_invalid_instruction_class_raises():
    data = bytearray(encode_record(alu()))
    data[8] = 99  # instruction-class byte
    with pytest.raises(TraceFormatError):
        decode_record(io.BytesIO(bytes(data)))


def test_records_are_self_delimiting():
    records = [alu(pc=0x10), load(pc=0x20), branch(pc=0x30)]
    stream = io.BytesIO(b"".join(encode_record(r) for r in records))
    decoded = [decode_record(stream) for _ in records]
    assert decoded == records
    assert decode_record(stream) is None


# ---------------------------------------------------------------------------
# property-based round-trips
# ---------------------------------------------------------------------------

registers = st.integers(min_value=0, max_value=63)
u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


@st.composite
def arbitrary_records(draw):
    cls = draw(st.sampled_from(list(InstClass)))
    pc = draw(u64)
    srcs = tuple(draw(st.lists(registers, max_size=5)))
    dsts = tuple(draw(st.lists(registers, max_size=3)))
    values = []
    for reg in dsts:
        if reg >= FIRST_VEC_REGISTER:
            values.append(draw(st.integers(min_value=0, max_value=(1 << 128) - 1)))
        else:
            values.append(draw(u64))
    kwargs = dict(
        pc=pc,
        inst_class=cls,
        src_regs=srcs,
        dst_regs=dsts,
        dst_values=tuple(values),
    )
    if cls in (InstClass.LOAD, InstClass.STORE):
        kwargs["mem_address"] = draw(u64)
        kwargs["mem_size"] = draw(st.integers(min_value=0, max_value=255))
    if cls in (
        InstClass.COND_BRANCH,
        InstClass.UNCOND_DIRECT_BRANCH,
        InstClass.UNCOND_INDIRECT_BRANCH,
    ):
        taken = draw(st.booleans())
        kwargs["branch_taken"] = taken
        if taken:
            kwargs["branch_target"] = draw(u64)
    return CvpRecord(**kwargs)


@given(arbitrary_records())
@settings(max_examples=200)
def test_encode_decode_roundtrip_property(record):
    assert roundtrip(record) == record


@given(st.lists(arbitrary_records(), max_size=20))
@settings(max_examples=50)
def test_stream_roundtrip_property(records):
    stream = io.BytesIO(b"".join(encode_record(r) for r in records))
    decoded = []
    while True:
        record = decode_record(stream)
        if record is None:
            break
        decoded.append(record)
    assert decoded == records
