"""Chaos tier: injected faults vs. the hardened fleet, differentially.

The recovery machinery (retry policy, pool restarts, hung-worker kills,
serial degradation) is only trustworthy if it is *invisible* in the
results: a sweep that survives injected crashes, hangs and transient
exceptions must produce bit-identical stats to the fault-free run.
These tests install deterministic :class:`~repro.faults.plan.FaultPlan`
schedules around real simulation tasks and assert exactly that — plus
the failure-side contracts (quarantine on exhausted retries,
``PoolRecoveryError`` when degradation is disabled).

Fault schedules are counter-based *per process*: with ``count=1`` every
worker fires the site once, so pool rounds keep failing until the
restart budget degrades the batch to serial — where the parent fires
its own single fault, recovers, and finishes.  The tests pick attempt
budgets generously above the worst-case charge count so recovery (not
quarantine) is the guaranteed outcome.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core.improvements import Improvement
from repro.experiments.parallel import (
    PoolRecoveryError,
    RunTask,
    TaskFailure,
    execute_task,
    run_tasks,
)
from repro.faults import FaultPlan, RetryPolicy
from repro.sim.config import SimConfig

SAMPLE_NAMES = ["srv_0", "srv_3", "compute_int_1", "crypto_1"]
INSTRUCTIONS = 800


@pytest.fixture(autouse=True)
def clean_faults():
    faults.install(None)
    yield
    faults.install(None)


def _tasks(names=None):
    return [
        RunTask(
            name=name,
            improvements=Improvement.NONE,
            config=SimConfig.main(),
            instructions=INSTRUCTIONS,
        )
        for name in (names or SAMPLE_NAMES)
    ]


@pytest.fixture(scope="module")
def baseline():
    """Fault-free results to diff every recovered chaos run against."""
    return run_tasks(_tasks(), jobs=1)


def _assert_identical(results, expected):
    assert [r.trace for r in results] == [e.trace for e in expected]
    assert [r.stats for r in results] == [e.stats for e in expected]
    assert [r.conversion for r in results] == [e.conversion for e in expected]


# ----------------------------------------------------------------------
# recovered faults are invisible in the results
# ----------------------------------------------------------------------


def test_transient_exception_recovery_is_byte_identical(baseline):
    faults.install(FaultPlan.parse("worker.exc:count=1"))
    results = run_tasks(
        _tasks(), jobs=2, policy=RetryPolicy(attempts=4)
    )
    _assert_identical(results, baseline)


def test_serial_crash_degrades_to_retryable_exception(baseline):
    """Outside a pool worker, worker.crash raises instead of exiting."""
    faults.install(FaultPlan.parse("worker.crash:count=1"))
    results = run_tasks(_tasks(), jobs=1, policy=RetryPolicy(attempts=3))
    _assert_identical(results, baseline)


def test_pool_crash_recovery_is_byte_identical(baseline):
    """A worker hard-killed mid-batch (BrokenProcessPool) is survived.

    Every fresh worker crashes its first task (count=1 per process), so
    pool rounds burn the restart budget; the batch then degrades to
    serial, where the parent's own single injected crash is a retryable
    exception.  The attempt budget absorbs the crash strikes charged to
    in-flight tasks at each pool break.
    """
    faults.install(FaultPlan.parse("worker.crash:count=1"))
    results = run_tasks(
        _tasks(),
        jobs=2,
        policy=RetryPolicy(attempts=10),
        max_pool_restarts=1,
    )
    _assert_identical(results, baseline)


def test_hung_worker_timeout_recovery_is_byte_identical(baseline):
    """A hung worker is cut off by the per-task timeout and retried.

    Workers hang their first task for longer than the timeout, so the
    supervisor kills and restarts the pool; after the restart budget the
    batch degrades to serial, where the parent's single injected hang
    merely delays (the 2s sleep) before the task completes.
    """
    faults.install(FaultPlan.parse("worker.hang:count=1:seconds=2"))
    results = run_tasks(
        _tasks(),
        jobs=2,
        timeout=0.75,
        policy=RetryPolicy(attempts=10),
        max_pool_restarts=1,
    )
    _assert_identical(results, baseline)


def test_faults_off_hot_path_unchanged(baseline):
    """No plan installed: the injection layer must be invisible too."""
    assert faults.enabled() is False
    results = run_tasks(_tasks(), jobs=2)
    _assert_identical(results, baseline)


# ----------------------------------------------------------------------
# unrecoverable faults surface as typed failures
# ----------------------------------------------------------------------


def test_exhausted_retries_quarantine_with_tracebacks():
    faults.install(FaultPlan.parse("worker.exc:count=0"))  # every attempt
    with pytest.raises(TaskFailure) as excinfo:
        run_tasks(
            _tasks(SAMPLE_NAMES[:3]),
            jobs=2,
            policy=RetryPolicy(attempts=2),
        )
    failure = excinfo.value
    assert {task.name for task, _ in failure.failures} == set(SAMPLE_NAMES[:3])
    assert "injected transient worker exception" in str(failure)
    assert failure.summary() == str(failure).splitlines()[0]
    assert "3 task(s) failed after retry" in failure.summary()


def test_fatal_exception_is_not_retried():
    """A fatal-classified failure must quarantine on the first attempt."""
    faults.install(FaultPlan.parse("worker.exc:count=1"))
    with pytest.raises(TaskFailure) as excinfo:
        run_tasks(
            _tasks(SAMPLE_NAMES[:1]),
            jobs=1,
            policy=RetryPolicy(attempts=5, fatal=("InjectedFault",)),
        )
    assert len(excinfo.value.failures) == 1


def test_pool_recovery_error_when_degradation_disabled():
    faults.install(FaultPlan.parse("worker.crash:count=0"))
    with pytest.raises(PoolRecoveryError, match="worker pool broke"):
        run_tasks(
            _tasks(),
            jobs=2,
            policy=RetryPolicy(attempts=50),
            max_pool_restarts=0,
            allow_degrade=False,
        )


# ----------------------------------------------------------------------
# failure paths are observable
# ----------------------------------------------------------------------


def test_chaos_run_emits_fault_and_task_events(tmp_path):
    import repro.obs as obs
    from repro.obs import events

    log = tmp_path / "obs.jsonl"
    obs.configure(log=log, program="pytest-chaos")
    try:
        faults.install(FaultPlan.parse("worker.exc:count=1"))
        run_tasks(
            _tasks(SAMPLE_NAMES[:2]),
            jobs=1,
            policy=RetryPolicy(attempts=3),
        )
        obs.finalize()
    finally:
        faults.install(None)
        from repro.obs import metrics, state

        for var in (
            state.OBS_ENV,
            state.LOG_ENV,
            state.MAIN_PID_ENV,
            state.PROM_ENV,
            state.PROGRAM_ENV,
        ):
            import os

            os.environ.pop(var, None)
        state.refresh()
        metrics.registry().reset()
        events.reset_sink()
        obs._finalized = False
    rows = list(events.iter_events(log))
    kinds = {
        row.get("name")
        for row in rows
        if row.get("type") == "event"
    }
    assert "fault.injected" in kinds
    assert "task.retry" in kinds
