"""Front-end-specific engine tests: BTB re-steer, fetch grouping, widths."""

import random

from repro.champsim.regs import (
    REG_FLAGS,
    REG_INSTRUCTION_POINTER as IP,
)
from repro.champsim.trace import ChampSimInstr
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator


def run(instrs, **overrides):
    config = SimConfig.main(
        l1d_prefetcher="", l2_prefetcher="", fdip_lookahead=0, **overrides
    )
    return Simulator(config).run(instrs)


def alu(ip, dst=1):
    return ChampSimInstr(ip=ip, dst_regs=(dst,))


def jump(ip):
    return ChampSimInstr(ip=ip, is_branch=True, branch_taken=True, dst_regs=(IP,))


def test_btb_miss_resteer_costs_cycles():
    """Taken jumps pay the BTB-miss bubble until the BTB warms."""
    instrs = []
    for i in range(800):
        src = 0x400000 if i % 2 == 0 else 0x480000
        instrs.append(jump(src))
    cheap = run(instrs, btb_miss_penalty=0)
    costly = run(instrs, btb_miss_penalty=30)
    # After warm-up both BTB-hit; the difference accrues in the cold
    # phase only, so the cheap re-steer must never be slower.
    assert cheap.cycles <= costly.cycles


def test_fetch_width_limits_ipc():
    instrs = [alu(0x400000 + 4 * (i % 16), dst=1 + i % 4) for i in range(3000)]
    narrow = run(instrs, fetch_width=1)
    wide = run(instrs, fetch_width=6)
    assert wide.ipc > 2.5 * narrow.ipc
    assert narrow.ipc <= 1.01


def test_dispatch_width_limits_ipc():
    instrs = [alu(0x400000 + 4 * (i % 16), dst=1 + i % 4) for i in range(3000)]
    narrow = run(instrs, dispatch_width=2)
    wide = run(instrs, dispatch_width=6)
    assert narrow.ipc <= 2.02
    assert wide.ipc > narrow.ipc


def test_exec_width_limits_ipc():
    instrs = [alu(0x400000 + 4 * (i % 16), dst=1 + i % 4) for i in range(3000)]
    narrow = run(instrs, exec_width=1)
    assert narrow.ipc <= 1.01


def test_retire_width_limits_ipc():
    instrs = [alu(0x400000 + 4 * (i % 16), dst=1 + i % 4) for i in range(3000)]
    narrow = run(instrs, retire_width=1)
    assert narrow.ipc <= 1.01


def test_frontend_depth_sets_mispredict_floor():
    """Deeper pipelines pay more per mispredict."""
    rng = random.Random(2)
    instrs = []
    for i in range(1200):
        ip = 0x400000 + 8 * (i % 8)
        taken = rng.random() < 0.5
        instrs.append(
            ChampSimInstr(
                ip=ip,
                is_branch=True,
                branch_taken=taken,
                src_regs=(IP, REG_FLAGS),
                dst_regs=(IP,),
            )
        )
    shallow = run(instrs, frontend_depth=4)
    deep = run(instrs, frontend_depth=24)
    assert deep.cycles > shallow.cycles * 1.3


def test_taken_branches_break_fetch_groups():
    """A taken branch per instruction halves fetch throughput at best."""
    straight = [alu(0x400000 + 4 * (i % 16), dst=1 + i % 4) for i in range(2000)]
    jumpy = []
    for i in range(2000):
        src = 0x400000 if i % 2 == 0 else 0x400100
        jumpy.append(jump(src))
    assert run(straight).ipc > run(jumpy).ipc
