"""Arithmetic helpers of the experiment runner."""

import pytest

from repro.core.improvements import Improvement
from repro.experiments.runner import ExperimentRunner, geomean


def test_geomean_basic():
    assert geomean([1.0]) == pytest.approx(1.0)
    assert geomean([4.0, 1.0]) == pytest.approx(2.0)
    assert geomean([0.5, 2.0]) == pytest.approx(1.0)


def test_stride_and_limit_compose():
    runner = ExperimentRunner(instructions=100, stride=50, limit=2)
    names = runner.public_trace_names()
    assert len(names) == 2
    full = ExperimentRunner(instructions=100).public_trace_names()
    assert names == full[::50][:2]


def test_ipc_variation_signs():
    runner = ExperimentRunner(instructions=3000)
    name = "srv_3"  # carries the call-stack bug
    gain = runner.ipc_variation(name, Improvement.CALL_STACK)
    assert gain >= 0  # fixing misclassified calls can only help here


def test_geomean_variation_matches_manual():
    runner = ExperimentRunner(instructions=2000)
    names = ["crypto_0", "crypto_1"]
    variation = runner.geomean_variation(names, Improvement.BASE_UPDATE)
    base = geomean(
        runner.run(n, Improvement.NONE).stats.ipc for n in names
    )
    improved = geomean(
        runner.run(n, Improvement.BASE_UPDATE).stats.ipc for n in names
    )
    assert variation == pytest.approx(improved / base - 1.0)


def test_describe_mentions_parameters():
    runner = ExperimentRunner(instructions=123, stride=4, limit=5)
    text = runner.describe()
    assert "123" in text and "4" in text and "5" in text
