"""Trace characterisation tests."""

from repro.cvp.analysis import characterize
from repro.cvp.isa import InstClass

from tests.conftest import alu, blr_x30, branch, load, ret, store


def test_counts_instruction_classes():
    ch = characterize([alu(), load(), store(), branch()])
    assert ch.total_instructions == 4
    assert ch.class_counts[InstClass.ALU] == 1
    assert ch.class_counts[InstClass.LOAD] == 1
    assert ch.branches == 1


def test_counts_taken_branches():
    ch = characterize([branch(taken=True), branch(taken=False)])
    assert ch.taken_branches == 1


def test_detects_x30_read_write_branches():
    ch = characterize([blr_x30(), ret()])
    assert ch.x30_read_write_branches == 1
    assert ch.returns == 1
    assert ch.calls == 1  # the BLR X30 writes X30


def test_counts_zero_destination_alu():
    ch = characterize([alu(dsts=(), values=()), alu(dsts=(1,))])
    assert ch.zero_dst_alu_fp == 1


def test_counts_zero_destination_memory():
    ch = characterize([load(dsts=(), values=()), store()])
    assert ch.zero_dst_memory == 2


def test_counts_base_update_loads():
    bu = load(dsts=(0, 1), srcs=(0,), values=(0x2008, 5), address=0x2000)
    ch = characterize([bu, load()])
    assert ch.base_update_loads == 1
    assert ch.multi_dst_loads == 1


def test_counts_line_crossing():
    crossing = load(address=0x103C, size=8)
    ch = characterize([crossing, load(address=0x1000)])
    assert ch.line_crossing_accesses == 1


def test_footprints():
    records = [
        alu(pc=0x100),
        alu(pc=0x104),
        alu(pc=0x100),  # duplicate PC
        load(pc=0x108, address=0x2000),
        load(pc=0x10C, address=0x2040),
    ]
    ch = characterize(records)
    assert ch.unique_pcs == 4
    assert ch.unique_data_lines == 2


def test_fraction_helpers():
    ch = characterize([alu(), alu(), branch()])
    assert ch.fraction(ch.branches) == 1 / 3
    assert characterize([]).fraction(1) == 0.0


def test_cond_branch_sources_counted():
    with_src = branch(srcs=(5,))
    without = branch()
    ch = characterize([with_src, without])
    assert ch.cond_branches_with_sources == 1


def test_synthetic_trace_characterization(small_trace):
    ch = characterize(small_trace)
    assert ch.total_instructions == len(small_trace)
    assert ch.branches > 0
    assert ch.loads > 0
    assert ch.stores > 0
    assert ch.zero_dst_alu_fp > 0
    assert 0 < ch.unique_pcs < len(small_trace)
