"""Converter tests for memory handling (paper Section 3.1)."""

from repro.champsim.regs import REG_FORGED_X0, champsim_reg
from repro.core.convert import Converter, convert_trace
from repro.core.improvements import Improvement

from tests.conftest import alu, load, store


def pre_index_ldr(pc=0x1000, base=0, data=1, address=0x2000):
    """LDR X<data>, [X<base>, #imm]! — CVP lists the base register first."""
    return load(
        pc=pc,
        dsts=(base, data),
        srcs=(base,),
        values=(address, 0xFFFF),
        address=address,
    )


def post_index_ldr(pc=0x1000, base=0, data=1, address=0x2000, stride=16):
    return load(
        pc=pc,
        dsts=(base, data),
        srcs=(base,),
        values=(address + stride, 0xFFFF),
        address=address,
    )


# ---------------------------------------------------------------- original


def test_original_keeps_single_destination():
    instr = convert_trace([pre_index_ldr()])[0]
    assert len(instr.dst_regs) == 1


def test_original_drops_second_destination():
    instr = convert_trace([pre_index_ldr(base=0, data=1)])[0]
    # The base register (listed first) survives; the data register is
    # dropped, so its consumers silently lose the dependency
    # (paper Section 3.1.1).
    assert instr.dst_regs == (champsim_reg(0),)
    assert champsim_reg(1) not in instr.dst_regs
    assert champsim_reg(1) not in instr.src_regs


def test_original_forges_x0_for_prefetch_loads():
    record = load(dsts=(), srcs=(2,), values=())
    converter = Converter(Improvement.NONE)
    instr = converter.convert_record(record)[0]
    assert instr.dst_regs == (REG_FORGED_X0,)
    assert converter.stats.forged_x0_dsts == 1


def test_original_forges_x0_for_plain_stores():
    record = store(dsts=(), srcs=(1, 2))
    instr = convert_trace([record])[0]
    assert instr.dst_regs == (REG_FORGED_X0,)


def test_original_single_memory_address():
    crossing = load(address=0x203C, size=8, dsts=(1,))
    instr = convert_trace([crossing])[0]
    assert instr.src_mem == (0x203C,)


def test_loads_become_memory_sources_stores_destinations():
    l, s = convert_trace([load(), store()])
    assert l.src_mem and not l.dst_mem
    assert s.dst_mem and not s.src_mem


# ---------------------------------------------------------------- mem-regs


def test_mem_regs_keeps_all_destinations():
    instr = convert_trace([pre_index_ldr(base=0, data=1)], Improvement.MEM_REGS)[0]
    assert set(instr.dst_regs) == {champsim_reg(0), champsim_reg(1)}


def test_mem_regs_no_forged_x0():
    record = load(dsts=(), srcs=(2,), values=())
    instr = convert_trace([record], Improvement.MEM_REGS)[0]
    assert instr.dst_regs == ()


def test_mem_regs_keeps_store_exclusive_status():
    record = store(dsts=(5,), srcs=(1, 2), values=(0,))
    instr = convert_trace([record], Improvement.MEM_REGS)[0]
    assert instr.dst_regs == (champsim_reg(5),)


def test_mem_regs_truncates_third_destination_with_count():
    vector = load(dsts=(32, 33, 34), values=(0, 0, 0), srcs=(2,), size=16)
    converter = Converter(Improvement.MEM_REGS)
    instr = converter.convert_record(vector)[0]
    assert len(instr.dst_regs) == 2
    assert converter.stats.dst_regs_truncated == 1


# -------------------------------------------------------------- base-update


def test_base_update_splits_pre_index():
    converter = Converter(Improvement.BASE_UPDATE)
    instrs = converter.convert_record(pre_index_ldr(pc=0x1000))
    assert len(instrs) == 2
    alu_uop, mem_uop = instrs
    # Pre-index: ALU first at the original PC, memory at PC + 2.
    assert alu_uop.ip == 0x1000 and mem_uop.ip == 0x1002
    assert alu_uop.dst_regs == (champsim_reg(0),)
    assert not alu_uop.src_mem and not alu_uop.dst_mem
    assert mem_uop.src_mem
    assert converter.stats.base_updates_split == 1
    assert converter.stats.pre_index_splits == 1


def test_base_update_splits_post_index():
    converter = Converter(Improvement.BASE_UPDATE)
    instrs = converter.convert_record(post_index_ldr(pc=0x1000))
    assert len(instrs) == 2
    mem_uop, alu_uop = instrs
    # Post-index: memory first at the original PC, ALU at PC + 2.
    assert mem_uop.ip == 0x1000 and alu_uop.ip == 0x1002
    assert mem_uop.src_mem


def test_base_update_store_split():
    record = store(dsts=(0,), srcs=(1, 0), values=(0x2008,), address=0x2000)
    converter = Converter(Improvement.BASE_UPDATE)
    instrs = converter.convert_record(record)
    assert len(instrs) == 2
    assert instrs[0].dst_mem  # post-index: store first


def test_base_update_leaves_load_pairs_alone():
    # LDP X1, X0, [X0]: dst 0 reloaded from memory with a far value.
    record = load(dsts=(1, 0), srcs=(0,), values=(5, 0x999999), address=0x2000)
    converter = Converter(Improvement.BASE_UPDATE)
    assert len(converter.convert_record(record)) == 1


def test_base_update_removes_base_from_memory_uop_dsts():
    converter = Converter(Improvement.BASE_UPDATE | Improvement.MEM_REGS)
    instrs = converter.convert_record(pre_index_ldr(base=0, data=1))
    mem_uop = instrs[1]
    assert champsim_reg(0) not in mem_uop.dst_regs
    assert champsim_reg(1) in mem_uop.dst_regs


# ------------------------------------------------------------ mem-footprint


def test_mem_footprint_adds_second_cacheline():
    crossing = load(address=0x203C, size=8, dsts=(1,))
    converter = Converter(Improvement.MEM_FOOTPRINT)
    instr = converter.convert_record(crossing)[0]
    assert instr.src_mem == (0x203C, 0x2040)
    assert converter.stats.two_line_accesses == 1


def test_mem_footprint_single_line_untouched():
    instr = convert_trace([load(address=0x2000)], Improvement.MEM_FOOTPRINT)[0]
    assert instr.src_mem == (0x2000,)


def test_mem_footprint_store_crossing():
    crossing = store(address=0x2038, srcs=(1, 2, 3), size=16)
    converter = Converter(Improvement.MEM_FOOTPRINT)
    instr = converter.convert_record(crossing)[0]
    assert len(instr.dst_mem) == 2


def test_mem_footprint_aligns_dc_zva():
    # Architecturally allowed unaligned DC ZVA: always aligned down.
    record = store(address=0x2010, size=64, srcs=(1,))
    converter = Converter(Improvement.MEM_FOOTPRINT)
    instr = converter.convert_record(record)[0]
    assert instr.dst_mem == (0x2000,)
    assert converter.stats.dc_zva_aligned == 1


def test_mem_footprint_aligned_dc_zva_not_counted():
    record = store(address=0x2000, size=64, srcs=(1,))
    converter = Converter(Improvement.MEM_FOOTPRINT)
    instr = converter.convert_record(record)[0]
    assert instr.dst_mem == (0x2000,)
    assert converter.stats.dc_zva_aligned == 0


# ------------------------------------------------------------- bookkeeping


def test_expansion_ratio_tracks_splits():
    records = [pre_index_ldr(pc=0x1000 + 16 * i) for i in range(4)]
    converter = Converter(Improvement.BASE_UPDATE)
    out = list(converter.convert(records))
    assert len(out) == 8
    assert converter.stats.expansion_ratio == 2.0


def test_instruction_counts():
    converter = Converter(Improvement.NONE)
    list(converter.convert([alu(), load(), store()]))
    assert converter.stats.records_in == 3
    assert converter.stats.instructions_out == 3
