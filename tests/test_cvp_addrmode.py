"""Addressing-mode inference tests (paper Section 3.1.2's heuristic)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cvp.addrmode import (
    AddressingMode,
    MAX_BASE_UPDATE_OFFSET,
    cachelines_touched,
    infer_addressing,
    is_dc_zva,
    total_access_size,
)
from repro.cvp.reader import RegisterFile

from tests.conftest import alu, load, store


def test_pre_index_load_detected():
    # LDR X1, [X0, #16]!: written base equals the effective address.
    record = load(dsts=(0, 1), srcs=(0,), values=(0x2010, 0xFFFF), address=0x2010)
    info = infer_addressing(record)
    assert info.mode is AddressingMode.PRE_INDEX
    assert info.base_reg == 0
    assert info.memory_dst_regs == (1,)


def test_post_index_load_detected():
    # LDR X1, [X0], #16: address is the old base, written base is old+16.
    record = load(dsts=(0, 1), srcs=(0,), values=(0x2010, 0xFFFF), address=0x2000)
    info = infer_addressing(record)
    assert info.mode is AddressingMode.POST_INDEX
    assert info.base_reg == 0


def test_load_pair_reloading_base_is_not_base_update():
    # LDP X1, X0, [X0]: X0 is populated from memory with an unrelated value.
    far_value = 0x9999_0000
    record = load(dsts=(1, 0), srcs=(0,), values=(5, far_value), address=0x2000)
    info = infer_addressing(record)
    assert info.mode is AddressingMode.NONE


def test_no_shared_register_means_no_update():
    record = load(dsts=(1,), srcs=(0,), values=(5,), address=0x2000)
    assert infer_addressing(record).mode is AddressingMode.NONE


def test_store_base_update_detected():
    record = store(dsts=(0,), srcs=(1, 0), values=(0x2008,), address=0x2000)
    info = infer_addressing(record)
    assert info.mode is AddressingMode.POST_INDEX


def test_non_memory_record_never_updates():
    info = infer_addressing(alu(dsts=(1,), srcs=(1,)))
    assert info.mode is AddressingMode.NONE


def test_threshold_is_architectural():
    # ±512 covers scaled pair immediates; beyond is a memory-loaded value.
    near = load(dsts=(0,), srcs=(0,), values=(0x2000 + 512,), address=0x2000)
    far = load(dsts=(0,), srcs=(0,), values=(0x2000 + 513,), address=0x2000)
    assert infer_addressing(near).is_base_update
    assert not infer_addressing(far).is_base_update
    assert MAX_BASE_UPDATE_OFFSET == 512


def test_register_refinement_rejects_unchanged_value():
    # The candidate kept its pre-execution value: nothing updated it.
    regs = RegisterFile()
    regs.apply(alu(dsts=(0,), values=(0x2008,)))
    record = load(dsts=(0,), srcs=(0,), values=(0x2008,), address=0x2000)
    assert not infer_addressing(record, regs).is_base_update
    # Without register tracking the same record looks like a post-index.
    assert infer_addressing(record).is_base_update


def test_total_access_size_excludes_base_register():
    # Pre-index LDR: one memory-populated register of 8 bytes, not two.
    record = load(dsts=(0, 1), srcs=(0,), values=(0x2010, 1), address=0x2010)
    assert total_access_size(record) == 8


def test_total_access_size_load_pair():
    record = load(dsts=(1, 2), srcs=(0,), values=(1, 2), address=0x2000, size=8)
    assert total_access_size(record) == 16


def test_total_access_size_prefetch_load():
    record = load(dsts=(), srcs=(0,), values=(), address=0x2000, size=8)
    assert total_access_size(record) == 8


def test_store_size_uses_tracked_address_registers():
    regs = RegisterFile()
    regs.apply(alu(dsts=(0,), values=(0x2000,)))  # address register
    regs.apply(alu(dsts=(1,), values=(1 << 63,)))  # data register
    record = store(srcs=(1, 0), address=0x2000, size=8)
    assert total_access_size(record, registers=regs) == 8


def test_cachelines_single_line():
    record = load(address=0x2000, size=8)
    assert cachelines_touched(record) == (0x2000,)


def test_cachelines_crossing_access():
    record = load(address=0x203C, size=8)  # 0x203C + 8 crosses 0x2040
    assert cachelines_touched(record) == (0x2000, 0x2040)


def test_cachelines_load_pair_crossing():
    record = load(dsts=(1, 2), values=(0, 0), address=0x2038, size=8)
    assert cachelines_touched(record) == (0x2000, 0x2040)


def test_dc_zva_identification():
    assert is_dc_zva(store(size=64))
    assert not is_dc_zva(store(size=8))
    assert not is_dc_zva(load(size=64))


@given(
    base=st.integers(min_value=0x1000, max_value=1 << 40),
    delta=st.integers(min_value=-512, max_value=512),
)
@settings(max_examples=200)
def test_base_update_property(base, delta):
    """Any in-range displacement is classified pre/post consistently."""
    record = load(dsts=(0,), srcs=(0,), values=(base + delta,), address=base)
    info = infer_addressing(record)
    assert info.is_base_update
    if delta == 0:
        assert info.mode is AddressingMode.PRE_INDEX
    else:
        assert info.mode is AddressingMode.POST_INDEX


@given(addr=st.integers(min_value=0, max_value=1 << 48), size=st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
@settings(max_examples=200)
def test_cachelines_cover_access_property(addr, size):
    """Returned lines always cover [addr, addr+size)."""
    record = load(address=addr, size=size)
    lines = cachelines_touched(record)
    assert 1 <= len(lines) <= 2
    first, last = lines[0], lines[-1]
    assert first <= addr < first + 64
    assert last <= addr + size - 1 < last + 64
