"""Property tests for the on-disk result cache and its content keys.

The cache is only safe if its key is a *faithful fingerprint* of the run
inputs: stable across processes and argument orderings, and distinct for
every input that can change the result — each ``Improvement`` flag
combination, every ``SimConfig`` field, the instruction budget, and the
trace name.  Round-trips through the JSON payload must be lossless, and
corrupt or stale entries must read as misses, never as wrong data.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.improvements import Improvement
from repro.experiments.cache import (
    CACHE_SCHEMA,
    ResultCache,
    conversion_key,
    run_key,
    run_result_from_dict,
    run_result_to_dict,
)
from repro.experiments.runner import ExperimentRunner
from repro.sim.config import SimConfig

_FLAGS = [
    Improvement.MEM_REGS,
    Improvement.BASE_UPDATE,
    Improvement.MEM_FOOTPRINT,
    Improvement.CALL_STACK,
    Improvement.BRANCH_REGS,
    Improvement.FLAG_REG,
]


def _all_combinations():
    out = []
    for r in range(len(_FLAGS) + 1):
        for combo in itertools.combinations(_FLAGS, r):
            flags = Improvement.NONE
            for flag in combo:
                flags |= flag
            out.append(flags)
    return out


@pytest.fixture(scope="module")
def sample_result():
    runner = ExperimentRunner(instructions=1200)
    return runner.run("srv_3", Improvement.ALL)


# ----------------------------------------------------------------------
# key properties
# ----------------------------------------------------------------------


def test_run_key_is_deterministic():
    config = SimConfig.main()
    assert run_key("srv_0", Improvement.ALL, config, 2000) == run_key(
        "srv_0", Improvement.ALL, config, 2000
    )


def test_run_key_stable_across_processes():
    """The key must not depend on hash randomisation or process state."""
    snippet = (
        "from repro.experiments.cache import run_key;"
        "from repro.core.improvements import Improvement;"
        "from repro.sim.config import SimConfig;"
        "print(run_key('srv_0', Improvement.ALL, SimConfig.ipc1('jip'), 2000))"
    )
    keys = set()
    for hashseed in ("0", "1", "random"):
        out = subprocess.run(
            [sys.executable, "-c", snippet],
            capture_output=True,
            text=True,
            check=True,
            env={
                "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"),
                "PYTHONHASHSEED": hashseed,
                "PATH": "/usr/bin:/bin",
            },
        )
        keys.add(out.stdout.strip())
    assert len(keys) == 1


def test_run_key_distinct_for_every_improvement_combination():
    config = SimConfig.main()
    combos = _all_combinations()
    assert len(combos) == 64
    keys = {run_key("srv_0", flags, config, 2000) for flags in combos}
    assert len(keys) == len(combos)


def test_run_key_distinct_for_every_config_field():
    """Perturbing any single SimConfig field must change the key."""
    base = SimConfig.main()
    base_key = run_key("srv_0", Improvement.NONE, base, 2000)
    for field in dataclasses.fields(SimConfig):
        value = getattr(base, field.name)
        if isinstance(value, bool):
            changed = not value
        elif isinstance(value, int):
            changed = value + 1
        elif isinstance(value, float):
            changed = value + 0.25
        elif isinstance(value, str):
            changed = value + "-x"
        elif isinstance(value, tuple):
            changed = (value[0] * 2,) + tuple(value[1:])
        else:  # pragma: no cover - SimConfig only uses the types above
            pytest.fail(f"unhandled field type for {field.name}")
        variant = dataclasses.replace(base, **{field.name: changed})
        assert (
            run_key("srv_0", Improvement.NONE, variant, 2000) != base_key
        ), f"key ignores SimConfig.{field.name}"


def test_run_key_distinct_for_trace_and_instructions():
    config = SimConfig.main()
    base = run_key("srv_0", Improvement.NONE, config, 2000)
    assert run_key("srv_1", Improvement.NONE, config, 2000) != base
    assert run_key("srv_0", Improvement.NONE, config, 2001) != base


def test_conversion_key_distinct_inputs():
    base = conversion_key("client_001", "secret_int_294", 500, Improvement.ALL)
    assert conversion_key("client_002", "secret_int_294", 500, Improvement.ALL) != base
    assert conversion_key("client_001", "secret_int_295", 500, Improvement.ALL) != base
    assert conversion_key("client_001", "secret_int_294", 501, Improvement.ALL) != base
    assert (
        conversion_key("client_001", "secret_int_294", 500, Improvement.NONE) != base
    )


# ----------------------------------------------------------------------
# round-trip
# ----------------------------------------------------------------------


def test_run_result_round_trips_losslessly(sample_result):
    payload = run_result_to_dict(sample_result)
    # The payload must actually survive JSON, not just dict copying.
    restored = run_result_from_dict(json.loads(json.dumps(payload)))
    assert restored == sample_result
    assert restored.stats == sample_result.stats
    assert restored.conversion == sample_result.conversion
    # Enum-keyed dicts come back with real BranchType keys.
    assert restored.stats.branches_by_type == sample_result.stats.branches_by_type


def test_cache_store_load_round_trip(sample_result, tmp_path):
    cache = ResultCache(tmp_path)
    key = run_key("srv_3", Improvement.ALL, SimConfig.main(), 1200)
    assert cache.load(key) is None
    cache.store(key, sample_result)
    reloaded = ResultCache(tmp_path).load(key)
    assert reloaded == sample_result
    assert cache.stores == 1


# ----------------------------------------------------------------------
# corruption / staleness
# ----------------------------------------------------------------------


def test_corrupt_entry_is_ignored_and_rewritten(sample_result, tmp_path):
    cache = ResultCache(tmp_path)
    key = run_key("srv_3", Improvement.ALL, SimConfig.main(), 1200)
    path = cache._path(key)
    path.parent.mkdir(parents=True)
    path.write_text("{not json at all")
    assert cache.load(key) is None
    assert cache.misses == 1
    cache.store(key, sample_result)
    assert cache.load(key) == sample_result


def test_stale_schema_entry_is_a_miss(sample_result, tmp_path):
    cache = ResultCache(tmp_path)
    key = run_key("srv_3", Improvement.ALL, SimConfig.main(), 1200)
    cache.store(key, sample_result)
    payload = json.loads(cache._path(key).read_text())
    payload["schema"] = CACHE_SCHEMA - 1
    cache._path(key).write_text(json.dumps(payload))
    assert cache.load(key) is None


def test_truncated_entry_is_a_miss(sample_result, tmp_path):
    cache = ResultCache(tmp_path)
    key = run_key("srv_3", Improvement.ALL, SimConfig.main(), 1200)
    cache.store(key, sample_result)
    full = cache._path(key).read_text()
    cache._path(key).write_text(full[: len(full) // 2])
    assert cache.load(key) is None


def test_runner_ignores_corrupt_cache_and_recomputes(tmp_path):
    cache = ResultCache(tmp_path)
    runner = ExperimentRunner(instructions=800, cache=cache)
    first = runner.run("crypto_1", Improvement.NONE)
    key = run_key("crypto_1", Improvement.NONE, SimConfig.main(), 800)
    cache._path(key).write_text("garbage")
    fresh = ExperimentRunner(instructions=800, cache=ResultCache(tmp_path))
    again = fresh.run("crypto_1", Improvement.NONE)
    assert again.stats == first.stats
    assert fresh.simulations == 1  # recomputed, not misdecoded


def test_unwritable_cache_dir_degrades_to_no_cache(sample_result, tmp_path):
    """A broken cache directory must not kill the sweep: stores are
    counted as errors and every lookup is a miss."""
    blocker = tmp_path / "file-not-dir"
    blocker.write_text("")
    cache = ResultCache(blocker)
    key = run_key("srv_3", Improvement.ALL, SimConfig.main(), 1200)
    cache.store(key, sample_result)
    assert cache.store_errors == 1
    assert cache.stores == 0
    assert cache.load(key) is None
    assert "store_errors=1" in cache.describe()

    runner = ExperimentRunner(instructions=800, cache=cache)
    result = runner.run("crypto_1", Improvement.NONE)
    assert result.stats.instructions > 0
    assert runner.simulations == 1


def _stored_cache(sample_result, root):
    cache = ResultCache(root)
    key = run_key("srv_3", Improvement.ALL, SimConfig.main(), 1200)
    cache.store(key, sample_result)
    return cache, key


def test_bit_flip_quarantines_and_misses(sample_result, tmp_path):
    """A flipped byte must read as a miss and move the entry aside."""
    cache, key = _stored_cache(sample_result, tmp_path)
    path = cache._path(key)
    raw = bytearray(path.read_bytes())
    mid = len(raw) // 2
    raw[mid] ^= 0xFF
    path.write_bytes(bytes(raw))
    assert cache.load(key) is None
    assert cache.quarantined == 1
    assert not path.exists()  # moved, not left to poison the next run
    moved = list((tmp_path / "quarantine").iterdir())
    assert len(moved) == 1
    assert "quarantined=1" in cache.describe()
    # The slot is reusable immediately.
    cache.store(key, sample_result)
    assert cache.load(key) == sample_result


def test_truncation_quarantines_and_misses(sample_result, tmp_path):
    cache, key = _stored_cache(sample_result, tmp_path)
    path = cache._path(key)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])
    assert cache.load(key) is None
    assert cache.quarantined == 1
    assert not path.exists()


def test_any_single_byte_flip_never_returns_wrong_value(
    sample_result, tmp_path
):
    """Property: a one-byte flip anywhere yields a miss or the true
    value — never an exception, never a silently different result."""
    cache, key = _stored_cache(sample_result, tmp_path)
    path = cache._path(key)
    pristine = path.read_bytes()
    step = max(1, len(pristine) // 64)
    for offset in range(0, len(pristine), step):
        damaged = bytearray(pristine)
        damaged[offset] ^= 0x01
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(bytes(damaged))
        loaded = ResultCache(tmp_path).load(key)
        assert loaded is None or loaded == sample_result, (
            f"byte flip at offset {offset} misdecoded"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pristine)
    assert ResultCache(tmp_path).load(key) == sample_result


def test_any_truncation_point_never_returns_wrong_value(
    sample_result, tmp_path
):
    cache, key = _stored_cache(sample_result, tmp_path)
    path = cache._path(key)
    pristine = path.read_bytes()
    step = max(1, len(pristine) // 32)
    for cut in range(0, len(pristine), step):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pristine[:cut])
        loaded = ResultCache(tmp_path).load(key)
        assert loaded is None, f"truncation at byte {cut} misdecoded"


def test_stale_schema_is_a_plain_miss_not_quarantine(
    sample_result, tmp_path
):
    """Old-schema entries are stale, not corrupt: no quarantine noise."""
    cache, key = _stored_cache(sample_result, tmp_path)
    payload = json.loads(cache._path(key).read_text())
    payload["schema"] = CACHE_SCHEMA - 1
    cache._path(key).write_text(json.dumps(payload))
    assert cache.load(key) is None
    assert cache.quarantined == 0
    assert not (tmp_path / "quarantine").exists()


def test_digest_mismatch_quarantines(sample_result, tmp_path):
    """Valid JSON with a tampered result payload must not be trusted."""
    cache, key = _stored_cache(sample_result, tmp_path)
    payload = json.loads(cache._path(key).read_text())
    payload["result"]["stats"]["instructions"] += 1
    cache._path(key).write_text(json.dumps(payload))
    assert cache.load(key) is None
    assert cache.quarantined == 1


def test_injected_store_corruption_recovers(sample_result, tmp_path):
    """cache.corrupt fault on the store path: next load quarantines."""
    from repro import faults
    from repro.faults import FaultPlan

    faults.install(FaultPlan.parse("cache.corrupt:count=1"))
    try:
        cache, key = _stored_cache(sample_result, tmp_path)
    finally:
        faults.install(None)
    assert cache.load(key) is None  # damaged at store time
    assert cache.quarantined == 1
    cache.store(key, sample_result)
    assert cache.load(key) == sample_result


def test_env_override_controls_default_dir(monkeypatch, tmp_path):
    from repro.experiments.cache import default_cache_dir

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "override"))
    assert default_cache_dir() == tmp_path / "override"
    assert ResultCache().root == tmp_path / "override"
