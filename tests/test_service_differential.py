"""Differential gate: service output is byte-identical to the CLI path.

The acceptance criterion for the serving tier — for every golden
experiment, the text served over the fleet equals the text produced by
a direct :func:`repro.experiments.cli.run_experiment` call, and the
second request performs zero simulations (proven by the runner and
fleet counters, not by timing).
"""

import pytest

from repro.experiments.cli import run_experiment
from repro.experiments.runner import ExperimentRunner
from repro.service.fleet import (
    Fleet,
    LocalPoolBackend,
    SweepParams,
    shard_tasks,
    sweep_specs,
)
from repro.service.store import ArtifactStore

#: Tiny sampling: every experiment in milliseconds, still real sweeps.
INSTRUCTIONS = 800
STRIDE = 27
LIMIT = 2

#: The golden suite: every figure and table the service exposes.
GOLDEN = ("fig1", "fig2", "fig3", "fig4", "fig5", "tab1", "tab2", "tab3")


def _params(experiment):
    return SweepParams(
        experiment=experiment,
        instructions=INSTRUCTIONS,
        stride=STRIDE,
        limit=LIMIT,
    )


def _direct(experiment):
    runner = ExperimentRunner(
        instructions=INSTRUCTIONS, stride=STRIDE, limit=LIMIT, jobs=1
    )
    return run_experiment(experiment, runner), runner.simulations


@pytest.mark.parametrize("experiment", GOLDEN)
def test_service_is_byte_identical_to_direct_path(experiment, tmp_path):
    fleet = Fleet(ArtifactStore(tmp_path), backend=LocalPoolBackend(jobs=1))
    served = fleet.execute(_params(experiment))
    direct_text, direct_simulations = _direct(experiment)
    assert served.text == direct_text
    # The fleet performed the same simulations the direct path did
    # (everything was cold), just through the store.
    assert served.simulations == direct_simulations
    # Second request: served entirely from the stored artifact.
    warm = fleet.execute(_params(experiment))
    assert warm.text == direct_text
    assert warm.simulations == 0
    assert warm.warm_artifact is True


def test_result_cache_warmth_survives_artifact_invalidation(tmp_path):
    """With the rendered artifact gone, the render still simulates
    nothing — every run resolves from the result cache."""
    store = ArtifactStore(tmp_path)
    fleet = Fleet(store, backend=LocalPoolBackend(jobs=1))
    params = _params("fig3")
    first = fleet.execute(params)
    assert first.simulations > 0
    # Drop only the rendered artifact, keeping the run results.
    artifact_path = store.artifacts().path(first.artifact_key)
    artifact_path.unlink()
    second = fleet.execute(params)
    assert second.simulations == 0
    assert second.warm_artifact is False
    assert second.cache_hits > 0
    assert second.text == first.text


def test_store_warmth_survives_fleet_restart(tmp_path):
    """A new fleet over the same root (a service restart) is warm."""
    first = Fleet(ArtifactStore(tmp_path), backend=LocalPoolBackend(jobs=1))
    cold = first.execute(_params("fig4"))
    assert cold.simulations > 0
    second = Fleet(ArtifactStore(tmp_path), backend=LocalPoolBackend(jobs=1))
    warm = second.execute(_params("fig4"))
    assert warm.simulations == 0
    assert warm.text == cold.text


def test_sweep_specs_cover_every_render_need(tmp_path):
    """Rendering after a fleet warm-up never simulates: the decomposed
    spec list covers every run the figure/table functions request."""
    for experiment in GOLDEN:
        fleet = Fleet(
            ArtifactStore(tmp_path / experiment),
            backend=LocalPoolBackend(jobs=1),
        )
        outcome = fleet.execute(_params(experiment))
        # dispatched tasks account for every simulation; the render
        # itself found everything in the store.
        assert outcome.simulations == outcome.dispatched


def test_shard_tasks_partitions_in_order():
    tasks = list(range(10))
    shards = shard_tasks(tasks, 4)
    assert shards == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
    assert shard_tasks([], 4) == []
    with pytest.raises(ValueError):
        shard_tasks(tasks, 0)


def test_sharded_dispatch_matches_unsharded(tmp_path):
    """Shard size must not perturb results (same store contents)."""
    coarse = Fleet(
        ArtifactStore(tmp_path / "coarse"),
        backend=LocalPoolBackend(jobs=1),
        shard_size=1000,
    ).execute(_params("fig3"))
    fine = Fleet(
        ArtifactStore(tmp_path / "fine"),
        backend=LocalPoolBackend(jobs=1),
        shard_size=2,
    ).execute(_params("fig3"))
    assert fine.text == coarse.text
    assert fine.dispatched == coarse.dispatched
    assert fine.shards > coarse.shards


def test_sweep_params_fingerprint_distinguishes_inputs():
    base = _params("fig1")
    assert base.key() == _params("fig1").key()
    for other in (
        SweepParams("fig2", INSTRUCTIONS, STRIDE, LIMIT),
        SweepParams("fig1", INSTRUCTIONS + 1, STRIDE, LIMIT),
        SweepParams("fig1", INSTRUCTIONS, STRIDE + 1, LIMIT),
        SweepParams("fig1", INSTRUCTIONS, STRIDE, None),
        SweepParams("fig1", INSTRUCTIONS, STRIDE, LIMIT, engine="vector"),
    ):
        assert other.key() != base.key()


def test_sweep_specs_tab1_is_conversion_only():
    runner = ExperimentRunner(
        instructions=INSTRUCTIONS, stride=STRIDE, limit=LIMIT, jobs=1
    )
    assert sweep_specs("tab1", runner) == []
    with pytest.raises(ValueError):
        sweep_specs("fig9", runner)
