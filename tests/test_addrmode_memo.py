"""The register-signature memo in addrmode stays bounded and correct."""

from repro.cvp.addrmode import (
    ADDRMODE_MEMO_SIZE,
    _static_base_info,
    addrmode_memo_info,
    clear_addrmode_memo,
)


def test_memo_counts_hits_and_misses():
    clear_addrmode_memo()
    assert _static_base_info((1, 2), (1,)) == (1, ())
    assert _static_base_info((1, 2), (1,)) == (1, ())
    info = addrmode_memo_info()
    assert info.misses == 1
    assert info.hits == 1
    assert info.currsize == 1
    clear_addrmode_memo()
    assert addrmode_memo_info().currsize == 0


def test_memo_never_exceeds_its_lru_bound():
    clear_addrmode_memo()
    # Far more distinct register signatures than the memo can hold.
    # lru_cache keys on the argument values, so each (src, dst) pair is
    # a fresh entry; the LRU bound must evict rather than grow.
    distinct = 0
    for a in range(64):
        for b in range(64):
            for c in range(2):
                _static_base_info((a, b), (b, c))
                distinct += 1
    assert distinct > ADDRMODE_MEMO_SIZE
    info = addrmode_memo_info()
    assert info.currsize <= ADDRMODE_MEMO_SIZE
    assert info.misses >= distinct - info.hits
    clear_addrmode_memo()


def test_memo_eviction_preserves_results():
    clear_addrmode_memo()
    # Prime one signature, evict it by flooding, then re-ask: the
    # recomputed answer must match the original.
    first = _static_base_info((3, 7), (7, 9))
    for a in range(70):
        for b in range(70):
            _static_base_info((a,), (b,))
    assert _static_base_info((3, 7), (7, 9)) == first == (7, (9,))
    clear_addrmode_memo()
