"""Simulator facade and CLI tests."""

import pytest

from repro.champsim.branch_info import BranchRules
from repro.champsim.trace import write_champsim_trace
from repro.core import Improvement, convert_trace
from repro.sim import SimConfig, Simulator, decode_trace, simulate
from repro.sim.cli import main as sim_main
from repro.synth import make_trace


@pytest.fixture(scope="module")
def converted(tmp_path_factory):
    records = make_trace("crypto_2", 2000)
    instrs = convert_trace(records, Improvement.ALL)
    path = tmp_path_factory.mktemp("sim") / "t.champsimtrace.gz"
    write_champsim_trace(instrs, path)
    return instrs, path


def test_simulator_accepts_instr_list(converted):
    instrs, _ = converted
    stats = Simulator(SimConfig.main()).run(instrs, BranchRules.PATCHED)
    assert stats.instructions == len(instrs)
    assert stats.ipc > 0


def test_simulator_accepts_decoded_list(converted):
    instrs, _ = converted
    decoded = decode_trace(instrs, BranchRules.PATCHED)
    stats = Simulator(SimConfig.main()).run(decoded)
    assert stats.instructions == len(instrs)


def test_simulator_accepts_path(converted):
    instrs, path = converted
    stats = Simulator(SimConfig.main()).run(path, BranchRules.PATCHED)
    assert stats.instructions == len(instrs)


def test_simulate_helper_defaults_to_main_config(converted):
    instrs, _ = converted
    stats = simulate(instrs, rules=BranchRules.PATCHED)
    assert stats.ipc > 0


def test_stats_summary_renders(converted):
    instrs, _ = converted
    stats = simulate(instrs, rules=BranchRules.PATCHED)
    text = stats.summary()
    assert "IPC" in text and "L1I MPKI" in text


def test_cli_main_config(converted, capsys):
    _, path = converted
    rc = sim_main([str(path), "--rules", "patched"])
    assert rc == 0
    assert "IPC" in capsys.readouterr().out


def test_cli_ipc1_with_prefetcher(converted, capsys):
    _, path = converted
    rc = sim_main(
        [str(path), "--config", "ipc1", "--l1i-prefetcher", "EPI", "--warmup", "0.25"]
    )
    assert rc == 0
    assert "IPC" in capsys.readouterr().out


def test_simulator_engine_kwarg_is_bit_identical(converted):
    from tests.diffharness import assert_stats_identical

    instrs, _ = converted
    scalar = Simulator(SimConfig.main()).run(instrs, BranchRules.PATCHED)
    vector = Simulator(SimConfig.main(), engine="vector").run(
        instrs, BranchRules.PATCHED
    )
    assert_stats_identical(vector, scalar, "Simulator(engine='vector')")


def test_simulator_honours_config_engine(converted):
    instrs, _ = converted
    sim = Simulator(SimConfig.main(engine="vector"))
    assert sim.engine == "vector"
    stats = sim.run(instrs, BranchRules.PATCHED)
    assert stats.instructions == len(instrs)


def test_simulator_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engine"):
        Simulator(SimConfig.main(), engine="simd")


def test_cli_vector_engine_output_matches_scalar(converted, capsys):
    _, path = converted
    assert sim_main([str(path), "--rules", "patched"]) == 0
    scalar_out = capsys.readouterr().out
    assert sim_main([str(path), "--rules", "patched", "--engine", "vector"]) == 0
    vector_out = capsys.readouterr().out
    assert "IPC" in vector_out
    assert vector_out == scalar_out


def test_cli_rejects_unknown_engine(converted, capsys):
    _, path = converted
    with pytest.raises(SystemExit) as excinfo:
        sim_main([str(path), "--engine", "simd"])
    assert excinfo.value.code == 2
    assert "--engine" in capsys.readouterr().err


def test_config_presets():
    main = SimConfig.main()
    ipc1 = SimConfig.ipc1(l1i_prefetcher="D-JOLT")
    assert main.decoupled_frontend and not ipc1.decoupled_frontend
    assert ipc1.ideal_targets and not main.ideal_targets
    assert ipc1.warmup_fraction == 0.5
    assert ipc1.l1i_prefetcher == "D-JOLT"


def test_config_overrides():
    cfg = SimConfig.main(rob_size=64, fetch_width=2)
    assert cfg.rob_size == 64 and cfg.fetch_width == 2
