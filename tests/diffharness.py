"""Shared assertions for the repo's differential ("fast vs reference") tests.

Every differential tier ends in the same two comparisons: a statistics
mapping must match key for key, and an output byte stream must match bit
for bit.  A bare ``assert fast == slow`` on either produces an unreadable
wall of repr when it fails; these helpers pinpoint the divergence instead
— the exact counters that differ, or the first differing byte offset with
a hexdump window around it.

Used by ``test_fastconvert.py`` (block converter vs per-record converter),
``test_sim_decoded.py`` (cached vs uncached decode) and
``test_vector_engine_differential.py`` (vector vs scalar engine).
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Sentinel rendered for a key present on only one side of a stats diff.
_ABSENT = "<absent>"


def _as_mapping(stats) -> Dict:
    """Accept plain dicts or objects exporting ``to_dict()`` (SimStats)."""
    to_dict = getattr(stats, "to_dict", None)
    if callable(to_dict):
        return to_dict()
    return dict(stats)


def _flatten(mapping: Dict, prefix: str = "") -> Dict[str, object]:
    """Flatten nested dicts into dotted keys ('cache_misses.L1D')."""
    flat: Dict[str, object] = {}
    for key, value in mapping.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, f"{name}."))
        else:
            flat[name] = value
    return flat


def stats_diff_lines(actual, expected) -> List[str]:
    """One line per differing counter; empty when the stats are identical."""
    actual_flat = _flatten(_as_mapping(actual))
    expected_flat = _flatten(_as_mapping(expected))
    lines = []
    for key in sorted(set(actual_flat) | set(expected_flat)):
        actual_value = actual_flat.get(key, _ABSENT)
        expected_value = expected_flat.get(key, _ABSENT)
        if actual_value != expected_value:
            lines.append(
                f"  {key}: actual={actual_value!r} expected={expected_value!r}"
            )
    return lines


def assert_stats_identical(actual, expected, context=None) -> None:
    """Assert two stats mappings (or SimStats) are key-for-key identical.

    On failure the error lists only the divergent counters, flattening
    nested per-level/per-type dicts into dotted keys.
    """
    lines = stats_diff_lines(actual, expected)
    if lines:
        header = "stats differ"
        if context is not None:
            header += f" [{context}]"
        raise AssertionError("\n".join([header] + lines))


def bytes_diff_message(
    actual: bytes, expected: bytes, window: int = 16
) -> Optional[str]:
    """Describe the first divergence of two byte streams (None if equal)."""
    if actual == expected:
        return None
    shorter = min(len(actual), len(expected))
    offset = next(
        (i for i in range(shorter) if actual[i] != expected[i]), shorter
    )
    lo = max(0, offset - window)
    hi = offset + window
    return (
        f"byte streams differ at offset {offset} "
        f"(lengths {len(actual)} vs {len(expected)})\n"
        f"  actual  [{lo}:{hi}]: {actual[lo:hi].hex()}\n"
        f"  expected[{lo}:{hi}]: {expected[lo:hi].hex()}"
    )


def assert_bytes_identical(actual: bytes, expected: bytes, context=None) -> None:
    """Assert two byte streams are bit-for-bit identical.

    On failure the error reports the first differing offset, both
    lengths, and a hexdump window around the divergence.
    """
    message = bytes_diff_message(actual, expected)
    if message is not None:
        if context is not None:
            message = f"[{context}] {message}"
        raise AssertionError(message)
