"""Set-associative cache model tests."""

import pytest

from repro.sim.cache.cache import Cache, LINE_SIZE
from repro.sim.cache.replacement import LRU, SRRIP, RandomReplacement, make_policy


def small_cache(**kwargs):
    defaults = dict(size=4 * 1024, ways=4, latency=4, name="L1")
    defaults.update(kwargs)
    return Cache(**defaults)


def test_line_alignment():
    assert Cache.line_of(0x1234) == 0x1234 & ~(LINE_SIZE - 1)
    assert Cache.line_of(0x1240) == 0x1240
    assert Cache.line_of(0x127F) == 0x1240


def test_miss_then_hit():
    cache = small_cache()
    assert not cache.lookup(0x1000)
    cache.fill(0x1000)
    assert cache.lookup(0x1000)


def test_same_line_addresses_hit_together():
    cache = small_cache()
    cache.fill(0x1000)
    assert cache.lookup(0x103F)
    assert not cache.lookup(0x1040)


def test_lru_eviction_within_set():
    cache = small_cache(size=512, ways=2)  # 4 sets
    set_stride = 4 * LINE_SIZE
    a, b, c = 0x0, set_stride, 2 * set_stride
    cache.fill(a)
    cache.fill(b)
    cache.lookup(a)  # a is MRU
    cache.fill(c)  # evicts b
    assert cache.lookup(a)
    assert not cache.lookup(b)
    assert cache.lookup(c)


def test_capacity():
    cache = small_cache(size=1024, ways=4)  # 16 lines
    for i in range(32):
        cache.fill(i * LINE_SIZE)
    assert cache.resident_lines() == 16


def test_ready_time_tracking():
    cache = small_cache()
    cache.fill(0x1000, ready_time=100)
    assert cache.ready_time(0x1000) == 100
    cache.fill(0x2000)
    assert cache.ready_time(0x2000) == 0


def test_refill_only_improves_ready_time():
    cache = small_cache()
    cache.fill(0x1000, ready_time=100)
    cache.fill(0x1000, ready_time=50)
    assert cache.ready_time(0x1000) == 50
    cache.fill(0x1000, ready_time=500)
    assert cache.ready_time(0x1000) == 50


def test_invalidate():
    cache = small_cache()
    cache.fill(0x1000)
    assert cache.invalidate(0x1000)
    assert not cache.lookup(0x1000)
    assert not cache.invalidate(0x1000)


def test_geometry_validation():
    with pytest.raises(ValueError):
        Cache(size=1000, ways=3, latency=1)


def test_present_does_not_touch_recency():
    cache = small_cache(size=512, ways=2)
    set_stride = 4 * LINE_SIZE
    a, b, c = 0x0, set_stride, 2 * set_stride
    cache.fill(a)
    cache.fill(b)
    cache.present(a)  # must NOT refresh a's recency
    cache.fill(c)  # evicts a (LRU), not b
    assert not cache.lookup(a)
    assert cache.lookup(b)


# --------------------------------------------------------------- policies


def test_policy_registry():
    assert isinstance(make_policy("lru"), LRU)
    assert isinstance(make_policy("srrip"), SRRIP)
    assert isinstance(make_policy("random"), RandomReplacement)
    with pytest.raises(ValueError):
        make_policy("plru")


def test_srrip_scan_resistance():
    """SRRIP keeps a re-referenced line through a one-shot scan."""
    cache = Cache(size=4 * LINE_SIZE, ways=4, latency=1, policy=SRRIP())
    hot = 0x0
    cache.fill(hot)
    for _ in range(4):
        cache.lookup(hot)  # RRPV -> 0
    for i in range(1, 4):
        cache.fill(i * 0x10000)  # scan fills
    cache.fill(0x50000)  # forces a victim
    assert cache.present(hot)


def test_random_policy_is_deterministic_with_seed():
    def victims(seed):
        cache = Cache(
            size=2 * LINE_SIZE, ways=2, latency=1, policy=RandomReplacement(seed)
        )
        out = []
        for i in range(10):
            cache.fill(i * 0x1000)
            out.append(cache.resident_lines())
        return out

    assert victims(1) == victims(1)
