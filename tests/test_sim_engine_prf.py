"""Finite physical-register-file engine tests (paper Section 4.2)."""

from repro.champsim.trace import ChampSimInstr
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator


def run(instrs, prf_size):
    config = SimConfig.main(
        l1d_prefetcher="", l2_prefetcher="", fdip_lookahead=0, prf_size=prf_size
    )
    return Simulator(config).run(instrs)


def alu(ip, dst=1, srcs=()):
    return ChampSimInstr(ip=ip, dst_regs=(dst,), src_regs=srcs)


def load(ip, dst, addr):
    return ChampSimInstr(ip=ip, dst_regs=(dst,), src_mem=(addr,))


def workload(n=2000):
    """Independent cold loads: PRF-limited MLP."""
    return [
        load(0x400000 + 4 * (i % 16), dst=1 + i % 4, addr=0x10_000_000 + 0x10000 * i)
        for i in range(n)
    ]


def test_unlimited_prf_matches_default():
    instrs = workload(800)
    assert run(instrs, 0).cycles == run(instrs, 0).cycles
    # prf_size=0 means unlimited: a gigantic PRF must behave identically.
    assert run(instrs, 0).cycles == run(instrs, 10_000).cycles


def test_small_prf_throttles_mlp():
    instrs = workload(800)
    big = run(instrs, 0)
    small = run(instrs, 8)
    assert small.ipc < big.ipc / 2


def test_prf_monotonic_in_size():
    instrs = workload(800)
    cycles = [run(instrs, size).cycles for size in (8, 32, 128, 0)]
    assert cycles == sorted(cycles, reverse=True)


def test_destination_less_instructions_need_no_registers():
    """Compares (no destinations) never stall on the PRF."""
    instrs = [
        ChampSimInstr(ip=0x400000 + 4 * (i % 16), src_regs=(1, 2))
        for i in range(2000)
    ]
    tight = run(instrs, 4)
    free = run(instrs, 0)
    assert tight.cycles == free.cycles


def test_forged_destinations_waste_registers():
    """The mem-regs mechanism: spurious destinations consume the PRF."""
    with_dsts = [
        alu(0x400000 + 4 * (i % 16), dst=1 + i % 2, srcs=()) for i in range(2000)
    ]
    without = [
        ChampSimInstr(ip=0x400000 + 4 * (i % 16), src_regs=()) for i in range(2000)
    ]
    # With a tiny PRF, destination-less streams flow faster.
    assert run(without, 6).cycles <= run(with_dsts, 6).cycles


def test_prf_interacts_with_mem_regs(small_trace):
    from repro.core import Converter, Improvement

    def ipc(imp, prf):
        converter = Converter(imp)
        instrs = list(converter.convert(small_trace))
        config = SimConfig.main(prf_size=prf)
        return Simulator(config).run(instrs, converter.required_branch_rules).ipc

    # Under a tight PRF, keeping exact destinations should not lose to
    # the forging/dropping original (it frees registers on net).
    gain_tight = ipc(Improvement.MEM_REGS, 64) / ipc(Improvement.NONE, 64)
    assert gain_tight > 0.98
