"""End-to-end integration tests: the paper's qualitative results.

Each test runs generate → convert → simulate on small synthetic traces
and asserts the *shape* the paper reports (signs, orderings, where the
effects concentrate) — not absolute numbers.
"""

import pytest

from repro.core import Converter, Improvement
from repro.sim import SimConfig, Simulator
from repro.synth import make_trace


@pytest.fixture(scope="module")
def runs():
    """IPC and stats per improvement set over a small mixed suite."""
    names = ["srv_3", "srv_10", "compute_int_5", "compute_fp_2", "crypto_1"]
    table = {}
    for name in names:
        records = make_trace(name, 8000)
        per_imp = {}
        for imp in (
            Improvement.NONE,
            Improvement.BASE_UPDATE,
            Improvement.CALL_STACK,
            Improvement.BRANCH_REGS,
            Improvement.FLAG_REG,
            Improvement.MEM_FOOTPRINT,
            Improvement.ALL,
        ):
            converter = Converter(imp)
            instrs = list(converter.convert(records))
            per_imp[imp] = Simulator(SimConfig.main()).run(
                instrs, converter.required_branch_rules
            )
        table[name] = per_imp
    return table


def geo(values):
    import math

    return math.exp(sum(math.log(v) for v in values) / len(values))


def variation(runs, imp):
    base = geo([r[Improvement.NONE].ipc for r in runs.values()])
    improved = geo([r[imp].ipc for r in runs.values()])
    return improved / base - 1


def test_branch_regs_slows_down(runs):
    assert variation(runs, Improvement.BRANCH_REGS) < -0.005


def test_flag_reg_slows_down(runs):
    assert variation(runs, Improvement.FLAG_REG) < -0.005


def test_base_update_speeds_up(runs):
    assert variation(runs, Improvement.BASE_UPDATE) > 0.0


def test_mem_footprint_is_negligible(runs):
    assert abs(variation(runs, Improvement.MEM_FOOTPRINT)) < 0.01


def test_call_stack_concentrates_on_affected_traces(runs):
    affected = runs["srv_3"]
    unaffected = runs["crypto_1"]
    gain_affected = (
        affected[Improvement.CALL_STACK].ipc / affected[Improvement.NONE].ipc
    )
    gain_unaffected = (
        unaffected[Improvement.CALL_STACK].ipc / unaffected[Improvement.NONE].ipc
    )
    assert gain_affected > 1.005
    assert abs(gain_unaffected - 1) < 0.005


def test_call_stack_fixes_ras_mpki_by_an_order_of_magnitude(runs):
    affected = runs["srv_3"]
    before = affected[Improvement.NONE].ras_mpki
    after = affected[Improvement.CALL_STACK].ras_mpki
    assert before > 2.0
    assert after < before / 5


def test_branch_improvements_increase_branch_penalty_not_mpki(runs):
    """flag-reg delays resolution; the mispredict *count* barely moves."""
    for name, per_imp in runs.items():
        base = per_imp[Improvement.NONE]
        flag = per_imp[Improvement.FLAG_REG]
        if base.direction_mpki > 0.5:
            assert flag.direction_mpki == pytest.approx(
                base.direction_mpki, rel=0.35
            )


def test_base_update_dilutes_mpki(runs):
    """Splitting increases the instruction count, slightly reducing MPKIs
    (paper Section 4.3: 1-4%)."""
    trace = runs["compute_fp_2"]
    base = trace[Improvement.NONE]
    upd = trace[Improvement.BASE_UPDATE]
    assert upd.instructions > base.instructions


def test_all_imps_within_envelope(runs):
    """All improvements combined land between the branch-only drop and
    the memory-only gain."""
    all_var = variation(runs, Improvement.ALL)
    flag_var = variation(runs, Improvement.FLAG_REG)
    base_var = variation(runs, Improvement.BASE_UPDATE)
    assert flag_var - 0.1 < all_var < base_var + 0.1


def test_significant_fraction_of_traces_move_more_than_5pct(runs):
    moved = 0
    for per_imp in runs.values():
        delta = per_imp[Improvement.ALL].ipc / per_imp[Improvement.NONE].ipc - 1
        if abs(delta) > 0.05:
            moved += 1
    assert moved >= 1  # the paper: 43 of 135


def test_patched_rules_keep_branch_population(runs):
    """branch-regs must not change how many branches the simulator sees."""
    for per_imp in runs.values():
        base = per_imp[Improvement.NONE]
        br = per_imp[Improvement.BRANCH_REGS]
        assert br.branches == base.branches
