"""Suite-level conversion driver tests."""

import pytest

from repro.champsim.trace import read_champsim_trace
from repro.core import Improvement, convert_suite
from repro.cvp.reader import read_trace


def test_convert_suite_writes_both_formats(tmp_path):
    results = convert_suite(
        "IPC1", tmp_path, Improvement.ALL, instructions=200, limit=2
    )
    assert len(results) == 2
    for result in results:
        assert result.source.exists()
        assert result.destination.exists()
        assert read_trace(result.source)
        assert read_champsim_trace(result.destination)


def test_convert_suite_public_with_stride(tmp_path):
    results = convert_suite(
        "CVP1public", tmp_path, instructions=150, limit=2, stride=40
    )
    names = [r.source.name for r in results]
    assert names == ["srv_0.cvp.gz", "srv_40.cvp.gz"]


def test_convert_suite_rejects_unknown_suite(tmp_path):
    with pytest.raises(ValueError):
        convert_suite("SPEC2017", tmp_path)


def test_convert_suite_creates_directory(tmp_path):
    target = tmp_path / "nested" / "dir"
    convert_suite("IPC1", target, instructions=100, limit=1)
    assert (target / "client_001.champsimtrace.gz").exists()


def test_convert_suite_reports_branch_rules(tmp_path):
    from repro.champsim.branch_info import BranchRules

    results = convert_suite(
        "IPC1", tmp_path, Improvement.BRANCH_REGS, instructions=100, limit=1
    )
    assert results[0].branch_rules is BranchRules.PATCHED
