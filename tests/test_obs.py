"""Tests for the :mod:`repro.obs` observability subsystem.

Covers the registry (including a merge property test), the JSONL event
log and its schema versioning, span nesting, the Prometheus textfile
format, the ``CacheCounters`` instrument, the disabled-mode no-op
guarantee (byte identity and bounded overhead), and worker-snapshot
merging through :func:`repro.experiments.parallel.run_tasks`.
"""

from __future__ import annotations

import json
import os
from time import perf_counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.obs as obs
from repro.obs import events, logutil, metrics, promfile, spans, state
from repro.obs.events import ObsLogError, worker_log_path
from repro.obs.instruments import CACHE_EVENTS_METRIC, CacheCounters
from repro.obs.metrics import MetricsRegistry, merge_snapshots
from repro.obs.summarize import aggregate_logs


def _reset_obs() -> None:
    for var in (
        state.OBS_ENV,
        state.LOG_ENV,
        state.MAIN_PID_ENV,
        state.PROM_ENV,
        state.PROGRAM_ENV,
    ):
        os.environ.pop(var, None)
    state.refresh()
    metrics.registry().reset()
    events.reset_sink()
    obs._finalized = False


@pytest.fixture
def obs_reset():
    """Pristine, disabled obs layer; restored after the test."""
    _reset_obs()
    yield
    _reset_obs()


@pytest.fixture
def obs_log(obs_reset, tmp_path):
    """Enabled obs writing to a tmp JSONL log; yields the log path."""
    log = tmp_path / "obs.jsonl"
    obs.configure(log=log, program="pytest-obs")
    yield log


# ----------------------------------------------------------------------
# disabled mode
# ----------------------------------------------------------------------


def test_disabled_by_default(obs_reset):
    assert state.enabled() is False
    assert obs.enabled() is False


def test_disabled_span_is_shared_noop(obs_reset):
    first = obs.span("convert.file", source="x")
    second = obs.span("sim.engine")
    assert first is second is spans._NOOP
    with first as opened:
        opened.set(records=1)  # must be accepted and discarded
    # Pre-measured child spans are equally free when disabled.
    obs.emit_child_span("convert.encode", 0.0, 1.0, {"estimated": True})


def test_disabled_convert_overhead_within_3_percent(obs_reset, small_trace):
    """The obs-aware dispatch must not slow the fused convert path.

    With observability off, ``Converter.convert_to_bytes`` adds exactly
    one ``enabled()`` check per call over invoking the fused generator
    directly — interleaved min-of-K timing keeps the comparison noise
    well under the asserted bound.
    """
    from repro.core.convert import Converter
    from repro.core.fastconvert import convert_blocks_to_bytes
    from repro.core.improvements import Improvement

    def via_dispatch() -> None:
        converter = Converter(Improvement.ALL)
        for _ in converter.convert_to_bytes(iter(small_trace), 4096):
            pass

    def via_fused() -> None:
        converter = Converter(Improvement.ALL)
        for _ in convert_blocks_to_bytes(converter, iter(small_trace), 4096):
            pass

    via_dispatch(), via_fused()  # warm both paths before timing
    # Retried measurement: a real regression (per-record work behind the
    # dispatch) fails every attempt by a wide margin, while scheduler /
    # frequency-scaling noise on a loaded runner rarely survives three
    # independent min-of-7 rounds.
    for _ in range(3):
        best_dispatch = float("inf")
        best_fused = float("inf")
        for _ in range(7):
            start = perf_counter()
            via_dispatch()
            best_dispatch = min(best_dispatch, perf_counter() - start)
            start = perf_counter()
            via_fused()
            best_fused = min(best_fused, perf_counter() - start)
        if best_dispatch <= best_fused * 1.03:
            break
    assert best_dispatch <= best_fused * 1.03


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------


def test_jsonl_round_trip(obs_log):
    with obs.span("outer", kind="test") as outer:
        with obs.span("inner"):
            pass
        outer.set(records=7)
    obs.emit_event("task.retry", {"task": "t", "attempt": 1})
    obs.counter("test_total").inc(3)
    obs.finalize()

    payloads = list(events.iter_events(obs_log))
    assert payloads[0]["type"] == "meta"
    assert payloads[0]["schema"] == events.OBS_SCHEMA
    assert payloads[0]["program"] == "pytest-obs"

    span_rows = [p for p in payloads if p["type"] == "span"]
    by_name = {p["name"]: p for p in span_rows}
    # The inner span closes first and carries the outer span's id.
    assert by_name["inner"]["parent"] == by_name["outer"]["id"]
    assert "parent" not in by_name["outer"]
    assert by_name["outer"]["attrs"] == {"kind": "test", "records": 7}
    assert by_name["outer"]["dur"] >= by_name["inner"]["dur"] >= 0

    event_rows = [p for p in payloads if p["type"] == "event"]
    assert event_rows[0]["name"] == "task.retry"
    assert event_rows[0]["attrs"] == {"task": "t", "attempt": 1}

    metric_rows = [p for p in payloads if p["type"] == "metrics"]
    assert len(metric_rows) == 1
    snap = metric_rows[0]["snapshot"]
    assert {"name": "test_total", "labels": {}, "value": 3} in snap["counters"]


def test_jsonl_non_json_attrs_stringify(obs_log, tmp_path):
    with obs.span("file", path=tmp_path):  # Path is not JSON-serialisable
        pass
    obs.finalize()
    rows = [p for p in events.iter_events(obs_log) if p["type"] == "span"]
    assert rows[0]["attrs"]["path"] == str(tmp_path)


def test_finalize_emits_one_snapshot(obs_log):
    obs.counter("finalize_total").inc()
    obs.finalize()
    obs.finalize()  # second call must not append a second snapshot
    rows = [p for p in events.iter_events(obs_log) if p["type"] == "metrics"]
    assert len(rows) == 1


def test_newer_schema_rejected(tmp_path):
    log = tmp_path / "future.jsonl"
    log.write_text(
        json.dumps({"type": "meta", "schema": events.OBS_SCHEMA + 1}) + "\n"
    )
    with pytest.raises(ObsLogError, match="newer than supported"):
        list(events.iter_events(log))


def test_malformed_json_rejected(tmp_path):
    log = tmp_path / "bad.jsonl"
    log.write_text('{"type":"meta","schema":1}\nnot json\n')
    with pytest.raises(ObsLogError, match="not valid JSON"):
        list(events.iter_events(log))


def test_span_error_recorded(obs_log):
    with pytest.raises(ValueError):
        with obs.span("boom"):
            raise ValueError("kaboom")
    obs.finalize()
    rows = [p for p in events.iter_events(obs_log) if p["type"] == "span"]
    assert rows[0]["attrs"]["error"] == "ValueError"


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------


def test_registry_families_and_labels():
    reg = MetricsRegistry()
    family = reg.counter("events_total")
    family.labels(op="hit").inc()
    family.labels(op="hit").inc(2)
    family.labels(op="miss").inc()
    family.inc()  # family proxies its unlabeled child
    assert family.labels(op="hit").value == 3
    snap = reg.snapshot()
    values = {
        tuple(sorted(c["labels"].items())): c["value"]
        for c in snap["counters"]
    }
    assert values == {(("op", "hit"),): 3, (("op", "miss"),): 1, (): 1}
    with pytest.raises(ValueError):
        reg.gauge("events_total")  # kind mismatch on an existing name
    with pytest.raises(ValueError):
        family.inc(-1)  # counters only go up


def test_histogram_bounds_mismatch_raises():
    left = MetricsRegistry()
    right = MetricsRegistry()
    left.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
    right.histogram("h", buckets=(1.0, 5.0)).observe(0.5)
    with pytest.raises(ValueError):
        left.merge(right.snapshot())


_OPS = st.lists(
    st.tuples(
        st.sampled_from(["a_total", "b_total", "c_total"]),
        st.sampled_from(["", "x", "y"]),
        st.integers(min_value=0, max_value=50),
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS, splits=st.integers(min_value=1, max_value=4))
def test_merge_property_split_equals_serial(ops, splits):
    """Counters applied across N registries merge to the serial result."""
    serial = MetricsRegistry()
    shards = [MetricsRegistry() for _ in range(splits)]
    for index, (name, label, amount) in enumerate(ops):
        labels = {"k": label} if label else {}
        serial.counter(name).labels(**labels).inc(amount)
        shards[index % splits].counter(name).labels(**labels).inc(amount)

    merged = MetricsRegistry()
    for shard in shards:
        merged.merge(shard.collect(reset=True))

    def nonzero(registry):
        # merge() skips zero-valued entries (they are structural, not
        # data), so only counters that actually counted must agree; the
        # sort removes insertion-order differences between the shards'
        # round-robin fill and the serial registry.
        return sorted(
            (c for c in registry.snapshot()["counters"] if c["value"]),
            key=lambda c: (c["name"], sorted(c["labels"].items())),
        )

    assert nonzero(merged) == nonzero(serial)
    # After collect(reset=True) the shards are empty.
    assert all(not s.snapshot()["counters"] for s in shards)


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        max_size=30,
    ),
    splits=st.integers(min_value=1, max_value=3),
)
def test_merge_property_histograms(values, splits):
    serial = MetricsRegistry()
    shards = [MetricsRegistry() for _ in range(splits)]
    for index, value in enumerate(values):
        serial.histogram("h_seconds").observe(value)
        shards[index % splits].histogram("h_seconds").observe(value)
    merged = merge_snapshots(shard.snapshot() for shard in shards)
    expected = serial.snapshot()["histograms"]
    assert len(merged["histograms"]) == len(expected)
    for got, want in zip(merged["histograms"], expected):
        assert got["counts"] == want["counts"]
        assert got["bounds"] == want["bounds"]
        assert got["count"] == want["count"]
        # Addition order differs between the shard split and the serial
        # stream, so the sums may disagree in the last ulp.
        assert got["sum"] == pytest.approx(want["sum"])


def test_gauge_merge_last_write_wins():
    reg = MetricsRegistry()
    reg.gauge("g").set(1.0)
    other = MetricsRegistry()
    other.gauge("g").set(9.0)
    reg.merge(other.snapshot())
    assert reg.gauge("g").value == 9.0


# ----------------------------------------------------------------------
# Prometheus textfile
# ----------------------------------------------------------------------


def test_prometheus_exposition_format():
    reg = MetricsRegistry()
    reg.counter("repro.convert.records").labels(kind='sp"ecial').inc(4)
    reg.gauge("depth").set(2.5)
    hist = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    text = promfile.render_snapshot(reg.snapshot())
    lines = text.splitlines()

    assert "# TYPE repro_convert_records counter" in lines
    assert 'repro_convert_records{kind="sp\\"ecial"} 4' in lines
    assert "# TYPE depth gauge" in lines
    assert "depth 2.5" in lines
    # Histogram buckets are cumulative and close with +Inf == count.
    assert "lat_seconds_bucket{le=\"0.1\"} 1" in lines
    assert "lat_seconds_bucket{le=\"1\"} 2" in lines
    assert "lat_seconds_bucket{le=\"+Inf\"} 3" in lines
    assert "lat_seconds_sum 5.55" in lines
    assert "lat_seconds_count 3" in lines
    assert text.endswith("\n")


def test_prometheus_textfile_atomic_write(tmp_path):
    reg = MetricsRegistry()
    reg.counter("c_total").inc()
    target = tmp_path / "metrics" / "repro.prom"
    promfile.write_textfile(target, reg.snapshot())
    assert target.read_text() == "# TYPE c_total counter\nc_total 1\n"
    assert list(target.parent.iterdir()) == [target]  # no tmp leftovers


# ----------------------------------------------------------------------
# CacheCounters instrument
# ----------------------------------------------------------------------


def test_cache_counters_mirror_and_reset_survival(obs_reset):
    counters = CacheCounters("test")
    counters.hit()
    counters.miss()
    counters.store()
    counters.store_error()
    assert (counters.hits, counters.misses) == (1, 1)
    assert (counters.stores, counters.store_errors) == (1, 1)
    assert counters.describe_hit_miss() == "hits=1 misses=1"

    def mirrored() -> dict:
        return {
            c["labels"]["op"]: c["value"]
            for c in metrics.registry().snapshot()["counters"]
            if c["name"] == CACHE_EVENTS_METRIC
        }

    assert mirrored() == {"hit": 1, "miss": 1, "store": 1, "store_error": 1}
    # A registry reset (worker task hand-off) must not detach the mirror.
    metrics.registry().reset()
    counters.hit()
    assert mirrored() == {"hit": 1}
    assert counters.hits == 2  # plain ints keep the full-process view


def test_cache_describe_formats(tmp_path, obs_reset):
    from repro.analysis.cache import LintCache
    from repro.experiments.cache import ConversionCache, ResultCache

    result = ResultCache(tmp_path / "rc")
    assert result.load("0" * 64) is None
    assert (
        result.describe()
        == f"hits=0 misses=1 stores=0 dir={tmp_path / 'rc'}"
    )
    conversion = ConversionCache(tmp_path / "cc")
    assert conversion.load("x", "0" * 64) is None
    assert conversion.describe() == f"hits=0 misses=1 dir={tmp_path / 'cc'}"
    lint = LintCache(tmp_path / "lc")
    assert lint.load("0" * 64) is None
    assert (
        lint.describe() == f"hits=0 misses=1 stores=0 dir={tmp_path / 'lc'}"
    )


# ----------------------------------------------------------------------
# observed convert path
# ----------------------------------------------------------------------


def test_observed_convert_byte_identity(obs_log, small_trace):
    from repro.core.convert import Converter
    from repro.core.improvements import Improvement

    state.set_enabled(False)
    baseline_converter = Converter(Improvement.ALL)
    baseline = b"".join(
        baseline_converter.convert_to_bytes(iter(small_trace), 64)
    )
    state.set_enabled(True)
    observed_converter = Converter(Improvement.ALL)
    observed = b"".join(
        observed_converter.convert_to_bytes(iter(small_trace), 64)
    )
    assert observed == baseline
    assert observed_converter.stats == baseline_converter.stats

    obs.finalize()
    summary = aggregate_logs([obs_log])
    names = {row["name"] for row in summary["spans"]}
    assert "convert.stream" in names
    assert "convert.block_decode" in names
    assert "convert.improvement.mem_regs" in names
    counters = {c["name"]: c["value"] for c in summary["counters"]}
    assert counters["repro_convert_records_total"] == len(small_trace)
    assert counters["repro_convert_static_memo_lookups_total"] > 0


# ----------------------------------------------------------------------
# logging hierarchy
# ----------------------------------------------------------------------


def test_logutil_levels_and_flags():
    import argparse
    import logging

    assert logutil.get_logger("core").name == "repro.core"
    assert logutil.get_logger("repro.sim").name == "repro.sim"

    parser = argparse.ArgumentParser()
    logutil.add_logging_flags(parser)
    args = parser.parse_args(["-vv", "--quiet"])
    assert (args.verbose, args.quiet) == (2, 1)
    assert logutil.configure_from_args(args) == logging.INFO
    assert logging.getLogger("repro").level == logging.INFO
    assert logutil.configure_logging(0, 5) == logging.CRITICAL  # clamped
    logutil.configure_logging(0, 0)  # restore WARNING for other tests


def test_repro_convert_verbose_flag_still_truthy():
    from repro.core.cli import build_parser

    args = build_parser().parse_args(["-v", "-t", "a", "-o", "b"])
    assert args.verbose  # count action keeps the old truthy meaning
    assert build_parser().parse_args(["-t", "a", "-o", "b"]).verbose == 0


# ----------------------------------------------------------------------
# parallel fan-out
# ----------------------------------------------------------------------


def _counting_task(task):
    metrics.registry().counter("test_pool_tasks_total").inc()
    return task * 2


def _failing_task(task):
    raise RuntimeError(f"always fails: {task}")


def test_run_tasks_merges_worker_snapshots(obs_log):
    from repro.experiments.parallel import run_tasks

    assert run_tasks([1, 2, 3], jobs=2, task_fn=_counting_task) == [2, 4, 6]
    assert metrics.registry().counter("test_pool_tasks_total").value == 3


def test_run_tasks_emits_retry_and_failure_events(obs_log):
    from repro.experiments.parallel import TaskFailure, run_tasks

    with pytest.raises(TaskFailure):
        run_tasks(["t1"], jobs=1, task_fn=_failing_task)
    obs.finalize()
    rows = [p for p in events.iter_events(obs_log) if p["type"] == "event"]
    by_name = {}
    for row in rows:
        by_name.setdefault(row["name"], []).append(row["attrs"])
    assert len(by_name["task.retry"]) == 1
    assert len(by_name["task.failed"]) == 1
    failed = by_name["task.failed"][0]
    assert failed["task"] == repr("t1")  # label of a nameless task
    assert "always fails: t1" in failed["traceback"]
    assert len(failed["fingerprint"]) == 64  # sha-256 hex
    assert failed["fingerprint"] == by_name["task.retry"][0]["fingerprint"]


# ----------------------------------------------------------------------
# repro-obs CLI over a multi-worker log family
# ----------------------------------------------------------------------


def _write_log(path, pid, payloads):
    lines = [{"type": "meta", "schema": 1, "pid": pid, "program": "fake"}]
    lines.extend(payloads)
    path.write_text(
        "".join(json.dumps(line) + "\n" for line in lines), encoding="utf-8"
    )


def _snapshot_with(name, value):
    reg = MetricsRegistry()
    reg.counter(name).inc(value)
    return reg.snapshot()


def test_obs_cli_aggregates_worker_family(tmp_path, capsys):
    from repro.obs.cli import main as obs_main

    log = tmp_path / "run.jsonl"
    _write_log(
        log,
        1,
        [
            {"type": "span", "name": "root", "id": 1, "start": 0.0, "dur": 1.0},
            {"type": "metrics", "snapshot": _snapshot_with("jobs_total", 1)},
        ],
    )
    for pid in (7, 8):
        _write_log(
            worker_log_path(log, pid),
            pid,
            [
                {
                    "type": "span",
                    "name": "work",
                    "id": 1,
                    "start": 0.0,
                    "dur": 0.5,
                },
                {
                    "type": "metrics",
                    "snapshot": _snapshot_with("jobs_total", 2),
                },
            ],
        )

    assert obs_main(["summarize", str(log)]) == 0
    text = capsys.readouterr().out
    assert "# 3 log file(s)" in text
    assert "root" in text and "work" in text
    assert "5" in text and "jobs_total" in text  # 1 + 2 + 2 merged

    assert obs_main(["summarize", str(log), "--no-workers", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["files"] == [str(log)]
    assert payload["counters"] == [
        {"name": "jobs_total", "labels": {}, "value": 1}
    ]
    assert payload["spans"][0]["name"] == "root"


def test_obs_cli_error_exits(tmp_path, capsys):
    from repro.obs.cli import main as obs_main

    assert obs_main(["summarize", str(tmp_path / "absent.jsonl")]) == 2
    assert "no such log" in capsys.readouterr().err
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    assert obs_main(["summarize", str(bad)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_summarize_self_time_and_estimated(tmp_path):
    log = tmp_path / "tree.jsonl"
    _write_log(
        log,
        1,
        [
            {"type": "span", "name": "child", "id": 2, "parent": 1,
             "start": 0.1, "dur": 0.4},
            {"type": "span", "name": "guess", "id": 3, "parent": 1,
             "start": 0.5, "dur": 0.2, "attrs": {"estimated": True}},
            {"type": "span", "name": "root", "id": 1, "start": 0.0,
             "dur": 1.0},
        ],
    )
    rows = {
        tuple(row["path"]): row for row in aggregate_logs([log])["spans"]
    }
    assert rows[("root",)]["self"] == pytest.approx(0.4)
    assert rows[("root",)]["total"] == pytest.approx(1.0)
    assert rows[("root", "child")]["estimated"] is False
    assert rows[("root", "guess")]["estimated"] is True
