"""Interval-engine timing tests: the mechanisms behind the paper's effects.

These build tiny hand-written instruction streams (loops over small code
regions, so the instruction side stays warm) and assert on relative cycle
counts, pinning down the engine's first-order behaviours: dependency
stalls, cache-latency completion, redirect-at-resolve, RAS behaviour,
ROB and width limits.
"""

import random

from repro.champsim.branch_info import BranchRules
from repro.champsim.regs import (
    REG_FLAGS,
    REG_INSTRUCTION_POINTER as IP,
    REG_STACK_POINTER as SP,
)
from repro.champsim.trace import ChampSimInstr
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator


def run(instrs, rules=BranchRules.ORIGINAL, **config_overrides):
    config = SimConfig.main(
        l1d_prefetcher="", l2_prefetcher="", fdip_lookahead=0, **config_overrides
    )
    return Simulator(config).run(instrs, rules)


def alu(ip, dst=None, srcs=()):
    return ChampSimInstr(
        ip=ip, dst_regs=(dst,) if dst else (), src_regs=tuple(srcs)
    )


def load(ip, dst, addr):
    return ChampSimInstr(ip=ip, dst_regs=(dst,), src_mem=(addr,))


#: Small looped code region: 16 distinct PCs (one cacheline).
def loop_pc(i, stride=4, span=16, base=0x400000):
    return base + stride * (i % span)


def straightline(n):
    return [alu(loop_pc(i), dst=1 + (i % 4)) for i in range(n)]


def test_ipc_bounded_by_width():
    stats = run(straightline(3000))
    assert stats.ipc <= 6.0
    assert stats.ipc > 2.0  # independent ALUs in warm code should flow


def test_dependency_chain_serialises():
    chained = [alu(loop_pc(i), dst=1, srcs=(1,)) for i in range(3000)]
    chain_stats = run(chained)
    flat_stats = run(straightline(3000))
    assert chain_stats.ipc < flat_stats.ipc / 2
    assert chain_stats.ipc <= 1.05  # one ALU per cycle at best


def test_cache_miss_latency_exposed_through_dependents():
    """A pointer-chase chain pays the full latency of each miss."""

    def workload(addresses):
        instrs = []
        for i, addr in enumerate(addresses):
            pc = loop_pc(i, span=16)
            # Each load's address register is the previous load's result:
            # a serial chain, like a linked-list walk.
            instrs.append(
                ChampSimInstr(ip=pc, dst_regs=(1,), src_regs=(1,), src_mem=(addr,))
            )
        return instrs

    cold = run(workload([0x10_000_000 + 0x10000 * i for i in range(300)]))
    warm = run(workload([0x10_000_000] * 300))
    assert warm.ipc > 5 * cold.ipc
    assert cold.l1d_mpki > 900  # every chase load misses


def test_rob_limits_memory_level_parallelism():
    """Independent cold loads overlap only within the ROB window."""
    loads = [
        load(loop_pc(i), dst=1 + (i % 4), addr=0x10_000_000 + 0x10000 * i)
        for i in range(600)
    ]
    big = run(loads, rob_size=512)
    small = run(loads, rob_size=16)
    assert big.ipc > 1.5 * small.ipc


def _branchy(random_direction, n=2000):
    """A loop of 8 static branches; direction per profile."""
    rng = random.Random(3)
    instrs = []
    for i in range(n):
        ip = 0x400000 + 8 * (i % 8)
        taken = rng.random() < 0.5 if random_direction else (i % 8 == 7)
        instrs.append(
            ChampSimInstr(
                ip=ip,
                is_branch=True,
                branch_taken=taken,
                src_regs=(IP, REG_FLAGS),
                dst_regs=(IP,),
            )
        )
    # Normalise the follow-on IPs so taken targets are consistent.
    fixed = []
    for idx, instr in enumerate(instrs):
        fixed.append(instr)
    return fixed


def test_branch_mispredicts_cost_cycles():
    predictable = run(_branchy(False))
    unpredictable = run(_branchy(True))
    assert unpredictable.ipc < predictable.ipc
    assert unpredictable.direction_mpki > 100
    assert predictable.direction_mpki < 60  # the loop pattern is learnable


def test_late_resolving_mispredicts_cost_more():
    """The flag-reg / branch-regs mechanism in isolation.

    The same mispredict stream costs more when every branch depends on a
    cold load than when it depends on nothing that is in flight.
    """

    def workload(dependent):
        rng = random.Random(11)
        instrs = []
        for i in range(500):
            ip = 0x400000 + 16 * (i % 4)
            addr = 0x10_000_000 + 0x10000 * i  # always cold
            instrs.append(load(ip, dst=9, addr=addr))
            taken = rng.random() < 0.5
            instrs.append(
                ChampSimInstr(
                    ip=ip + 4,
                    is_branch=True,
                    branch_taken=taken,
                    src_regs=(IP, 9) if dependent else (IP, REG_FLAGS),
                    dst_regs=(IP,),
                )
            )
        return instrs

    independent = run(workload(False), BranchRules.PATCHED, rob_size=64)
    dependent = run(workload(True), BranchRules.PATCHED, rob_size=64)
    assert dependent.ipc < independent.ipc * 0.9


def test_misclassified_return_corrupts_ras():
    """Calls typed as returns cause return-target mispredicts (Fig. 5)."""

    def workload(call_as_return):
        instrs = []
        for i in range(400):
            ip = 0x400000 + 8 * (i % 8)
            callee = 0x500000 + (i % 4) * 0x1000
            if call_as_return:
                # Register signature of a return (pops the RAS).
                call = ChampSimInstr(
                    ip=ip, is_branch=True, branch_taken=True,
                    src_regs=(SP,), dst_regs=(IP, SP),
                )
            else:
                call = ChampSimInstr(
                    ip=ip, is_branch=True, branch_taken=True,
                    src_regs=(IP, SP, 31), dst_regs=(IP, SP),
                )
            instrs.append(call)
            instrs.append(alu(callee, dst=1))
            # Genuine return back to the call site + 4.
            instrs.append(
                ChampSimInstr(
                    ip=callee + 4, is_branch=True, branch_taken=True,
                    src_regs=(SP,), dst_regs=(IP, SP),
                )
            )
            instrs.append(alu(ip + 4, dst=2))
        return instrs

    buggy = run(workload(True))
    fixed = run(workload(False))
    assert buggy.ras_mpki > 5 * max(fixed.ras_mpki, 0.5)
    assert fixed.ipc > buggy.ipc


def test_warmup_excludes_early_stats():
    instrs = straightline(1000)
    full = run(instrs)
    warm = run(instrs, warmup_fraction=0.5)
    assert warm.instructions == 500
    assert full.instructions == 1000


def test_ideal_targets_suppress_target_misses():
    rng = random.Random(5)
    instrs = []
    for i in range(500):
        ip = 0x400000 + 8 * (i % 8)
        target = 0x500000 + rng.randrange(64) * 0x100
        instrs.append(
            ChampSimInstr(
                ip=ip, is_branch=True, branch_taken=True,
                src_regs=(31,), dst_regs=(IP,),
            )
        )
        instrs.append(alu(target, dst=1))
        instrs.append(
            ChampSimInstr(
                ip=target + 4, is_branch=True, branch_taken=True, dst_regs=(IP,)
            )
        )

    real = run(instrs)
    ideal = run(instrs, ideal_targets=True)
    assert real.target_mpki > 0
    assert ideal.target_mpki == 0
    assert ideal.ipc >= real.ipc


def test_fdip_reduces_instruction_stalls():
    """Walking a big code footprint is faster with FDIP runahead."""
    instrs = [alu(0x400000 + 4 * i, dst=1 + (i % 4)) for i in range(4000)]
    no_fdip = run(instrs)
    with_fdip = Simulator(
        SimConfig.main(l1d_prefetcher="", l2_prefetcher="", fdip_lookahead=16)
    ).run(instrs)
    assert with_fdip.ipc > 1.5 * no_fdip.ipc


def test_deterministic_simulation(small_trace):
    from repro.core import Improvement, convert_trace

    instrs = convert_trace(small_trace, Improvement.ALL)
    a = Simulator(SimConfig.main()).run(instrs)
    b = Simulator(SimConfig.main()).run(instrs)
    assert a.ipc == b.ipc
    assert a.cycles == b.cycles
