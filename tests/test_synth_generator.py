"""Dynamic trace-generator tests: the invariants the converter relies on."""


from repro.cvp.addrmode import infer_addressing
from repro.cvp.isa import InstClass, LINK_REGISTER
from repro.cvp.reader import CvpTraceReader
from repro.synth import make_trace
from repro.synth.generator import TraceGenerator
from repro.synth.suite import (
    IPC1_TO_CVP1,
    cvp1_public_trace_names,
    cvp1_public_suite,
    ipc1_suite,
    ipc1_trace_names,
)


def test_exact_instruction_count():
    assert len(make_trace("crypto_0", 777)) == 777


def test_zero_budget():
    assert make_trace("crypto_0", 0) == []


def test_generation_is_deterministic():
    assert make_trace("srv_9", 1000) == make_trace("srv_9", 1000)


def test_different_seeds_differ():
    a = make_trace("srv_9", 1000)
    b = make_trace("srv_9", 1000, seed="other")
    assert a != b


def test_prefix_property():
    """A shorter trace is a prefix of a longer one (same seed)."""
    short = make_trace("compute_fp_1", 500)
    long = make_trace("compute_fp_1", 1500)
    assert long[:500] == short


def test_control_flow_consistency(small_trace):
    """Taken branches land exactly on the next record's PC.

    ChampSim infers branch targets from the following instruction's IP,
    so this invariant is what makes the converted traces simulate
    correctly.  Sequential flow may skip small reserved PC gaps (the
    layout holds two 4-byte slots per body position), so non-branch
    records only require a small forward step.
    """
    for current, following in zip(small_trace, small_trace[1:]):
        if current.branch_taken:
            assert current.branch_target == following.pc, (
                f"taken branch at pc={current.pc:#x} targets "
                f"{current.branch_target:#x} but next record is "
                f"{following.pc:#x}"
            )
        else:
            gap = following.pc - current.pc
            assert 4 <= gap <= 64, f"sequential gap {gap} at pc={current.pc:#x}"


def test_calls_and_returns_balance(small_trace):
    """Return targets equal call sites + 4 (exact RAS semantics)."""
    stack = []
    for record in small_trace:
        if record.is_branch and LINK_REGISTER in record.dst_regs:
            stack.append(record.pc + 4)
        elif (
            record.inst_class is InstClass.UNCOND_INDIRECT_BRANCH
            and LINK_REGISTER in record.src_regs
            and not record.dst_regs
        ):
            assert stack, "return without a matching call"
            assert record.branch_target == stack.pop()


def test_register_values_consistent_for_base_updates(srv_trace):
    """Base-update loads write base ± immediate, as real hardware would."""
    reader = CvpTraceReader(srv_trace)
    checked = 0
    for record in reader.records_with_registers():
        if not record.is_load:
            continue
        info = infer_addressing(record, reader.registers)
        if info.is_base_update:
            assert abs(info.base_value - record.mem_address) <= 512
            checked += 1
    assert checked > 0


def test_affected_trace_contains_blr_x30(srv_trace):
    blrs = [
        r
        for r in srv_trace
        if r.is_branch
        and LINK_REGISTER in r.src_regs
        and LINK_REGISTER in r.dst_regs
    ]
    assert blrs, "srv_3 must exercise the call-stack bug"


def test_trace_contains_all_improvement_material(small_trace):
    """One trace exercises every converter code path."""
    from repro.cvp.analysis import characterize

    ch = characterize(small_trace)
    assert ch.zero_dst_alu_fp > 0  # flag-reg
    assert ch.zero_dst_memory > 0  # mem-regs (forged X0)
    assert ch.base_update_loads > 0  # base-update
    assert ch.returns > 0  # call-stack
    assert ch.cond_branches_with_sources > 0  # branch-regs


def test_conditional_directions_vary(small_trace):
    outcomes = {
        r.branch_taken
        for r in small_trace
        if r.inst_class is InstClass.COND_BRANCH
    }
    assert outcomes == {True, False}


def test_generator_accepts_profile_object():
    from repro.synth.profiles import profile_for_trace

    gen = TraceGenerator(profile_for_trace("crypto_3"))
    assert len(gen.generate(100)) == 100


# ------------------------------------------------------------------- suites


def test_public_suite_has_135_names():
    names = cvp1_public_trace_names()
    assert len(names) == 135
    assert "srv_3" in names and "srv_62" in names
    assert "compute_int_46" in names and "compute_int_23" in names


def test_ipc1_suite_has_50_names():
    assert len(ipc1_trace_names()) == 50
    assert len(IPC1_TO_CVP1) == 50


def test_ipc1_mapping_matches_table2_rows():
    assert IPC1_TO_CVP1["server_001"] == "secret_srv160"
    assert IPC1_TO_CVP1["client_001"] == "secret_int_294"
    assert IPC1_TO_CVP1["spec_x264_001"] == "secret_int_919"


def test_suite_iteration_with_stride_and_limit():
    items = list(cvp1_public_suite(instructions=200, limit=3, stride=11))
    assert len(items) == 3
    for name, records in items:
        assert len(records) == 200


def test_ipc1_suite_generates_from_cvp1_identity():
    (name, records), = list(ipc1_suite(instructions=300, limit=1))
    assert name == "client_001"
    assert records == make_trace("secret_int_294", 300)
