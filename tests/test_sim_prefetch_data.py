"""Data-prefetcher tests (ip-stride and next-line)."""

from repro.sim.cache.hierarchy import CacheHierarchy
from repro.sim.config import SimConfig
from repro.sim.prefetch import make_data_prefetcher
from repro.sim.prefetch.ip_stride import IpStridePrefetcher
from repro.sim.prefetch.next_line import NextLinePrefetcher
from repro.sim.stats import SimStats

import pytest


def bare_hierarchy():
    stats = SimStats()
    h = CacheHierarchy(SimConfig.main(), stats)
    h.l1d_prefetcher = None
    h.l2_prefetcher = None
    return h, stats


def test_registry():
    assert isinstance(make_data_prefetcher("ip_stride", "l1d"), IpStridePrefetcher)
    assert isinstance(make_data_prefetcher("next_line", "l2"), NextLinePrefetcher)
    assert make_data_prefetcher("", "l1d") is None
    with pytest.raises(ValueError):
        make_data_prefetcher("stream", "l2")


def test_ip_stride_needs_confidence():
    h, stats = bare_hierarchy()
    pf = IpStridePrefetcher()
    pf.on_access(0x10, 0x1000, True, h, 0)
    pf.on_access(0x10, 0x1040, True, h, 1)  # first stride observation
    assert stats.prefetches_issued == {}
    pf.on_access(0x10, 0x1080, True, h, 2)
    pf.on_access(0x10, 0x10C0, True, h, 3)  # confidence reached
    assert stats.prefetches_issued.get("L1D", 0) > 0


def test_ip_stride_covers_stream():
    """After training, a strided stream stops missing."""
    h, stats = bare_hierarchy()
    pf = IpStridePrefetcher(degree=4)
    addr = 0x100000
    misses_late = 0
    for i in range(64):
        now = i * 300  # generous spacing: prefetches have time to land
        result = h.access_data(0x10, addr, now)
        pf.on_access(0x10, addr, result.l1_hit, h, now)
        if i > 16 and result.source != "L1":
            misses_late += 1
        addr += 64
    assert misses_late == 0


def test_ip_stride_sub_line_strides_prefetch_whole_lines():
    h, stats = bare_hierarchy()
    pf = IpStridePrefetcher(degree=2)
    for i in range(8):
        pf.on_access(0x10, 0x1000 + i * 8, True, h, i)
    # With an 8-byte stride, prefetches must still move line by line.
    assert h.l2.present(0x1040)


def test_ip_stride_resets_on_stride_change():
    h, stats = bare_hierarchy()
    pf = IpStridePrefetcher()
    for i in range(4):
        pf.on_access(0x10, 0x1000 + i * 64, True, h, i)
    issued_before = dict(stats.prefetches_issued)
    pf.on_access(0x10, 0x9000, True, h, 10)  # stride broken
    pf.on_access(0x10, 0x9100, True, h, 11)  # new stride, conf 0
    assert stats.prefetches_issued == issued_before


def test_ip_stride_table_eviction():
    pf = IpStridePrefetcher(table_size=2)
    h, _ = bare_hierarchy()
    for ip in (0x10, 0x20, 0x30):
        pf.on_access(ip, 0x1000, True, h, 0)
    assert len(pf._table) == 2


def test_ip_stride_negative_stride():
    h, stats = bare_hierarchy()
    pf = IpStridePrefetcher(degree=1)
    for i in range(5):
        pf.on_access(0x10, 0x10000 - i * 64, True, h, i)
    assert h.l2.present(0x10000 - 5 * 64)


def test_next_line_prefetches_following_lines():
    h, stats = bare_hierarchy()
    pf = NextLinePrefetcher(degree=2)
    pf.on_access(0x10, 0x1000, False, h, 0)
    assert h.l2.present(0x1040)
    assert h.l2.present(0x1080)
    assert not h.l2.present(0x10C0)


def test_next_line_fill_l1_option():
    h, stats = bare_hierarchy()
    pf = NextLinePrefetcher(degree=1, fill_l1=True)
    pf.on_access(0x10, 0x1000, False, h, 0)
    assert h.l1d.present(0x1040)
