"""Per-rule unit tests for repro-check: miniature trees per violation."""

from pathlib import Path

from repro.checks.engine import CheckRunner
from repro.checks.project import CheckProject
from repro.checks.rules import resolve_check_rules

FIXTURES = Path(__file__).parent / "fixtures" / "checks"


def findings(sources, select=None):
    """Run the (selected) rule set over in-memory ``{path: source}``."""
    runner = CheckRunner(
        rules=resolve_check_rules(select=select) if select else None
    )
    project = CheckProject.from_sources(sources)
    return runner.check_project(project).findings


def fired(sources, select=None):
    return {f.rule_id for f in findings(sources, select=select)}


# --- RC101: process-global random ---------------------------------------


def test_rc101_global_random_in_scope():
    src = "import random\n\ndef f():\n    return random.random()\n"
    assert fired({"sim/a.py": src}) == {"RC101"}


def test_rc101_from_import():
    src = "from random import choice\n"
    assert fired({"core/a.py": src}) == {"RC101"}


def test_rc101_seeded_instance_allowed():
    src = (
        "import random\n\n"
        "def f(seed):\n    return random.Random(seed).random()\n"
    )
    assert fired({"sim/a.py": src}) == set()


def test_rc101_out_of_scope_not_flagged():
    src = "import random\n\ndef f():\n    return random.random()\n"
    assert fired({"bench/a.py": src}) == set()


# --- RC102: wall-clock reads --------------------------------------------


def test_rc102_time_time():
    src = "import time\n\ndef f():\n    return time.time()\n"
    assert fired({"cvp/a.py": src}) == {"RC102"}


def test_rc102_datetime_now():
    src = "import datetime\n\ndef f():\n    return datetime.datetime.now()\n"
    assert fired({"sim/a.py": src}) == {"RC102"}


def test_rc102_perf_counter_allowed():
    src = (
        "from time import perf_counter\n\n"
        "def f():\n    return perf_counter()\n"
    )
    assert fired({"sim/a.py": src}) == set()


# --- RC103: id()-keyed maps ---------------------------------------------


def test_rc103_id_subscript_and_membership():
    src = (
        "def f(memo, obj):\n"
        "    memo[id(obj)] = 1\n"
        "    return id(obj) in memo\n"
    )
    found = findings({"sim/a.py": src})
    assert [f.rule_id for f in found] == ["RC103", "RC103"]


def test_rc103_plain_id_allowed():
    src = "def f(obj):\n    return id(obj)\n"
    assert fired({"sim/a.py": src}) == set()


# --- RC104: builtin hash() ----------------------------------------------


def test_rc104_builtin_hash():
    src = "def f(key):\n    return hash(key) % 64\n"
    assert fired({"sim/a.py": src}) == {"RC104"}


def test_rc104_hashlib_allowed():
    src = (
        "import hashlib\n\n"
        "def f(key):\n    return hashlib.sha256(key).hexdigest()\n"
    )
    assert fired({"sim/a.py": src}) == set()


# --- RC105: set iteration -----------------------------------------------


def test_rc105_for_over_set_display():
    src = "def f():\n    for x in {1, 2}:\n        print(x)\n"
    assert fired({"sim/a.py": src}) == {"RC105"}


def test_rc105_sum_over_set_call():
    src = "def f(xs):\n    return sum(set(xs))\n"
    assert fired({"sim/a.py": src}) == {"RC105"}


def test_rc105_sorted_set_allowed():
    src = "def f(xs):\n    return sorted(set(xs))\n"
    assert fired({"sim/a.py": src}) == set()


# --- RC106: unsorted filesystem enumeration -----------------------------


def test_rc106_unsorted_listdir():
    src = "import os\n\ndef f(d):\n    return list(os.listdir(d))\n"
    assert fired({"core/a.py": src}) == {"RC106"}


def test_rc106_sorted_glob_allowed():
    src = "def f(root):\n    return sorted(root.glob('*.py'))\n"
    assert fired({"core/a.py": src}) == set()


# --- RC201: run-key derivation coverage ---------------------------------

_CONFIG = (
    "from dataclasses import dataclass\n\n"
    "@dataclass(frozen=True)\n"
    "class SimConfig:\n"
    "    name: str = 'base'\n"
    "    width: int = 4\n"
)


def test_rc201_asdict_is_full_coverage():
    fp = (
        "import dataclasses\n\n"
        "def config_fingerprint(config):\n"
        "    return dataclasses.asdict(config)\n\n"
        "def run_key(name, config):\n"
        "    return (name, config_fingerprint(config))\n"
    )
    assert fired({"config.py": _CONFIG, "cache.py": fp}, ["RC201"]) == set()


def test_rc201_explicit_enumeration_missing_field():
    fp = (
        "def config_fingerprint(config):\n"
        "    return {'name': config.name}\n"
    )
    found = findings({"config.py": _CONFIG, "cache.py": fp}, ["RC201"])
    assert {f.rule_id for f in found} == {"RC201"}
    assert any("width" in f.message for f in found)


def test_rc201_run_key_bypassing_fingerprint():
    fp = (
        "def config_fingerprint(config):\n"
        "    return {'name': config.name, 'width': config.width}\n\n"
        "def run_key(name, config):\n"
        "    return (name, config.name)\n"
    )
    found = findings({"config.py": _CONFIG, "cache.py": fp}, ["RC201"])
    assert any("run_key" in f.message for f in found)


# --- RC202: pinned manifest ---------------------------------------------


def test_rc202_matching_manifest_clean():
    keys = "SIM_CONFIG_KEY_FIELDS = ('name', 'width')\n"
    assert fired({"config.py": _CONFIG, "keys.py": keys}, ["RC202"]) == set()


def test_rc202_new_field_not_in_manifest():
    keys = "SIM_CONFIG_KEY_FIELDS = ('name',)\n"
    found = findings({"config.py": _CONFIG, "keys.py": keys}, ["RC202"])
    assert any("width" in f.message for f in found)


def test_rc202_stale_manifest_entry():
    keys = "SIM_CONFIG_KEY_FIELDS = ('name', 'width', 'gone')\n"
    found = findings({"config.py": _CONFIG, "keys.py": keys}, ["RC202"])
    assert any("gone" in f.message for f in found)


def test_rc202_missing_manifest_is_an_error():
    found = findings({"config.py": _CONFIG}, ["RC202"])
    assert {f.rule_id for f in found} == {"RC202"}


# --- RC203: memo-key aliasing -------------------------------------------


def test_rc203_full_config_key_clean():
    src = (
        "class ExperimentRunner:\n"
        "    def __init__(self):\n"
        "        self._runs = {}\n\n"
        "    def run(self, name, config):\n"
        "        key = (name, config)\n"
        "        self._runs[key] = name\n"
        "        return self._runs[key]\n"
    )
    assert fired({"runner.py": src}, ["RC203"]) == set()


def test_rc203_projected_key_flagged():
    src = (
        "class ExperimentRunner:\n"
        "    def __init__(self):\n"
        "        self._runs = {}\n\n"
        "    def run(self, name, config):\n"
        "        self._runs[(name, config.width)] = name\n"
    )
    found = findings({"runner.py": src}, ["RC203"])
    assert len(found) == 2  # projection + missing full config
    assert all(f.rule_id == "RC203" for f in found)


# --- RC204: schema-stamped caches ---------------------------------------


def test_rc204_schema_stamped_cache_clean():
    src = (
        "import json\n\n"
        "class ResultCache:\n"
        "    def load(self, key):\n"
        "        payload = json.loads(self._read(key))\n"
        "        if payload.get('schema') != 1:\n"
        "            return None\n"
        "        return payload\n\n"
        "    def store(self, key, value):\n"
        "        self._write(key, json.dumps({'schema': 1, 'v': value}))\n"
    )
    assert fired({"cache.py": src}, ["RC204"]) == set()


def test_rc204_in_memory_cache_skipped():
    src = (
        "class DecodeCache:\n"
        "    def load(self, key):\n"
        "        return self._memo.get(key)\n\n"
        "    def store(self, key, value):\n"
        "        self._memo[key] = value\n"
    )
    assert fired({"decoded.py": src}, ["RC204"]) == set()


def test_rc204_unstamped_persistent_cache_flagged():
    src = (
        "import json\n\n"
        "class ResultCache:\n"
        "    def load(self, key):\n"
        "        return json.loads(self._read(key))\n\n"
        "    def store(self, key, value):\n"
        "        self._write(key, json.dumps(value))\n"
    )
    found = findings({"cache.py": src}, ["RC204"])
    assert len(found) == 2  # load and store each flagged


# --- RC301/RC303: pool submissions --------------------------------------


def test_rc301_module_level_function_clean():
    src = (
        "import concurrent.futures\n\n"
        "def work(task):\n    return task\n\n"
        "def fan(tasks):\n"
        "    with concurrent.futures.ProcessPoolExecutor() as pool:\n"
        "        return [pool.submit(work, t) for t in tasks]\n"
    )
    assert fired({"parallel.py": src}, ["RC301", "RC303"]) == set()


def test_rc301_lambda_and_nested_flagged():
    src = (
        "def fan(pool, tasks):\n"
        "    def local(t):\n        return t\n"
        "    a = pool.submit(local, tasks[0])\n"
        "    b = pool.submit(lambda t: t, tasks[0])\n"
        "    return a, b\n"
    )
    found = findings({"parallel.py": src}, ["RC301"])
    assert len(found) == 2


def test_rc303_unpicklable_arguments():
    src = (
        "def fan(pool, tasks, path):\n"
        "    handle = open(path)\n"
        "    a = pool.submit(print, handle)\n"
        "    b = pool.submit(sum, (t for t in tasks))\n"
        "    return a, b\n"
    )
    found = findings({"parallel.py": src}, ["RC303"])
    assert len(found) == 2


# --- RC302: worker-module globals ---------------------------------------


def test_rc302_mutable_global_in_pool_module():
    src = (
        "import concurrent.futures\n\n"
        "_STATE = {}\n\n"
        "def fan(tasks):\n"
        "    with concurrent.futures.ProcessPoolExecutor() as pool:\n"
        "        return [pool.submit(len, t) for t in tasks]\n"
    )
    assert fired({"parallel.py": src}, ["RC302"]) == {"RC302"}


def test_rc302_non_pool_module_not_flagged():
    src = "_STATE = {}\n"
    assert fired({"registry.py": src}, ["RC302"]) == set()


# --- RC4xx: engine parity (on-disk fixture + clean variant) --------------

_SIM_CONFIG_OK = (
    "from dataclasses import dataclass\n\n"
    "@dataclass(frozen=True)\n"
    "class SimConfig:\n"
    "    width: int = 4\n"
    "    depth: int = 2\n\n"
    "SIM_CONFIG_KEY_FIELDS = ('width', 'depth')\n"
)

_STATS_OK = (
    "class SimStats:\n"
    "    enabled: bool = True\n"
    "    instructions: int = 0\n"
    "    cycles: int = 0\n\n"
    "    def count_instruction(self):\n"
    "        self.instructions += 1\n\n"
    "    def to_dict(self):\n"
    "        return {'instructions': self.instructions,\n"
    "                'cycles': self.cycles}\n"
)

_ENGINE_OK = (
    "from stats import SimStats\n\n"
    "class Engine:\n"
    "    def run(self, n):\n"
    "        config = self.config\n"
    "        for _ in range(n * config.width):\n"
    "            self.stats.count_instruction()\n"
    "        self.stats.cycles = n\n"
)

_VECTOR_OK = (
    "from engine import Engine\n\n"
    "class VectorEngine(Engine):\n"
    "    def run(self, n):\n"
    "        config = self.config\n"
    "        self.stats.instructions += n * config.width\n"
    "        self.stats.cycles = n\n"
)


def test_rc4xx_parity_clean():
    sources = {
        "simconfig.py": _SIM_CONFIG_OK,
        "stats.py": _STATS_OK,
        "engine.py": _ENGINE_OK,
        "vector_engine.py": _VECTOR_OK,
    }
    assert fired(sources, ["RC4"]) == set()


def test_rc401_vector_dropping_counter():
    vector = _VECTOR_OK.replace(
        "        self.stats.instructions += n * config.width\n", ""
    )
    sources = {
        "simconfig.py": _SIM_CONFIG_OK,
        "stats.py": _STATS_OK,
        "engine.py": _ENGINE_OK,
        "vector_engine.py": vector,
    }
    found = findings(sources, ["RC401"])
    assert [f.rule_id for f in found] == ["RC401"]
    assert "instructions" in found[0].message


def test_rc402_vector_ignoring_knob():
    vector = _VECTOR_OK.replace("n * config.width", "n")
    sources = {
        "simconfig.py": _SIM_CONFIG_OK,
        "stats.py": _STATS_OK,
        "engine.py": _ENGINE_OK,
        "vector_engine.py": vector,
    }
    found = findings(sources, ["RC402"])
    assert [f.rule_id for f in found] == ["RC402"]
    assert "width" in found[0].message


def test_rc403_to_dict_missing_counter():
    stats = _STATS_OK.replace(",\n                'cycles': self.cycles", "")
    found = findings({"stats.py": stats}, ["RC403"])
    assert [f.rule_id for f in found] == ["RC403"]
    assert "cycles" in found[0].message


_WALK_OK = (
    "class FlatHierarchy:\n"
    "    def prefetch_data(self, addr, fill_l1):\n"
    "        self.pf_l2 += 1\n"
    "        if fill_l1:\n"
    "            self.pf_l1d += 1\n\n"
    "    def prefetch_data_run(self, requests, now):\n"
    "        for addr, fill_l1 in requests:\n"
    "            self.pf_l2 += 1\n"
    "            if fill_l1:\n"
    "                self.pf_l1d += 1\n"
)


def test_rc404_matching_twin_clean():
    assert fired({"sim/walk.py": _WALK_OK}, ["RC404"]) == set()


def test_rc404_twin_dropping_counter():
    twin = _WALK_OK.replace(
        "            if fill_l1:\n"
        "                self.pf_l1d += 1\n",
        "",
    )
    found = findings({"sim/walk.py": twin}, ["RC404"])
    assert [f.rule_id for f in found] == ["RC404"]
    assert "pf_l1d" in found[0].message
    assert "prefetch_data_run" in found[0].message


def test_rc404_delegating_twin_clean():
    """A twin that calls its scalar counterpart inherits its updates."""
    src = (
        "class FlatHierarchy:\n"
        "    def prefetch_data(self, addr, fill_l1):\n"
        "        self.pf_l2 += 1\n"
        "        if fill_l1:\n"
        "            self.pf_l1d += 1\n\n"
        "    def prefetch_data_run(self, requests, now):\n"
        "        for addr, fill_l1 in requests:\n"
        "            self.prefetch_data(addr, fill_l1)\n"
    )
    assert fired({"sim/walk.py": src}, ["RC404"]) == set()


def test_rc404_multi_counterpart_stem():
    """predict_update_batch resolves to predict + update; the twin must
    cover the union of both counterparts' counters."""
    src = (
        "class Predictor:\n"
        "    def predict(self, ip):\n"
        "        self.predictions += 1\n\n"
        "    def update(self, ip, taken):\n"
        "        self.updates += 1\n\n"
        "    def predict_update_batch(self, ips, takens):\n"
        "        self.predictions += len(ips)\n"
    )
    found = findings({"sim/pred.py": src}, ["RC404"])
    assert [f.rule_id for f in found] == ["RC404"]
    assert "updates" in found[0].message
    fixed = src + "        self.updates += len(ips)\n"
    assert fired({"sim/pred.py": fixed}, ["RC404"]) == set()


def test_rc404_recorder_call_parity():
    """A recorder call made by the scalar counterpart counts as a
    counter the twin must also make."""
    src = (
        "class Walker:\n"
        "    def lookup(self, ip):\n"
        "        self.hits += 1\n"
        "        self.stats.count_instruction()\n\n"
        "    def lookup_batch(self, ips):\n"
        "        self.hits += len(ips)\n"
    )
    found = findings(
        {"stats.py": _STATS_OK, "sim/walker.py": src}, ["RC404"]
    )
    assert [f.rule_id for f in found] == ["RC404"]
    assert "count_instruction" in found[0].message


def test_rc404_unresolvable_stem_skipped():
    """A *_run method whose stem is not built from sibling names is not
    a batched twin."""
    src = (
        "class Job:\n"
        "    def execute(self):\n"
        "        self.launches += 1\n\n"
        "    def dry_run(self):\n"
        "        return None\n"
    )
    assert fired({"sim/job.py": src}, ["RC404"]) == set()


def test_rc4xx_inherited_init_reads_are_shared():
    """Config reads in non-overridden methods belong to both engines."""
    engine = (
        "from stats import SimStats\n\n"
        "class Engine:\n"
        "    def __init__(self, config):\n"
        "        self.depth = config.depth\n\n"
        "    def run(self, n):\n"
        "        config = self.config\n"
        "        self.stats.instructions += n * config.width\n"
        "        self.stats.cycles = n\n"
    )
    sources = {
        "simconfig.py": _SIM_CONFIG_OK,
        "stats.py": _STATS_OK,
        "engine.py": engine,
        "vector_engine.py": _VECTOR_OK,
    }
    assert fired(sources, ["RC402"]) == set()


# --- RC501/RC502: failure handling in fleet code ------------------------


def test_rc501_silent_except_in_scope():
    src = (
        "def load(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except OSError:\n"
        "        return None\n"
    )
    assert fired({"experiments/a.py": src}, ["RC501"]) == {"RC501"}
    assert fired({"faults/a.py": src}, ["RC501"]) == {"RC501"}


def test_rc501_out_of_scope_not_flagged():
    src = (
        "def load(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except OSError:\n"
        "        return None\n"
    )
    assert fired({"bench/a.py": src}, ["RC501"]) == set()


def test_rc501_reraise_clean():
    src = (
        "def load(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except OSError as exc:\n"
        "        raise RuntimeError(str(exc)) from exc\n"
    )
    assert fired({"experiments/a.py": src}, ["RC501"]) == set()


def test_rc501_obs_event_clean():
    src = (
        "from repro import obs\n\n"
        "def load(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except OSError:\n"
        "        obs.emit_event('cache.corrupt', path=str(path))\n"
        "        return None\n"
    )
    assert fired({"experiments/a.py": src}, ["RC501"]) == set()


def test_rc501_counter_bump_clean():
    src = (
        "def load(cache, key):\n"
        "    try:\n"
        "        return cache.read(key)\n"
        "    except OSError:\n"
        "        cache.counters.miss()\n"
        "        return None\n"
    )
    assert fired({"experiments/a.py": src}, ["RC501"]) == set()


def test_rc501_stderr_report_clean():
    src = (
        "import sys\n\n"
        "def load(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except OSError as exc:\n"
        "        print(f'skipping {path}: {exc}', file=sys.stderr)\n"
        "        return None\n"
    )
    assert fired({"experiments/a.py": src}, ["RC501"]) == set()


def test_rc501_stdout_print_still_flagged():
    src = (
        "def load(path):\n"
        "    try:\n"
        "        return open(path).read()\n"
        "    except OSError:\n"
        "        print('oops')\n"
        "        return None\n"
    )
    assert fired({"experiments/a.py": src}, ["RC501"]) == {"RC501"}


def test_rc502_bare_except():
    src = (
        "def guard(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except:\n"
        "        raise\n"
    )
    assert fired({"faults/a.py": src}, ["RC502"]) == {"RC502"}


def test_rc502_typed_except_clean():
    src = (
        "def guard(fn):\n"
        "    try:\n"
        "        return fn()\n"
        "    except Exception:\n"
        "        raise\n"
    )
    assert fired({"faults/a.py": src}, ["RC502"]) == set()


# --- the on-disk negative-control fixtures ------------------------------


def check_fixture(name):
    runner = CheckRunner()
    report = runner.check_paths([FIXTURES / name])
    return {f.rule_id for f in report.findings}


def test_fixture_rc1xx_fires_every_determinism_rule():
    assert check_fixture("rc1xx") == {
        "RC101", "RC102", "RC103", "RC104", "RC105", "RC106",
    }


def test_fixture_rc2xx_fires_every_cachekey_rule():
    assert check_fixture("rc2xx") == {"RC201", "RC202", "RC203", "RC204"}


def test_fixture_rc3xx_fires_every_worker_rule():
    assert check_fixture("rc3xx") == {"RC301", "RC302", "RC303"}


def test_fixture_rc4xx_fires_every_parity_rule():
    assert check_fixture("rc4xx") == {"RC401", "RC402", "RC403", "RC404"}


def test_fixture_rc5xx_fires_every_robustness_rule():
    assert check_fixture("rc5xx") == {"RC501", "RC502"}
