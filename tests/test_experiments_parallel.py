"""Differential tests: serial run() vs parallel run_many() vs warm cache.

The parallel engine is only trustworthy if it is *invisible* in the
results: every sweep must produce bit-identical ``SimStats`` and
``ConversionStats`` whether it runs serially, across a worker pool, or
replayed from the on-disk cache.  These tests pin that equivalence on a
sampled CVP1public + IPC1 sweep, and pin the failure mode of a raising
worker (a per-trace error carrying the worker traceback — never a hang).
"""

from __future__ import annotations

import os

import pytest

from repro.core.improvements import Improvement
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import RunTask, TaskFailure, run_tasks
from repro.experiments.runner import ExperimentRunner
from repro.sim.config import SimConfig

#: A category-diverse sample of both suites (CVP-1 public + IPC-1).
SAMPLE_NAMES = ["srv_0", "srv_3", "compute_int_1", "crypto_1", "client_001"]
INSTRUCTIONS = 1500


@pytest.fixture(scope="module")
def serial_results():
    runner = ExperimentRunner(instructions=INSTRUCTIONS)
    return [runner.run(name, Improvement.ALL) for name in SAMPLE_NAMES]


def _assert_identical(results, expected):
    assert [r.trace for r in results] == [e.trace for e in expected]
    # Dataclass equality compares every counter field, including the
    # BranchType-keyed dicts — bit-identical or bust.
    assert [r.stats for r in results] == [e.stats for e in expected]
    assert [r.conversion for r in results] == [e.conversion for e in expected]


@pytest.mark.parametrize("jobs", [1, 4])
def test_run_many_matches_serial(jobs, serial_results):
    runner = ExperimentRunner(instructions=INSTRUCTIONS)
    results = runner.run_many(SAMPLE_NAMES, Improvement.ALL, jobs=jobs)
    _assert_identical(results, serial_results)


@pytest.mark.parametrize("jobs", [1, 4])
def test_warm_cache_rerun_is_identical_and_simulation_free(
    jobs, serial_results, tmp_path
):
    cold = ExperimentRunner(
        instructions=INSTRUCTIONS, cache=ResultCache(tmp_path)
    )
    first = cold.run_many(SAMPLE_NAMES, Improvement.ALL, jobs=jobs)
    _assert_identical(first, serial_results)

    warm = ExperimentRunner(
        instructions=INSTRUCTIONS, cache=ResultCache(tmp_path)
    )
    second = warm.run_many(SAMPLE_NAMES, Improvement.ALL, jobs=jobs)
    _assert_identical(second, serial_results)
    assert warm.simulations == 0
    assert warm.cache.hits == len(SAMPLE_NAMES)
    assert warm.cache.misses == 0


def test_run_many_ipc1_config_matches_serial():
    """The warmup-bearing IPC-1 preset survives the pool unchanged too."""
    config = SimConfig.ipc1()
    serial = ExperimentRunner(instructions=INSTRUCTIONS)
    expected = [
        serial.run(n, Improvement.NONE, config) for n in SAMPLE_NAMES[:3]
    ]
    parallel = ExperimentRunner(instructions=INSTRUCTIONS)
    results = parallel.run_many(
        SAMPLE_NAMES[:3], Improvement.NONE, config, jobs=3
    )
    _assert_identical(results, expected)


def test_run_many_preserves_request_order():
    runner = ExperimentRunner(instructions=INSTRUCTIONS)
    reordered = list(reversed(SAMPLE_NAMES))
    results = runner.run_many(reordered, Improvement.NONE, jobs=4)
    assert [r.trace for r in results] == reordered


def test_run_batch_deduplicates_repeated_specs():
    runner = ExperimentRunner(instructions=INSTRUCTIONS)
    specs = [("srv_0", Improvement.NONE, None)] * 3
    results = runner.run_batch(specs, jobs=2)
    assert results[0] is results[1] is results[2]


def test_sweep_covers_cross_product():
    runner = ExperimentRunner(instructions=INSTRUCTIONS)
    names = SAMPLE_NAMES[:2]
    sets = [Improvement.NONE, Improvement.ALL]
    results = runner.sweep(names, sets, jobs=2)
    assert [(r.trace, r.improvements) for r in results] == [
        (n, s) for s in sets for n in names
    ]


# ----------------------------------------------------------------------
# worker failure semantics
# ----------------------------------------------------------------------

#: Marker directory for the fail-once task (set per-test via env so the
#: forked workers inherit it).
_FLAKY_ENV = "REPRO_TEST_FLAKY_DIR"


def _always_failing_task(task):
    raise RuntimeError(f"injected failure for {task.name}")


def _fail_first_attempt_task(task):
    import pathlib

    marker = pathlib.Path(os.environ[_FLAKY_ENV]) / f"{task.name}.attempted"
    if not marker.exists():
        marker.write_text("attempt 1")
        raise RuntimeError(f"transient failure for {task.name}")
    return f"recovered:{task.name}"


def _tasks(names):
    return [
        RunTask(
            name=name,
            improvements=Improvement.NONE,
            config=SimConfig.main(),
            instructions=100,
        )
        for name in names
    ]


@pytest.mark.parametrize("jobs", [1, 4])
def test_raising_worker_surfaces_per_trace_error(jobs):
    with pytest.raises(TaskFailure) as excinfo:
        run_tasks(_tasks(["srv_0", "srv_1"]), jobs=jobs, task_fn=_always_failing_task)
    failure = excinfo.value
    assert len(failure.failures) == 2
    assert {task.name for task, _ in failure.failures} == {"srv_0", "srv_1"}
    # The worker traceback travels with the error.
    assert "injected failure for srv_0" in str(failure)


@pytest.mark.parametrize("jobs", [1, 4])
def test_failing_worker_is_retried_once(jobs, tmp_path, monkeypatch):
    monkeypatch.setenv(_FLAKY_ENV, str(tmp_path))
    results = run_tasks(
        _tasks(["srv_0", "srv_1"]), jobs=jobs, task_fn=_fail_first_attempt_task
    )
    assert results == ["recovered:srv_0", "recovered:srv_1"]


def test_partial_failure_reports_only_failed_tasks():
    def fail_srv_1(task):
        if task.name == "srv_1":
            raise RuntimeError("boom")
        return task.name

    with pytest.raises(TaskFailure) as excinfo:
        run_tasks(_tasks(["srv_0", "srv_1", "srv_2"]), jobs=1, task_fn=fail_srv_1)
    assert [task.name for task, _ in excinfo.value.failures] == ["srv_1"]


# ----------------------------------------------------------------------
# memo-key regression (satellite: full config identity in the key)
# ----------------------------------------------------------------------


def test_memo_key_distinguishes_configs_sharing_name_and_prefetcher():
    """Two configs with equal (name, l1i_prefetcher) must not alias.

    The pre-fix memo keyed on exactly those two fields, so e.g. a
    finite-PRF variant of ``main`` silently returned the unlimited-PRF
    result.
    """
    runner = ExperimentRunner(instructions=INSTRUCTIONS)
    unlimited = SimConfig.main()
    finite = SimConfig.main(prf_size=32)
    assert (unlimited.name, unlimited.l1i_prefetcher) == (
        finite.name,
        finite.l1i_prefetcher,
    )
    a = runner.run("srv_0", Improvement.NONE, unlimited)
    b = runner.run("srv_0", Improvement.NONE, finite)
    assert a is not b
    assert runner.simulations == 2
    # A 32-entry PRF on a 256-entry ROB actually throttles the core.
    assert b.stats.ipc < a.stats.ipc
