"""CLI tests: repro-lint, repro-convert --lint, and failure exit codes."""

import json
from pathlib import Path

import pytest

from repro.analysis import cli as lint_cli
from repro.core import cli as convert_cli
from repro.core.improvements import Improvement
from repro.experiments import cli as experiment_cli
from repro.experiments.parallel import TaskFailure

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_FILES = sorted(str(p) for p in GOLDEN_DIR.glob("*.cvp.gz"))


def run_lint(argv, tmp_path):
    """Invoke repro-lint with an isolated cache directory."""
    return lint_cli.main(["--cache-dir", str(tmp_path / "cache"), *argv])


def test_lint_golden_all_improvements_is_clean(tmp_path, capsys):
    assert run_lint(GOLDEN_FILES, tmp_path) == 0
    out = capsys.readouterr().out
    assert "errors=0" in out


@pytest.mark.parametrize(
    "name,rule_id",
    [
        ("mem-regs", "TL101"),
        ("base-update", "TL102"),
        ("mem-footprint", "TL103"),
        ("call-stack", "TL104"),
        ("branch-regs", "TL105"),
        ("flag-regs", "TL106"),
    ],
)
def test_lint_no_improvement_fires_matching_rule(
    name, rule_id, tmp_path, capsys
):
    code = run_lint(["--no-improvement", name, *GOLDEN_FILES], tmp_path)
    assert code == 2
    assert rule_id in capsys.readouterr().out


def test_lint_json_format(tmp_path, capsys):
    code = run_lint(
        ["--format", "json", "--no-improvement", "flag-regs", *GOLDEN_FILES],
        tmp_path,
    )
    assert code == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["exit_code"] == 2
    assert payload["summary"]["errors"] > 0
    fired = {
        diag["rule_id"]
        for report in payload["reports"]
        for diag in report["diagnostics"]
    }
    assert "TL106" in fired


def test_lint_select_and_ignore(tmp_path, capsys):
    # Selecting only input rules hides the conversion errors entirely.
    code = run_lint(
        ["--select", "TL0", "--no-improvement", "flag-regs", *GOLDEN_FILES],
        tmp_path,
    )
    assert code == 0
    code = run_lint(
        ["--ignore", "TL106", "--no-improvement", "flag-regs", GOLDEN_FILES[0]],
        tmp_path,
    )
    capsys.readouterr()
    assert code == 0


def test_lint_unknown_rule_pattern_fails(tmp_path, capsys):
    code = run_lint(["--select", "TL9", *GOLDEN_FILES], tmp_path)
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_lint_unknown_improvement_fails(tmp_path, capsys):
    code = run_lint(["--no-improvement", "bogus", *GOLDEN_FILES], tmp_path)
    assert code == 2
    assert "unknown improvement" in capsys.readouterr().err


def test_lint_missing_file_fails(tmp_path, capsys):
    code = run_lint([str(tmp_path / "nope.cvp.gz")], tmp_path)
    assert code == 2


def test_lint_no_traces_fails(tmp_path, capsys):
    assert lint_cli.main([]) == 2


def test_lint_list_rules(capsys):
    assert lint_cli.main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "TL001" in out and "TL202" in out


def test_lint_cache_warm_run_is_served_from_cache(tmp_path, capsys):
    assert run_lint([GOLDEN_FILES[0]], tmp_path) == 0
    capsys.readouterr()
    assert run_lint([GOLDEN_FILES[0]], tmp_path) == 0
    out = capsys.readouterr().out
    assert "(cached)" in out
    assert "hits=1" in out


def test_lint_baseline_workflow(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    code = run_lint(
        [
            "--no-improvement", "call-stack",
            "--write-baseline", str(baseline),
            *GOLDEN_FILES,
        ],
        tmp_path,
    )
    assert code == 0
    assert baseline.exists()
    code = run_lint(
        [
            "--no-improvement", "call-stack",
            "--baseline", str(baseline),
            *GOLDEN_FILES,
        ],
        tmp_path,
    )
    assert code == 0
    assert "suppressed=" in capsys.readouterr().out


def test_parse_disabled_accepts_artifact_spelling():
    assert lint_cli.parse_disabled("imp_mem-regs") is Improvement.MEM_REGS
    with pytest.raises(ValueError):
        lint_cli.parse_disabled("imp_nope")


# --- repro-convert --lint ----------------------------------------------


def test_convert_lint_clean_with_all_improvements(tmp_path, capsys):
    out = tmp_path / "out.champsimtrace.gz"
    code = convert_cli.main(
        ["-t", GOLDEN_FILES[0], "-o", str(out), "-i", "All_imps", "--lint"]
    )
    assert code == 0
    assert out.exists()
    assert "errors=0" in capsys.readouterr().out


def test_convert_lint_fails_without_improvements(tmp_path, capsys):
    out = tmp_path / "out.champsimtrace.gz"
    code = convert_cli.main(
        ["-t", GOLDEN_FILES[0], "-o", str(out), "-i", "No_imp", "--lint"]
    )
    assert code == 2
    # The trace file is still written; only the lint gate failed.
    assert out.exists()


def test_convert_suite_lint(tmp_path, capsys):
    code = convert_cli.main(
        [
            "--suite", "IPC1", "--output-dir", str(tmp_path),
            "--limit", "2", "--instructions", "400",
            "-i", "All_imps", "--lint",
        ]
    )
    assert code == 0
    assert "errors=0" in capsys.readouterr().out


# --- batch failure exit codes ------------------------------------------


def _raise_task_failure(*args, **kwargs):
    raise TaskFailure([("task", "boom traceback")])


def test_convert_suite_task_failure_exits_nonzero(tmp_path, monkeypatch, capsys):
    monkeypatch.setattr(
        "repro.core.cli.convert_suite", _raise_task_failure
    )
    code = convert_cli.main(
        ["--suite", "IPC1", "--output-dir", str(tmp_path), "--limit", "2"]
    )
    assert code == 1
    assert "task(s) failed" in capsys.readouterr().err


def test_experiment_task_failure_exits_nonzero(monkeypatch, capsys):
    monkeypatch.setattr(
        experiment_cli, "run_experiment", _raise_task_failure
    )
    code = experiment_cli.main(["fig1", "--no-cache", "--limit", "1"])
    assert code == 1
    assert "task(s) failed" in capsys.readouterr().err
