"""CLI tests for ``repro-check``: exit codes, formats, baselines, cache."""

import json
from pathlib import Path

from repro.checks import cli as check_cli

REPO_ROOT = Path(__file__).parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "checks"


def run_check(argv, tmp_path):
    """Invoke repro-check with an isolated cache directory."""
    return check_cli.main(
        ["--cache-dir", str(tmp_path / "cache"), "--no-baseline", *argv]
    )


def test_list_rules(tmp_path, capsys):
    assert check_cli.main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RC101", "RC201", "RC301", "RC401"):
        assert rule_id in out


def test_no_paths_is_usage_error(capsys):
    assert check_cli.main([]) == 2


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert run_check([str(tmp_path / "nope")], tmp_path) == 2


def test_unknown_select_is_usage_error(tmp_path, capsys):
    assert run_check(["--select", "RC9", str(FIXTURES)], tmp_path) == 2


def test_clean_tree_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean"
    clean.mkdir()
    (clean / "ok.py").write_text("def f():\n    return 1\n")
    assert run_check([str(clean)], tmp_path) == 0
    assert "errors=0" in capsys.readouterr().out


def test_error_fixture_exits_two(tmp_path, capsys):
    code = run_check([str(FIXTURES / "rc1xx")], tmp_path)
    assert code == 2
    assert "RC101" in capsys.readouterr().out


def test_warning_only_run_exits_one(tmp_path, capsys):
    code = run_check(
        ["--select", "RC302", str(FIXTURES / "rc3xx")], tmp_path
    )
    assert code == 1


def test_json_format(tmp_path, capsys):
    code = run_check(
        ["--format", "json", str(FIXTURES / "rc4xx")], tmp_path
    )
    assert code == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["exit_code"] == 2
    fired = {
        finding["rule_id"]
        for report in payload["reports"]
        for finding in report["findings"]
    }
    assert fired == {"RC401", "RC402", "RC403", "RC404"}


def test_write_then_apply_baseline(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    assert (
        run_check(
            [
                "--write-baseline",
                str(baseline),
                str(FIXTURES / "rc3xx"),
            ],
            tmp_path,
        )
        == 0
    )
    code = check_cli.main(
        [
            "--cache-dir",
            str(tmp_path / "cache"),
            "--baseline",
            str(baseline),
            str(FIXTURES / "rc3xx"),
        ]
    )
    assert code == 0
    assert "suppressed=" in capsys.readouterr().out


def test_default_baseline_autoload(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    baseline = tmp_path / check_cli.DEFAULT_BASELINE
    assert (
        run_check(
            [
                "--write-baseline",
                str(baseline),
                str(FIXTURES / "rc1xx"),
            ],
            tmp_path,
        )
        == 0
    )
    # Without --no-baseline the CWD default applies and suppresses all.
    code = check_cli.main(
        ["--cache-dir", str(tmp_path / "cache"), str(FIXTURES / "rc1xx")]
    )
    assert code == 0


def test_cache_hit_on_second_run(tmp_path, capsys):
    target = str(FIXTURES / "rc2xx")
    assert run_check([target], tmp_path) == 2
    capsys.readouterr()
    assert run_check([target], tmp_path) == 2
    out = capsys.readouterr().out
    assert "(cached)" in out
    assert "hits=1" in out


def test_repo_gate_command_passes(tmp_path, capsys, monkeypatch):
    """The exact CI invocation: ``repro-check src/repro`` from the root."""
    monkeypatch.chdir(REPO_ROOT)
    code = check_cli.main(
        ["--cache-dir", str(tmp_path / "cache"), "src/repro"]
    )
    assert code == 0
    assert "errors=0" in capsys.readouterr().out
