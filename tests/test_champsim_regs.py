"""Register mapping tests."""

from repro.champsim.regs import (
    REG_FLAGS,
    REG_FORGED_X0,
    REG_INSTRUCTION_POINTER,
    REG_OTHER_INFO,
    REG_STACK_POINTER,
    champsim_reg,
    is_special_reg,
)


def test_special_register_values_match_champsim():
    assert REG_STACK_POINTER == 6
    assert REG_FLAGS == 25
    assert REG_INSTRUCTION_POINTER == 26


def test_mapping_is_injective_over_architectural_range():
    mapped = [champsim_reg(r) for r in range(64)]
    assert len(set(mapped)) == 64


def test_mapping_never_produces_special_or_zero():
    for reg in range(64):
        mapped = champsim_reg(reg)
        assert mapped != 0
        assert not is_special_reg(mapped)


def test_mapping_fits_in_trace_byte():
    assert all(0 < champsim_reg(r) < 256 for r in range(64))


def test_collisions_are_displaced():
    # X5 would map to 6 (the stack pointer): displaced upward.
    assert champsim_reg(5) == 6 + 64
    assert champsim_reg(24) == 25 + 64
    assert champsim_reg(25) == 26 + 64


def test_non_colliding_registers_map_plus_one():
    assert champsim_reg(0) == 1
    assert champsim_reg(30) == 31  # X30, the link register


def test_pseudo_registers():
    assert REG_OTHER_INFO == champsim_reg(56)
    assert REG_FORGED_X0 == champsim_reg(0)
