"""Unit/property tests for the content-addressed artifact store.

Parity with ``test_experiments_cache.py``: the same corruption
properties (any bit-flip or truncation reads as a miss + quarantine,
never a wrong payload) hold for the generic :class:`BlobStore` the
result/lint caches now delegate to — here exercised directly on the
``artifacts`` kind.
"""

import json

import pytest

from repro.obs.instruments import CacheCounters
from repro.service.store import (
    ARTIFACT_KIND,
    ARTIFACT_SCHEMA,
    ArtifactStore,
    BlobKind,
    BlobStore,
    artifact_key,
    describe_counters,
    payload_digest,
)

BODY = {"experiment": "fig1", "text": "Figure 1\n====\nrow 0.123\n"}


@pytest.fixture
def stored(tmp_path):
    store = BlobStore(tmp_path, ARTIFACT_KIND)
    key = artifact_key("fig1", {"stride": 3})
    store.store(key, BODY)
    return store, key


# ----------------------------------------------------------------------
# round trips and layout
# ----------------------------------------------------------------------


def test_store_load_round_trip(stored):
    store, key = stored
    assert store.load(key) == BODY
    assert store.counters.hits == 1
    assert store.counters.stores == 1


def test_layout_fans_out_by_key_prefix(stored):
    store, key = stored
    path = store.path(key)
    assert path == store.root / "artifacts" / key[:2] / f"{key}.json"
    assert path.exists()


def test_envelope_is_schema_stamped_and_digest_carrying(stored):
    store, key = stored
    payload = json.loads(store.path(key).read_text())
    assert payload["schema"] == ARTIFACT_SCHEMA
    assert payload["digest"] == payload_digest(BODY)
    assert payload["artifact"] == BODY


def test_absent_key_is_a_plain_miss(tmp_path):
    store = BlobStore(tmp_path, ARTIFACT_KIND)
    assert store.load("0" * 64) is None
    assert store.counters.misses == 1
    assert store.counters.quarantined == 0


def test_decode_hook_applies_on_hit(stored):
    store, key = stored
    assert store.load(key, decode=lambda body: body["text"]) == BODY["text"]


# ----------------------------------------------------------------------
# corruption properties (parity with the result-cache suite)
# ----------------------------------------------------------------------


def test_any_single_byte_flip_never_returns_wrong_value(stored, tmp_path):
    store, key = stored
    path = store.path(key)
    pristine = path.read_bytes()
    step = max(1, len(pristine) // 64)
    for offset in range(0, len(pristine), step):
        damaged = bytearray(pristine)
        damaged[offset] ^= 0x01
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(bytes(damaged))
        loaded = BlobStore(tmp_path, ARTIFACT_KIND).load(key)
        assert loaded is None or loaded == BODY, (
            f"byte flip at offset {offset} misdecoded"
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pristine)
    assert BlobStore(tmp_path, ARTIFACT_KIND).load(key) == BODY


def test_any_truncation_point_never_returns_wrong_value(stored, tmp_path):
    store, key = stored
    path = store.path(key)
    pristine = path.read_bytes()
    step = max(1, len(pristine) // 32)
    for cut in range(0, len(pristine), step):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(pristine[:cut])
        loaded = BlobStore(tmp_path, ARTIFACT_KIND).load(key)
        assert loaded is None, f"truncation at byte {cut} misdecoded"


def test_corruption_quarantines_and_frees_the_slot(stored, tmp_path):
    store, key = stored
    path = store.path(key)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    assert store.load(key) is None
    assert store.counters.quarantined == 1
    assert store.counters.misses == 1
    assert not path.exists()
    assert len(list((tmp_path / "quarantine").iterdir())) == 1
    store.store(key, BODY)
    assert store.load(key) == BODY


def test_stale_schema_is_a_plain_miss_not_quarantine(stored, tmp_path):
    store, key = stored
    payload = json.loads(store.path(key).read_text())
    payload["schema"] = ARTIFACT_SCHEMA - 1
    store.path(key).write_text(json.dumps(payload))
    assert store.load(key) is None
    assert store.counters.quarantined == 0
    assert not (tmp_path / "quarantine").exists()


def test_digest_mismatch_quarantines(stored):
    store, key = stored
    payload = json.loads(store.path(key).read_text())
    payload["artifact"]["text"] = "tampered"
    store.path(key).write_text(json.dumps(payload))
    assert store.load(key) is None
    assert store.counters.quarantined == 1


def test_rejecting_decode_quarantines(stored):
    store, key = stored

    def decode(body):
        raise ValueError("body rejected")

    assert store.load(key, decode=decode) is None
    assert store.counters.quarantined == 1


def test_unwritable_root_counts_store_errors(tmp_path):
    """A broken store dir degrades to store_errors, never an exception
    (a plain file where the directory should be blocks mkdir even as
    root, unlike permission bits)."""
    blocker = tmp_path / "file-not-dir"
    blocker.write_text("")
    store = BlobStore(blocker, ARTIFACT_KIND)
    store.store("a" * 64, BODY)
    assert store.counters.store_errors == 1
    assert store.counters.stores == 0
    assert store.load("a" * 64) is None
    assert "store_errors=1" in store.describe()


# ----------------------------------------------------------------------
# keys
# ----------------------------------------------------------------------


def test_artifact_key_is_deterministic_and_input_sensitive():
    base = artifact_key("fig1", {"stride": 3, "limit": None})
    assert base == artifact_key("fig1", {"limit": None, "stride": 3})
    assert base != artifact_key("fig2", {"stride": 3, "limit": None})
    assert base != artifact_key("fig1", {"stride": 4, "limit": None})
    assert len(base) == 64


# ----------------------------------------------------------------------
# describe_counters — the shared CLI-output contract
# ----------------------------------------------------------------------


def test_describe_counters_shapes(tmp_path):
    counters = CacheCounters("x")
    counters.hit()
    counters.miss()
    base = describe_counters(counters, tmp_path)
    assert base == f"hits=1 misses=1 stores=0 dir={tmp_path}"
    assert (
        describe_counters(counters, tmp_path, stores=False, quarantined=False)
        == f"hits=1 misses=1 dir={tmp_path}"
    )
    counters.store_error()
    counters.quarantine()
    assert describe_counters(counters, tmp_path, store_errors=True) == (
        f"hits=1 misses=1 stores=0 store_errors=1 quarantined=1 "
        f"dir={tmp_path}"
    )
    # store_errors/quarantined segments only appear when non-zero.
    fresh = CacheCounters("y")
    assert describe_counters(fresh, tmp_path, store_errors=True) == (
        f"hits=0 misses=0 stores=0 dir={tmp_path}"
    )


# ----------------------------------------------------------------------
# the unified facade
# ----------------------------------------------------------------------


def test_artifact_store_views_share_one_root(tmp_path):
    store = ArtifactStore(tmp_path)
    assert store.result_cache().root == tmp_path
    assert store.lint_cache().root == tmp_path
    assert store.artifacts().root == tmp_path
    assert store.artifacts() is store.artifacts()  # memoised


def test_artifact_store_default_root_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
    assert ArtifactStore().root == tmp_path / "env"


def test_custom_kind_body_field_round_trips(tmp_path):
    kind = BlobKind(name="runs", schema=7, body_field="result")
    store = BlobStore(tmp_path, kind)
    store.store("k" * 64, {"ipc": 1.5})
    payload = json.loads(store.path("k" * 64).read_text())
    assert payload["result"] == {"ipc": 1.5}
    assert store.load("k" * 64) == {"ipc": 1.5}
