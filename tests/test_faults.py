"""Unit tests for the fault-injection subsystem (plan, sites, retry).

The chaos tier (``tests/test_parallel_chaos.py``) only proves anything
if the injection layer itself is deterministic: the same plan over the
same workload must fire the same faults, every time, in every process.
These tests pin the spec grammar, the counter-based schedule, the
site-side helpers, and the retry policy's deterministic backoff.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.faults import (
    FaultPlan,
    FaultPlanError,
    FaultSpec,
    InjectedFault,
    RetryPolicy,
    exception_name,
)
from repro.faults.plan import KNOWN_SITES, SiteCounters


@pytest.fixture(autouse=True)
def clean_faults():
    """No plan before or after each test (install clears env + counters)."""
    faults.install(None)
    yield
    faults.install(None)


# ----------------------------------------------------------------------
# plan grammar
# ----------------------------------------------------------------------


def test_parse_round_trips_through_to_spec():
    text = "worker.crash:count=1;worker.hang:seconds=8:start=2;cache.corrupt"
    plan = FaultPlan.parse(text)
    assert FaultPlan.parse(plan.to_spec()) == plan
    hang = plan.spec_for("worker.hang")
    assert hang is not None
    assert (hang.seconds, hang.start, hang.every) == (8.0, 2, 1)


def test_parse_defaults():
    spec = FaultPlan.parse("worker.exc").specs[0]
    assert (spec.count, spec.start, spec.every) == (1, 0, 1)


def test_unknown_site_fails_loudly():
    with pytest.raises(FaultPlanError, match="unknown fault site"):
        FaultPlan.parse("worker.crsh")


def test_unknown_option_fails_loudly():
    with pytest.raises(FaultPlanError, match="unknown fault option"):
        FaultPlan.parse("worker.exc:chance=0.5")


def test_non_numeric_value_fails_loudly():
    with pytest.raises(FaultPlanError, match="non-numeric"):
        FaultPlan.parse("worker.exc:count=lots")


def test_malformed_option_fails_loudly():
    with pytest.raises(FaultPlanError, match="malformed"):
        FaultPlan.parse("worker.exc:count")


def test_duplicate_site_rejected():
    with pytest.raises(FaultPlanError, match="duplicate"):
        FaultPlan.parse("worker.exc;worker.exc:count=2")


def test_invalid_schedule_rejected():
    with pytest.raises(FaultPlanError):
        FaultSpec(site="worker.exc", every=0)
    with pytest.raises(FaultPlanError):
        FaultSpec(site="worker.exc", count=-1)


# ----------------------------------------------------------------------
# counter-based schedule (the determinism core)
# ----------------------------------------------------------------------


def _schedule(spec: FaultSpec, calls: int):
    counters = SiteCounters()
    return [counters.decide(spec) for _ in range(calls)]


def test_schedule_start_every_count():
    spec = FaultSpec(site="worker.exc", count=2, start=1, every=3)
    # Calls 0.. : skip start, then every 3rd eligible call, max 2 fires.
    assert _schedule(spec, 9) == [
        False, True, False, False, True, False, False, False, False,
    ]


def test_schedule_unlimited_count():
    spec = FaultSpec(site="worker.exc", count=0)
    assert _schedule(spec, 4) == [True, True, True, True]


def test_schedule_is_deterministic_across_resets():
    spec = FaultSpec(site="worker.exc", count=3, every=2)
    first = _schedule(spec, 10)
    assert _schedule(spec, 10) == first


def test_every_known_site_parses():
    for site in sorted(KNOWN_SITES):
        assert FaultPlan.parse(site).specs[0].site == site


# ----------------------------------------------------------------------
# per-process state and the fire() gate
# ----------------------------------------------------------------------


def test_no_plan_means_disabled():
    assert faults.enabled() is False
    assert faults.active_plan() is None
    assert faults.fire("worker.exc") is None


def test_install_activates_and_clears():
    faults.install(FaultPlan.parse("worker.exc:count=1"))
    assert faults.enabled() is True
    assert faults.fire("worker.exc") is not None
    assert faults.fire("worker.exc") is None  # count exhausted
    faults.install(None)
    assert faults.enabled() is False


def test_install_resets_counters():
    plan = FaultPlan.parse("worker.exc:count=1")
    faults.install(plan)
    assert faults.fire("worker.exc") is not None
    faults.install(plan)  # fresh schedule
    assert faults.fire("worker.exc") is not None


def test_env_plan_loaded_after_worker_reset(monkeypatch):
    monkeypatch.setenv(faults.FAULTS_ENV, "cache.corrupt:count=2")
    faults.reset_for_worker()
    assert faults.enabled() is True
    plan = faults.active_plan()
    assert plan is not None and plan.spec_for("cache.corrupt").count == 2


def test_installing_process_is_not_a_worker():
    faults.install(FaultPlan.parse("worker.crash"))
    assert faults.in_worker() is False


def test_crash_degrades_to_exception_outside_workers():
    faults.install(FaultPlan.parse("worker.crash:count=1"))
    with pytest.raises(InjectedFault, match="injected worker crash"):
        faults.worker_preamble()
    faults.worker_preamble()  # count exhausted; no-op now


def test_exc_site_raises_transient():
    faults.install(FaultPlan.parse("worker.exc:count=1"))
    with pytest.raises(InjectedFault, match="transient"):
        faults.worker_preamble()


# ----------------------------------------------------------------------
# site-side helpers
# ----------------------------------------------------------------------


def test_corrupt_file_flips_one_byte(tmp_path):
    path = tmp_path / "entry.json"
    original = b"0123456789abcdef"
    path.write_bytes(original)
    faults.corrupt_file(path)
    damaged = path.read_bytes()
    assert len(damaged) == len(original)
    assert sum(a != b for a, b in zip(damaged, original)) == 1


def test_corrupt_file_truncates(tmp_path):
    path = tmp_path / "entry.json"
    path.write_bytes(b"0123456789abcdef")
    faults.corrupt_file(path, truncate=True)
    assert path.read_bytes() == b"01234567"


def test_corrupt_file_missing_path_is_typed(tmp_path):
    with pytest.raises(FaultPlanError, match="could not damage"):
        faults.corrupt_file(tmp_path / "absent.json")


def test_truncate_read_fires_once(tmp_path):
    faults.install(FaultPlan.parse("io.cvp.truncate:count=1"))
    data = bytes(range(64))
    first = faults.truncate_read("io.cvp.truncate", data)
    assert first == data[:32]
    second = faults.truncate_read("io.cvp.truncate", data)
    assert second == data


def test_truncate_read_honours_keep_floor():
    faults.install(FaultPlan.parse("io.champsim.truncate:count=1"))
    data = b"abcd"
    assert faults.truncate_read("io.champsim.truncate", data, keep_floor=3) == b"abc"


def test_truncate_read_without_plan_is_identity():
    data = bytes(range(16))
    assert faults.truncate_read("io.cvp.truncate", data) is data


def test_store_fault_corrupts_written_entry(tmp_path):
    faults.install(FaultPlan.parse("cache.truncate:count=1"))
    path = tmp_path / "entry.json"
    path.write_bytes(b"0123456789abcdef")
    faults.store_fault(path)
    assert path.read_bytes() == b"01234567"


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------


def test_exception_name_from_traceback():
    tb = (
        "Traceback (most recent call last):\n"
        '  File "x.py", line 1, in f\n'
        "    raise ValueError('nope')\n"
        "ValueError: nope\n"
    )
    assert exception_name(tb) == "ValueError"


def test_exception_name_dotted_class():
    tb = "repro.faults.inject.InjectedFault: injected transient\n"
    assert exception_name(tb) == "repro.faults.inject.InjectedFault"


def test_exception_name_unrecognisable():
    assert exception_name("not a traceback at all!") == ""
    assert exception_name("") == ""


def test_fatal_classes_never_retry():
    policy = RetryPolicy(attempts=5)
    assert policy.is_retryable("KeyboardInterrupt") is False
    assert policy.is_retryable("SystemExit") is False
    assert policy.is_retryable("ValueError") is True


def test_retryable_whitelist_suffix_match():
    policy = RetryPolicy(retryable=("InjectedFault", "OSError"))
    assert policy.is_retryable("repro.faults.inject.InjectedFault") is True
    assert policy.is_retryable("OSError") is True
    assert policy.is_retryable("ValueError") is False
    assert policy.is_retryable("") is False


def test_classify_joins_name_and_verdict():
    policy = RetryPolicy()
    name, retryable = policy.classify("RuntimeError: boom\n")
    assert (name, retryable) == ("RuntimeError", True)


def test_default_policy_has_no_backoff_delay():
    policy = RetryPolicy.default()
    assert policy.attempts == 2
    assert policy.delay(1, "k") == 0.0


def test_backoff_grows_exponentially_and_caps():
    policy = RetryPolicy(
        attempts=6, backoff_base=1.0, backoff_multiplier=2.0, backoff_max=5.0
    )
    assert [policy.delay(a) for a in (1, 2, 3, 4, 5)] == [
        1.0, 2.0, 4.0, 5.0, 5.0,
    ]


def test_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(
        attempts=4, backoff_base=1.0, jitter=0.5, seed=7
    )
    first = policy.delay(2, "task-a")
    assert policy.delay(2, "task-a") == first  # same key: same delay
    assert policy.delay(2, "task-b") != first  # keys de-synchronise
    nominal = 2.0
    assert nominal * 0.5 <= first <= nominal * 1.5


def test_different_seeds_spread_differently():
    a = RetryPolicy(backoff_base=1.0, jitter=0.9, seed=1)
    b = RetryPolicy(backoff_base=1.0, jitter=0.9, seed=2)
    assert a.delay(1, "k") != b.delay(1, "k")


def test_policy_validation():
    with pytest.raises(ValueError, match="attempts"):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError, match="jitter"):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ValueError, match="delays"):
        RetryPolicy(backoff_base=-1.0)
