"""Converter tests for branch handling (paper Section 3.2)."""

from repro.champsim.branch_info import BranchRules, BranchType, deduce_branch_type
from repro.champsim.regs import (
    REG_FLAGS,
    REG_INSTRUCTION_POINTER as IP,
    REG_OTHER_INFO,
    REG_STACK_POINTER as SP,
    champsim_reg,
)
from repro.core.convert import Converter, convert_trace
from repro.core.improvements import Improvement
from repro.cvp.isa import InstClass, LINK_REGISTER

from tests.conftest import blr_x30, branch, ret


def one(records, improvements=Improvement.NONE):
    out = convert_trace(records, improvements)
    assert len(out) == 1
    return out[0]


def deduced(record, improvements=Improvement.NONE):
    converter = Converter(improvements)
    instrs = converter.convert_record(record)
    assert len(instrs) == 1
    return deduce_branch_type(instrs[0], converter.required_branch_rules)


# ------------------------------------------------------------------ original


def test_conditional_branch_signature():
    instr = one([branch()])
    assert instr.is_branch
    assert instr.src_regs == (IP, REG_FLAGS)
    assert instr.dst_regs == (IP,)
    assert deduced(branch()) is BranchType.CONDITIONAL


def test_direct_jump_signature():
    record = branch(cls=InstClass.UNCOND_DIRECT_BRANCH)
    instr = one([record])
    assert instr.src_regs == ()
    assert instr.dst_regs == (IP,)
    assert deduced(record) is BranchType.DIRECT_JUMP


def test_direct_call_signature():
    record = branch(
        cls=InstClass.UNCOND_DIRECT_BRANCH,
        dsts=(LINK_REGISTER,),
        values=(0x1004,),
    )
    instr = one([record])
    assert deduced(record) is BranchType.DIRECT_CALL
    # Known limitation: X30 cannot also be a destination (two slots).
    assert champsim_reg(LINK_REGISTER) not in instr.dst_regs


def test_indirect_jump_uses_x56_in_original():
    record = branch(cls=InstClass.UNCOND_INDIRECT_BRANCH, srcs=(9,))
    instr = one([record])
    assert instr.src_regs == (REG_OTHER_INFO,)
    assert deduced(record) is BranchType.INDIRECT


def test_return_signature():
    instr = one([ret()])
    assert instr.src_regs == (SP,)
    assert instr.dst_regs == (IP, SP)
    assert deduced(ret()) is BranchType.RETURN


def test_original_misclassifies_blr_x30_as_return():
    """The call-stack bug: reads+writes X30 → typed as a return."""
    converter = Converter(Improvement.NONE)
    instrs = converter.convert_record(blr_x30())
    assert (
        deduce_branch_type(instrs[0], converter.required_branch_rules)
        is BranchType.RETURN
    )
    assert converter.stats.misclassified_returns_emitted == 1


def test_indirect_call_signature():
    record = branch(
        cls=InstClass.UNCOND_INDIRECT_BRANCH,
        srcs=(9,),
        dsts=(LINK_REGISTER,),
        values=(0x1004,),
    )
    assert deduced(record) is BranchType.INDIRECT_CALL


def test_branch_taken_forced_for_unconditional():
    record = branch(cls=InstClass.UNCOND_DIRECT_BRANCH, taken=True)
    assert one([record]).branch_taken


# ------------------------------------------------------------- call-stack


def test_call_stack_fixes_blr_x30():
    converter = Converter(Improvement.CALL_STACK)
    instrs = converter.convert_record(blr_x30())
    assert (
        deduce_branch_type(instrs[0], converter.required_branch_rules)
        is BranchType.INDIRECT_CALL
    )
    assert converter.stats.misclassified_calls_fixed == 1


def test_call_stack_keeps_real_returns():
    assert deduced(ret(), Improvement.CALL_STACK) is BranchType.RETURN


def test_call_stack_keeps_indirect_jumps():
    record = branch(cls=InstClass.UNCOND_INDIRECT_BRANCH, srcs=(9,))
    assert deduced(record, Improvement.CALL_STACK) is BranchType.INDIRECT


# ------------------------------------------------------------ branch-regs


def test_branch_regs_keeps_conditional_sources():
    """cb(n)z: the real source replaces the flag register."""
    record = branch(srcs=(9,))
    instr = one([record], Improvement.BRANCH_REGS)
    assert champsim_reg(9) in instr.src_regs
    assert REG_FLAGS not in instr.src_regs
    assert deduced(record, Improvement.BRANCH_REGS) is BranchType.CONDITIONAL


def test_branch_regs_keeps_flags_when_no_sources():
    record = branch()
    instr = one([record], Improvement.BRANCH_REGS)
    assert instr.src_regs == (IP, REG_FLAGS)


def test_branch_regs_replaces_x56_on_indirects():
    record = branch(cls=InstClass.UNCOND_INDIRECT_BRANCH, srcs=(9,))
    instr = one([record], Improvement.BRANCH_REGS)
    assert REG_OTHER_INFO not in instr.src_regs
    assert champsim_reg(9) in instr.src_regs
    assert deduced(record, Improvement.BRANCH_REGS) is BranchType.INDIRECT


def test_branch_regs_requires_patched_rules():
    assert Converter(Improvement.BRANCH_REGS).required_branch_rules is (
        BranchRules.PATCHED
    )
    assert Converter(Improvement.NONE).required_branch_rules is (
        BranchRules.ORIGINAL
    )


def test_branch_regs_preserves_return_dependency():
    instr = one([ret()], Improvement.BRANCH_REGS)
    assert champsim_reg(LINK_REGISTER) in instr.src_regs
    assert deduced(ret(), Improvement.BRANCH_REGS) is BranchType.RETURN


def test_branch_regs_source_truncation_counted():
    record = branch(
        cls=InstClass.UNCOND_INDIRECT_BRANCH,
        srcs=(1, 2, 3, 4, 5),
        dsts=(LINK_REGISTER,),
        values=(0,),
    )
    converter = Converter(Improvement.BRANCH_REGS)
    instrs = converter.convert_record(record)
    assert len(instrs[0].src_regs) == 4
    assert converter.stats.src_regs_truncated > 0


def test_indirect_call_with_sources_still_deduced_correctly():
    record = branch(
        cls=InstClass.UNCOND_INDIRECT_BRANCH,
        srcs=(9,),
        dsts=(LINK_REGISTER,),
        values=(0,),
    )
    assert deduced(record, Improvement.BRANCH_REGS) is BranchType.INDIRECT_CALL
