"""ChampSim branch-type deduction tests — original and patched rules.

These encode the register signatures from the paper's Section 3.2: which
combination of IP/SP/FLAGS/other reads and writes maps to which of the
six branch types, and how the two paper patches change the outcome.
"""

import pytest

from repro.champsim.branch_info import BranchRules, BranchType, deduce_branch_type
from repro.champsim.regs import (
    REG_FLAGS,
    REG_INSTRUCTION_POINTER as IP,
    REG_STACK_POINTER as SP,
)
from repro.champsim.trace import ChampSimInstr

OTHER = 31  # any non-special register id


def br(src=(), dst=(), is_branch=True):
    return ChampSimInstr(
        ip=0x1000, is_branch=is_branch, branch_taken=True, src_regs=src, dst_regs=dst
    )


@pytest.mark.parametrize("rules", list(BranchRules))
def test_non_branch_flag_gates_everything(rules):
    instr = br(src=(IP,), dst=(IP,), is_branch=False)
    assert deduce_branch_type(instr, rules) is BranchType.NOT_BRANCH


@pytest.mark.parametrize("rules", list(BranchRules))
def test_direct_jump(rules):
    assert deduce_branch_type(br(dst=(IP,)), rules) is BranchType.DIRECT_JUMP


@pytest.mark.parametrize("rules", list(BranchRules))
def test_indirect_jump(rules):
    instr = br(src=(OTHER,), dst=(IP,))
    assert deduce_branch_type(instr, rules) is BranchType.INDIRECT


@pytest.mark.parametrize("rules", list(BranchRules))
def test_conditional_with_flags(rules):
    instr = br(src=(IP, REG_FLAGS), dst=(IP,))
    assert deduce_branch_type(instr, rules) is BranchType.CONDITIONAL


@pytest.mark.parametrize("rules", list(BranchRules))
def test_direct_call(rules):
    instr = br(src=(IP, SP), dst=(IP, SP))
    assert deduce_branch_type(instr, rules) is BranchType.DIRECT_CALL


@pytest.mark.parametrize("rules", list(BranchRules))
def test_indirect_call(rules):
    instr = br(src=(IP, SP, OTHER), dst=(IP, SP))
    assert deduce_branch_type(instr, rules) is BranchType.INDIRECT_CALL


@pytest.mark.parametrize("rules", list(BranchRules))
def test_return(rules):
    instr = br(src=(SP,), dst=(IP, SP))
    assert deduce_branch_type(instr, rules) is BranchType.RETURN


def test_return_with_extra_source_still_return():
    # branch-regs adds X30 to returns; the rule ignores other reads.
    instr = br(src=(SP, OTHER), dst=(IP, SP))
    assert deduce_branch_type(instr, BranchRules.PATCHED) is BranchType.RETURN
    assert deduce_branch_type(instr, BranchRules.ORIGINAL) is BranchType.RETURN


def test_paper_patch_1_conditional_reading_registers():
    """A conditional that reads a GPR instead of flags (branch-regs).

    Original rules misclassify it as an indirect jump (checked first);
    the patched rules classify it as conditional because (a) indirect now
    requires not reading IP and (b) conditional accepts flags *or* other.
    """
    instr = br(src=(IP, OTHER), dst=(IP,))
    assert deduce_branch_type(instr, BranchRules.ORIGINAL) is BranchType.INDIRECT
    assert deduce_branch_type(instr, BranchRules.PATCHED) is BranchType.CONDITIONAL


def test_paper_patch_order_indirect_before_conditional():
    # A true indirect (no IP read) stays indirect under both rule sets.
    instr = br(src=(OTHER,), dst=(IP,))
    assert deduce_branch_type(instr, BranchRules.PATCHED) is BranchType.INDIRECT


def test_conditional_reading_flags_and_other_original_rules():
    # Original: conditional requires flags and *nothing else* → falls
    # through every pattern → OTHER.
    instr = br(src=(IP, REG_FLAGS, OTHER), dst=(IP,))
    assert deduce_branch_type(instr, BranchRules.ORIGINAL) is BranchType.OTHER
    assert deduce_branch_type(instr, BranchRules.PATCHED) is BranchType.CONDITIONAL


def test_unmatched_signature_is_other():
    instr = br(src=(REG_FLAGS,), dst=(SP,))
    assert deduce_branch_type(instr, BranchRules.ORIGINAL) is BranchType.OTHER


def test_direct_jump_requires_no_flag_read():
    instr = br(src=(REG_FLAGS,), dst=(IP,))
    assert deduce_branch_type(instr, BranchRules.ORIGINAL) is not BranchType.DIRECT_JUMP
