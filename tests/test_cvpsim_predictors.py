"""Value-predictor unit tests."""

import pytest

from repro.cvpsim.predictors import (
    CompositePredictor,
    ContextPredictor,
    LastValuePredictor,
    NoPredictor,
    StridePredictor,
    make_value_predictor,
)


def confident(predictor, pc):
    prediction = predictor.predict(pc)
    return (
        prediction is not None
        and prediction.confidence >= predictor.CONFIDENCE_THRESHOLD
    )


def test_registry():
    for name in ("none", "last-value", "stride", "context", "composite"):
        assert make_value_predictor(name) is not None
    with pytest.raises(ValueError):
        make_value_predictor("oracle")


def test_no_predictor_never_predicts():
    predictor = NoPredictor()
    predictor.train(0x100, 42)
    assert predictor.predict(0x100) is None


def test_last_value_learns_constant():
    predictor = LastValuePredictor()
    for _ in range(12):
        predictor.train(0x100, 7)
    assert confident(predictor, 0x100)
    assert predictor.predict(0x100).value == 7


def test_last_value_resets_on_change():
    predictor = LastValuePredictor()
    for _ in range(12):
        predictor.train(0x100, 7)
    predictor.train(0x100, 9)
    assert not confident(predictor, 0x100)
    assert predictor.predict(0x100).value == 9


def test_stride_learns_induction_variable():
    predictor = StridePredictor()
    for i in range(12):
        predictor.train(0x100, 1000 + 8 * i)
    assert confident(predictor, 0x100)
    assert predictor.predict(0x100).value == 1000 + 8 * 12


def test_stride_handles_wraparound():
    predictor = StridePredictor()
    base = (1 << 64) - 16
    for i in range(12):
        predictor.train(0x100, (base + 8 * i) & ((1 << 64) - 1))
    prediction = predictor.predict(0x100)
    assert prediction.value == (base + 8 * 12) & ((1 << 64) - 1)


def test_stride_zero_stride_is_last_value():
    predictor = StridePredictor()
    for _ in range(12):
        predictor.train(0x100, 5)
    assert predictor.predict(0x100).value == 5


def test_context_learns_repeating_sequence():
    predictor = ContextPredictor(order=4)
    sequence = [3, 1, 4, 1, 5, 9, 2, 6]
    hits = 0
    total = 0
    for rep in range(60):
        for value in sequence:
            prediction = predictor.predict(0x200)
            if rep > 20:
                total += 1
                if (
                    prediction is not None
                    and prediction.confidence >= predictor.CONFIDENCE_THRESHOLD
                    and prediction.value == value
                ):
                    hits += 1
            predictor.train(0x200, value)
    assert hits / total > 0.8


def test_context_beats_stride_on_patterns():
    sequence = [10, 99, 10, 99]  # stride flip-flops, context nails it

    def score(predictor):
        hits = 0
        for rep in range(50):
            for value in sequence:
                prediction = predictor.predict(0x300)
                if (
                    rep > 20
                    and prediction is not None
                    and prediction.confidence >= predictor.CONFIDENCE_THRESHOLD
                    and prediction.value == value
                ):
                    hits += 1
                predictor.train(0x300, value)
        return hits

    assert score(ContextPredictor()) > score(StridePredictor())


def test_composite_uses_stride_when_confident():
    predictor = CompositePredictor()
    for i in range(12):
        predictor.train(0x100, 100 + 4 * i)
    prediction = predictor.predict(0x100)
    assert prediction.value == 100 + 4 * 12
    assert prediction.confidence >= predictor.CONFIDENCE_THRESHOLD


def test_predictors_separate_pcs():
    predictor = StridePredictor()
    for i in range(12):
        predictor.train(0x100, 8 * i)
        predictor.train(0x200, 1000)
    assert predictor.predict(0x100).value == 8 * 12
    assert predictor.predict(0x200).value == 1000


def test_table_eviction_bounds_state():
    predictor = LastValuePredictor(table_size=4)
    for pc in range(100):
        predictor.train(pc, pc)
    assert len(predictor._table) == 4
