"""ChampSim 64-byte trace format tests."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.champsim.trace import (
    ChampSimInstr,
    RECORD_SIZE,
    decode_instr,
    encode_instr,
    read_champsim_trace,
    write_champsim_trace,
)
from repro.champsim.trace import ChampSimTraceError


def test_record_is_exactly_64_bytes():
    instr = ChampSimInstr(ip=0x1234, is_branch=True, branch_taken=True)
    assert len(encode_instr(instr)) == RECORD_SIZE == 64


def test_roundtrip_full_record():
    instr = ChampSimInstr(
        ip=0xDEADBEEF,
        is_branch=True,
        branch_taken=False,
        dst_regs=(26, 6),
        src_regs=(6, 25, 1, 2),
        dst_mem=(0x100, 0x140),
        src_mem=(0x200, 0x240, 0x280, 0x2C0),
    )
    assert decode_instr(encode_instr(instr)) == instr


def test_roundtrip_minimal_record():
    instr = ChampSimInstr(ip=1)
    assert decode_instr(encode_instr(instr)) == instr


def test_zero_slots_are_stripped_on_decode():
    instr = ChampSimInstr(ip=1, dst_regs=(7,), src_mem=(0x40,))
    decoded = decode_instr(encode_instr(instr))
    assert decoded.dst_regs == (7,)
    assert decoded.src_mem == (0x40,)


def test_too_many_destination_registers_rejected():
    with pytest.raises(ChampSimTraceError):
        ChampSimInstr(ip=1, dst_regs=(1, 2, 3))


def test_too_many_source_registers_rejected():
    with pytest.raises(ChampSimTraceError):
        ChampSimInstr(ip=1, src_regs=(1, 2, 3, 4, 5))


def test_too_many_memory_slots_rejected():
    with pytest.raises(ChampSimTraceError):
        ChampSimInstr(ip=1, dst_mem=(1, 2, 3))
    with pytest.raises(ChampSimTraceError):
        ChampSimInstr(ip=1, src_mem=(1, 2, 3, 4, 5))


def test_register_zero_rejected():
    # 0 is the empty-slot sentinel; a real register id must be nonzero.
    with pytest.raises(ChampSimTraceError):
        ChampSimInstr(ip=1, src_regs=(0,))


def test_load_store_classification():
    assert ChampSimInstr(ip=1, src_mem=(0x40,)).is_load
    assert ChampSimInstr(ip=1, dst_mem=(0x40,)).is_store
    assert not ChampSimInstr(ip=1).is_load


def test_wrong_size_decode_rejected():
    with pytest.raises(ChampSimTraceError):
        decode_instr(b"\x00" * 63)


def test_file_roundtrip(tmp_path):
    instrs = [ChampSimInstr(ip=i * 4, src_regs=(1,)) for i in range(1, 10)]
    path = tmp_path / "trace.bin"
    assert write_champsim_trace(instrs, path) == 9
    assert read_champsim_trace(path) == instrs


def test_gzip_roundtrip(tmp_path):
    instrs = [ChampSimInstr(ip=4), ChampSimInstr(ip=8)]
    path = tmp_path / "trace.gz"
    write_champsim_trace(instrs, path)
    assert read_champsim_trace(path) == instrs


def test_xz_roundtrip(tmp_path):
    # The paper compresses converted traces with xz.
    instrs = [ChampSimInstr(ip=4), ChampSimInstr(ip=8)]
    path = tmp_path / "trace.xz"
    write_champsim_trace(instrs, path)
    assert read_champsim_trace(path) == instrs


def test_trailing_partial_record_raises(tmp_path):
    path = tmp_path / "broken.bin"
    path.write_bytes(encode_instr(ChampSimInstr(ip=4)) + b"\x01\x02")
    with pytest.raises(ChampSimTraceError):
        read_champsim_trace(path)


def test_read_limit(tmp_path):
    instrs = [ChampSimInstr(ip=i * 4) for i in range(1, 6)]
    path = tmp_path / "trace.bin"
    write_champsim_trace(instrs, path)
    assert read_champsim_trace(path, limit=2) == instrs[:2]


regs = st.integers(min_value=1, max_value=255)
addrs = st.integers(min_value=1, max_value=(1 << 64) - 1)


@st.composite
def arbitrary_instrs(draw):
    return ChampSimInstr(
        ip=draw(st.integers(min_value=0, max_value=(1 << 64) - 1)),
        is_branch=draw(st.booleans()),
        branch_taken=draw(st.booleans()),
        dst_regs=tuple(draw(st.lists(regs, max_size=2))),
        src_regs=tuple(draw(st.lists(regs, max_size=4))),
        dst_mem=tuple(draw(st.lists(addrs, max_size=2))),
        src_mem=tuple(draw(st.lists(addrs, max_size=4))),
    )


@given(arbitrary_instrs())
@settings(max_examples=200)
def test_champsim_roundtrip_property(instr):
    assert decode_instr(encode_instr(instr)) == instr
