"""Tests for the CVP-1 simulator's documented footprint over-count."""

from repro.cvp.addrmode import naive_access_size, total_access_size

from tests.conftest import alu, load


def test_naive_overcounts_base_update_loads():
    """LDR X1, [X0, #12]!: 8 bytes moved, but the naive rule says 16."""
    record = load(dsts=(0, 1), srcs=(0,), values=(0x2008, 5), address=0x2008)
    assert naive_access_size(record) == 16
    assert total_access_size(record) == 8


def test_naive_and_correct_agree_on_plain_loads():
    record = load(dsts=(1,), srcs=(0,), values=(5,), address=0x2000)
    assert naive_access_size(record) == total_access_size(record) == 8


def test_naive_and_correct_agree_on_load_pairs():
    record = load(dsts=(1, 2), srcs=(0,), values=(5, 6), address=0x2000)
    assert naive_access_size(record) == total_access_size(record) == 16


def test_naive_on_non_memory_is_zero():
    assert naive_access_size(alu()) == 0


def test_naive_prefetch_load_counts_one_transfer():
    record = load(dsts=(), srcs=(0,), values=(), address=0x2000)
    assert naive_access_size(record) == 8
