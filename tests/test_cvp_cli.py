"""repro-stats CLI tests."""

import pytest

from repro.cvp.cli import main as stats_main
from repro.cvp.writer import write_trace
from repro.synth import make_trace


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("stats") / "t.gz"
    write_trace(make_trace("srv_3", 3000), path)
    return path


def test_stats_cli_reports_characterisation(trace_file, capsys):
    rc = stats_main([str(trace_file)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "instructions:" in out
    assert "base-update loads:" in out
    assert "BLR-X30" in out
    assert "code footprint:" in out


def test_stats_cli_limit(trace_file, capsys):
    rc = stats_main([str(trace_file), "--limit", "100"])
    assert rc == 0
    assert "instructions:            100" in capsys.readouterr().out
