"""Export-module tests."""

import csv
import json

import pytest

from repro.experiments.export import export_csv, export_json, to_records
from repro.experiments.figures import Figure1, Figure2, Figure4Row
from repro.experiments.tables import Table3, Table3Entry


def sample_fig1():
    return Figure1(variation={"imp_base-update": 0.02, "All_imps": -0.04}, traces=10)


def sample_table3():
    comp = [Table3Entry(1, "EPI", 1.3), Table3Entry(2, "TAP", 1.1)]
    fixed = [Table3Entry(1, "EPI", 1.35), Table3Entry(2, "TAP", 1.12)]
    return Table3(competition=comp, fixed=fixed)


def test_figure1_records():
    records = to_records(sample_fig1())
    assert {"improvement": "All_imps", "geomean_ipc_variation": -0.04} in records


def test_figure2_records_carry_rank():
    data = Figure2(series={"x": [0.1, -0.2]}, above_5pct={"x": 1})
    records = to_records(data)
    assert records[0]["rank"] == 1 and records[1]["rank"] == 2


def test_table3_records_have_both_sets():
    records = to_records(sample_table3())
    assert {r["trace_set"] for r in records} == {"competition", "fixed"}
    assert len(records) == 4


def test_dataclass_rows_flatten():
    rows = [
        Figure4Row(trace="a", base_update_load_fraction=0.01, speedup=1.02),
        Figure4Row(trace="b", base_update_load_fraction=0.05, speedup=1.08),
    ]
    records = to_records(rows)
    assert records[1]["trace"] == "b"
    assert records[1]["speedup"] == 1.08


def test_single_dataclass_flattens():
    row = Figure4Row(trace="a", base_update_load_fraction=0.0, speedup=1.0)
    assert to_records(row) == [
        {"trace": "a", "base_update_load_fraction": 0.0, "speedup": 1.0}
    ]


def test_unknown_type_raises():
    with pytest.raises(TypeError):
        to_records(42)


def test_export_json_roundtrip(tmp_path):
    path = export_json(sample_fig1(), tmp_path / "fig1.json")
    loaded = json.loads(path.read_text())
    assert len(loaded) == 2
    assert all("improvement" in record for record in loaded)


def test_export_csv_roundtrip(tmp_path):
    path = export_csv(sample_table3(), tmp_path / "tab3.csv")
    with open(path) as handle:
        rows = list(csv.DictReader(handle))
    assert len(rows) == 4
    assert rows[0]["prefetcher"] == "EPI"


def test_export_csv_empty(tmp_path):
    path = export_csv([], tmp_path / "empty.csv")
    assert path.read_text() == ""
