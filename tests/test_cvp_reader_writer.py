"""Reader/writer streaming tests, including gzip paths."""

import io


from repro.cvp.reader import CvpTraceReader, RegisterFile, read_trace
from repro.cvp.writer import CvpTraceWriter, write_trace

from tests.conftest import alu, branch, load


def sample_records():
    return [
        alu(pc=0x100, dsts=(1,), values=(7,)),
        load(pc=0x104, dsts=(2,), srcs=(1,), values=(9,)),
        branch(pc=0x108, taken=True, target=0x200),
        alu(pc=0x200, dsts=(1,), values=(8,)),
    ]


def test_write_and_read_plain_file(tmp_path):
    path = tmp_path / "trace.bin"
    count = write_trace(sample_records(), path)
    assert count == 4
    assert read_trace(path) == sample_records()


def test_write_and_read_gzip(tmp_path):
    path = tmp_path / "trace.gz"
    write_trace(sample_records(), path)
    assert read_trace(path) == sample_records()
    # gzip magic bytes confirm actual compression happened
    assert path.read_bytes()[:2] == b"\x1f\x8b"


def test_read_trace_limit(tmp_path):
    path = tmp_path / "trace.bin"
    write_trace(sample_records(), path)
    assert read_trace(path, limit=2) == sample_records()[:2]


def test_reader_over_in_memory_records():
    reader = CvpTraceReader(sample_records())
    assert list(reader) == sample_records()


def test_reader_over_file_object():
    buffer = io.BytesIO()
    write_trace(sample_records(), buffer)
    buffer.seek(0)
    assert list(CvpTraceReader(buffer)) == sample_records()


def test_reader_counts_records():
    reader = CvpTraceReader(sample_records())
    list(reader)
    assert reader.records_read == 4


def test_writer_counts_records(tmp_path):
    with CvpTraceWriter(tmp_path / "t.bin") as writer:
        for record in sample_records():
            writer.write(record)
        assert writer.records_written == 4


def test_register_file_tracks_values():
    regfile = RegisterFile()
    assert regfile.read(1) is None
    regfile.apply(alu(dsts=(1,), values=(42,)))
    assert regfile.read(1) == 42
    regfile.apply(alu(dsts=(1,), values=(43,)))
    assert regfile.read(1) == 43


def test_records_with_registers_exposes_pre_state():
    records = [
        alu(pc=0, dsts=(1,), values=(10,)),
        alu(pc=4, dsts=(1,), values=(20,), srcs=(1,)),
    ]
    reader = CvpTraceReader(records)
    seen = []
    for record in reader.records_with_registers():
        seen.append(reader.registers.read(1))
    # Before record 0, X1 unknown; before record 1, X1 holds record 0's value.
    assert seen == [None, 10]


def test_reader_context_manager(tmp_path):
    path = tmp_path / "trace.bin"
    write_trace(sample_records(), path)
    with CvpTraceReader(path) as reader:
        assert next(iter(reader)) == sample_records()[0]
