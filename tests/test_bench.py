"""The repro-bench harness: timing, reports, comparison, CLI."""

import json

import pytest

from repro.bench.harness import (
    SCHEMA_VERSION,
    base_payload,
    compare_payloads,
    load_report,
    min_of_k,
    peak_rss_kib,
    rate,
    report_path,
    write_report,
)


def test_min_of_k_runs_work_k_times():
    calls = []
    seconds = min_of_k(lambda: calls.append(1), 4)
    assert len(calls) == 4
    assert seconds >= 0.0


def test_min_of_k_rejects_nonpositive_repeats():
    with pytest.raises(ValueError):
        min_of_k(lambda: None, 0)


def test_rate_guards_zero_seconds():
    assert rate(100, 0.5) == 200.0
    assert rate(100, 0.0) == 0.0


def test_peak_rss_is_positive():
    assert peak_rss_kib() > 0


def test_base_payload_envelope():
    payload = base_payload("convert", quick=True, repeats=3)
    assert payload["phase"] == "convert"
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["quick"] is True
    assert payload["repeats"] == 3
    assert payload["workloads"] == {}
    assert "python" in payload and "platform" in payload


def test_report_round_trip(tmp_path):
    payload = base_payload("sim", quick=False, repeats=5)
    payload["workloads"]["w"] = {
        "cold": {"seconds": 1.0, "records": 10, "records_per_sec": 10.0}
    }
    path = write_report(tmp_path, payload)
    assert path == report_path(tmp_path, "sim")
    assert path.name == "BENCH_sim.json"
    loaded = load_report(path)
    assert loaded["phase"] == "sim"
    assert loaded["workloads"] == payload["workloads"]
    assert loaded["peak_rss_kib"] > 0


def test_load_report_rejects_non_reports(tmp_path):
    bogus = tmp_path / "x.json"
    bogus.write_text(json.dumps({"not": "a report"}))
    with pytest.raises(ValueError):
        load_report(bogus)


def _payload_with_rate(records_per_sec):
    payload = base_payload("convert", quick=False, repeats=5)
    payload["workloads"]["suite"] = {
        "fast": {
            "seconds": 1.0,
            "records": 1000,
            "records_per_sec": records_per_sec,
        }
    }
    return payload


def test_compare_payloads_flags_only_real_regressions():
    old = _payload_with_rate(1000.0)
    # 1.5x slower: inside the 2x budget.
    assert compare_payloads(old, _payload_with_rate(666.0)) == []
    # 4x slower: regression.
    found = compare_payloads(old, _payload_with_rate(250.0))
    assert len(found) == 1
    assert "suite" in found[0] and "fast" in found[0]
    # Faster is never a regression.
    assert compare_payloads(old, _payload_with_rate(9000.0)) == []


def test_compare_payloads_ignores_unmatched_workloads():
    old = _payload_with_rate(1000.0)
    new = base_payload("convert", quick=False, repeats=5)
    new["workloads"]["other"] = {
        "fast": {"seconds": 9.0, "records": 9, "records_per_sec": 1.0}
    }
    assert compare_payloads(old, new) == []


def test_compare_payloads_validates_threshold():
    old = _payload_with_rate(1000.0)
    with pytest.raises(ValueError):
        compare_payloads(old, old, threshold=1.0)


# --------------------------------------------------------------------------
# CLI (quick mode over the real golden fixtures, 1 repeat)


def test_cli_quick_convert_writes_report(tmp_path, capsys):
    from repro.bench.cli import main

    code = main(
        [
            "convert",
            "--quick",
            "--repeat",
            "1",
            "--output-dir",
            str(tmp_path),
        ]
    )
    assert code == 0
    report = load_report(tmp_path / "BENCH_convert.json")
    assert report["quick"] is True
    suite = report["workloads"]["golden_suite"]
    assert suite["fast"]["records_per_sec"] > 0
    assert suite["baseline"]["records_per_sec"] > 0
    assert suite["speedup"] > 0
    out = capsys.readouterr().out
    assert "[convert] golden_suite:" in out


def test_cli_quick_sim_reports_engine_variants(tmp_path, capsys):
    from repro.bench.cli import main

    code = main(
        ["sim", "--quick", "--repeat", "1", "--output-dir", str(tmp_path)]
    )
    assert code == 0
    report = load_report(tmp_path / "BENCH_sim.json")
    (workload,) = report["workloads"].values()
    for variant in ("cold", "warm", "vector_cold", "vector_warm"):
        assert workload[variant]["records_per_sec"] > 0
    assert workload["engine_speedup"] > 0
    assert workload["engine_speedup_cold"] > 0
    out = capsys.readouterr().out
    assert "vector_warm" in out and "engine_speedup" in out


def test_cli_compare_detects_regression(tmp_path):
    from repro.bench.cli import main

    # Baseline that no machine can reach: 1e12 rec/s everywhere.
    first_dir = tmp_path / "fresh"
    first_dir.mkdir()
    assert (
        main(
            [
                "lint",
                "--quick",
                "--repeat",
                "1",
                "--output-dir",
                str(first_dir),
            ]
        )
        == 0
    )
    baseline = load_report(first_dir / "BENCH_lint.json")
    for workload in baseline["workloads"].values():
        for entry in workload.values():
            if isinstance(entry, dict) and "records_per_sec" in entry:
                entry["records_per_sec"] = 1e12
    baseline_dir = tmp_path / "baseline"
    baseline_dir.mkdir()
    (baseline_dir / "BENCH_lint.json").write_text(json.dumps(baseline))

    out_dir = tmp_path / "out"
    out_dir.mkdir()
    code = main(
        [
            "lint",
            "--quick",
            "--repeat",
            "1",
            "--output-dir",
            str(out_dir),
            "--compare",
            str(baseline_dir),
        ]
    )
    assert code == 1


def test_cli_compare_passes_against_own_fresh_report(tmp_path):
    from repro.bench.cli import main

    out_dir = tmp_path / "out"
    out_dir.mkdir()
    assert (
        main(
            [
                "lint",
                "--quick",
                "--repeat",
                "1",
                "--output-dir",
                str(out_dir),
            ]
        )
        == 0
    )
    # Compare a second run against the first with a generous threshold.
    assert (
        main(
            [
                "lint",
                "--quick",
                "--repeat",
                "1",
                "--output-dir",
                str(out_dir),
                "--compare",
                str(out_dir),
                "--threshold",
                "1000",
            ]
        )
        == 0
    )


def test_cli_compare_unreadable_baseline_exits_2(tmp_path):
    from repro.bench.cli import main

    bad = tmp_path / "BENCH_lint.json"
    bad.write_text("{nope")
    code = main(
        [
            "lint",
            "--quick",
            "--repeat",
            "1",
            "--output-dir",
            str(tmp_path / "out"),
            "--compare",
            str(bad),
        ]
    )
    assert code == 2


def test_cli_rejects_unknown_phase():
    from repro.bench.cli import main

    with pytest.raises(SystemExit):
        main(["frobnicate"])