"""Decode-stage tests: branch typing + next-IP target attachment."""

from repro.champsim.branch_info import BranchRules, BranchType
from repro.champsim.regs import (
    REG_FLAGS,
    REG_INSTRUCTION_POINTER as IP,
)
from repro.champsim.trace import ChampSimInstr
from repro.sim.decoded import decode_trace


def cond(ip, taken):
    return ChampSimInstr(
        ip=ip,
        is_branch=True,
        branch_taken=taken,
        src_regs=(IP, REG_FLAGS),
        dst_regs=(IP,),
    )


def plain(ip):
    return ChampSimInstr(ip=ip, dst_regs=(1,), src_regs=(2,))


def test_targets_come_from_next_ip():
    decoded = decode_trace([cond(0x100, True), plain(0x4000)])
    assert decoded[0].target == 0x4000
    assert decoded[0].branch_type is BranchType.CONDITIONAL


def test_not_taken_branch_has_no_target():
    decoded = decode_trace([cond(0x100, False), plain(0x104)])
    assert decoded[0].target == 0


def test_last_taken_branch_falls_back_to_own_ip():
    decoded = decode_trace([cond(0x100, True)])
    assert decoded[0].target == 0x100


def test_non_branch_decoding():
    decoded = decode_trace([plain(0x100)])
    assert decoded[0].branch_type is BranchType.NOT_BRANCH
    assert not decoded[0].is_branch
    assert decoded[0].src_regs == (2,)


def test_load_store_flags():
    load = ChampSimInstr(ip=1, src_mem=(0x40,))
    store = ChampSimInstr(ip=2, dst_mem=(0x40,))
    decoded = decode_trace([load, store])
    assert decoded[0].is_load and not decoded[0].is_store
    assert decoded[1].is_store and not decoded[1].is_load


def test_rules_are_applied():
    # Conditional reading a GPR: indirect under ORIGINAL, conditional
    # under PATCHED (the paper's ChampSim patch).
    instr = ChampSimInstr(
        ip=0x100,
        is_branch=True,
        branch_taken=True,
        src_regs=(IP, 31),
        dst_regs=(IP,),
    )
    stream = [instr, plain(0x4000)]
    assert decode_trace(stream, BranchRules.ORIGINAL)[0].branch_type is (
        BranchType.INDIRECT
    )
    assert decode_trace(stream, BranchRules.PATCHED)[0].branch_type is (
        BranchType.CONDITIONAL
    )


def test_empty_trace():
    assert decode_trace([]) == []
