"""Decode-stage tests: branch typing + next-IP target attachment."""

import pytest

from repro.champsim.branch_info import BranchRules, BranchType
from repro.champsim.regs import (
    REG_FLAGS,
    REG_INSTRUCTION_POINTER as IP,
)
from repro.champsim.trace import ChampSimInstr
from repro.sim.decoded import DecodeCache, decode_trace

from tests.diffharness import assert_stats_identical


def cond(ip, taken):
    return ChampSimInstr(
        ip=ip,
        is_branch=True,
        branch_taken=taken,
        src_regs=(IP, REG_FLAGS),
        dst_regs=(IP,),
    )


def plain(ip):
    return ChampSimInstr(ip=ip, dst_regs=(1,), src_regs=(2,))


def test_targets_come_from_next_ip():
    decoded = decode_trace([cond(0x100, True), plain(0x4000)])
    assert decoded[0].target == 0x4000
    assert decoded[0].branch_type is BranchType.CONDITIONAL


def test_not_taken_branch_has_no_target():
    decoded = decode_trace([cond(0x100, False), plain(0x104)])
    assert decoded[0].target == 0


def test_last_taken_branch_falls_back_to_own_ip():
    decoded = decode_trace([cond(0x100, True)])
    assert decoded[0].target == 0x100


def test_non_branch_decoding():
    decoded = decode_trace([plain(0x100)])
    assert decoded[0].branch_type is BranchType.NOT_BRANCH
    assert not decoded[0].is_branch
    assert decoded[0].src_regs == (2,)


def test_load_store_flags():
    load = ChampSimInstr(ip=1, src_mem=(0x40,))
    store = ChampSimInstr(ip=2, dst_mem=(0x40,))
    decoded = decode_trace([load, store])
    assert decoded[0].is_load and not decoded[0].is_store
    assert decoded[1].is_store and not decoded[1].is_load


def test_rules_are_applied():
    # Conditional reading a GPR: indirect under ORIGINAL, conditional
    # under PATCHED (the paper's ChampSim patch).
    instr = ChampSimInstr(
        ip=0x100,
        is_branch=True,
        branch_taken=True,
        src_regs=(IP, 31),
        dst_regs=(IP,),
    )
    stream = [instr, plain(0x4000)]
    assert decode_trace(stream, BranchRules.ORIGINAL)[0].branch_type is (
        BranchType.INDIRECT
    )
    assert decode_trace(stream, BranchRules.PATCHED)[0].branch_type is (
        BranchType.CONDITIONAL
    )


def test_empty_trace():
    assert decode_trace([]) == []


# --------------------------------------------------------------------------
# DecodeCache


def _mixed_stream():
    # The same loop body twice: identical (branch, outcome, target)
    # tuples the second time around, so the cache gets real hits.
    body = [
        cond(0x100, True),
        plain(0x4000),
        plain(0x4004),
    ]
    return (
        body
        + body
        + [
            cond(0x100, False),  # same branch, new outcome -> new key
            ChampSimInstr(ip=0x500, src_mem=(0x40,), dst_regs=(3,)),
        ]
    )


def test_cached_decode_equals_uncached():
    stream = _mixed_stream()
    for rules in (BranchRules.ORIGINAL, BranchRules.PATCHED):
        cache = DecodeCache()
        assert decode_trace(stream, rules, cache=cache) == decode_trace(
            stream, rules
        )


def test_cache_counts_hits_and_misses():
    stream = _mixed_stream()
    cache = DecodeCache()
    decode_trace(stream, cache=cache)
    first_misses = cache.misses
    assert first_misses == len(cache)
    assert cache.hits == len(stream) - first_misses
    assert cache.hits > 0  # the repeated (branch, outcome) pair hit
    # A second pass over the same stream is all hits.
    decode_trace(stream, cache=cache)
    assert cache.misses == first_misses
    assert cache.hits == (len(stream) - first_misses) + len(stream)


def test_cache_distinguishes_rules():
    # The PATCHED/ORIGINAL divergent branch from test_rules_are_applied
    # must not share a cache slot across rule sets.
    instr = ChampSimInstr(
        ip=0x100,
        is_branch=True,
        branch_taken=True,
        src_regs=(IP, 31),
        dst_regs=(IP,),
    )
    stream = [instr, plain(0x4000)]
    cache = DecodeCache()
    original = decode_trace(stream, BranchRules.ORIGINAL, cache=cache)
    patched = decode_trace(stream, BranchRules.PATCHED, cache=cache)
    assert original[0].branch_type is BranchType.INDIRECT
    assert patched[0].branch_type is BranchType.CONDITIONAL


def test_cache_respects_its_size_bound():
    cache = DecodeCache(maxsize=8)
    stream = [plain(0x1000 + 4 * i) for i in range(50)]
    decoded = decode_trace(stream, cache=cache)
    assert len(cache) == 8
    assert decoded == decode_trace(stream)
    # The survivors are the most recent keys: re-decoding the tail hits.
    hits_before = cache.hits
    decode_trace(stream[-8:], cache=cache)
    assert cache.hits == hits_before + 8


def test_cache_clear():
    cache = DecodeCache()
    decode_trace(_mixed_stream(), cache=cache)
    assert len(cache) > 0
    cache.clear()
    assert len(cache) == 0
    assert cache.hits == 0
    assert cache.misses == 0


def test_cache_rejects_nonpositive_maxsize():
    with pytest.raises(ValueError):
        DecodeCache(maxsize=0)


# --------------------------------------------------------------------------
# Simulator / Engine wiring


def test_simulator_results_identical_with_and_without_cache():
    from repro.sim import SimConfig, Simulator

    stream = _mixed_stream() * 5
    cached_sim = Simulator(SimConfig.main())  # "fresh" cache by default
    uncached_sim = Simulator(SimConfig.main(), decode_cache=None)
    first = cached_sim.run(stream)
    assert_stats_identical(uncached_sim.run(stream), first, "uncached vs cached")
    # Re-running through the now-warm cache changes nothing.
    assert_stats_identical(cached_sim.run(stream), first, "warm re-run")
    assert cached_sim.decode_cache.hits > 0


def test_each_simulator_gets_its_own_fresh_cache():
    from repro.sim import SimConfig, Simulator

    a = Simulator(SimConfig.main())
    b = Simulator(SimConfig.main())
    assert a.decode_cache is not b.decode_cache
    shared = DecodeCache()
    assert Simulator(SimConfig.main(), decode_cache=shared).decode_cache is (
        shared
    )


def test_simulator_rejects_bogus_cache_argument():
    from repro.sim import SimConfig, Simulator

    with pytest.raises(TypeError):
        Simulator(SimConfig.main(), decode_cache="warm")


def test_engine_accepts_predecoded_and_raw_streams():
    from repro.sim import SimConfig
    from repro.sim.engine import Engine

    stream = _mixed_stream() * 3
    decoded = decode_trace(stream)
    raw_stats = Engine(SimConfig.main()).run(stream)
    decoded_stats = Engine(SimConfig.main()).run(decoded)
    assert_stats_identical(decoded_stats, raw_stats, "decoded vs raw stream")
