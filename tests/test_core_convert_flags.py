"""Converter tests for the flag-reg improvement (paper Section 3.2.3)."""

from repro.champsim.regs import REG_FLAGS, REG_FORGED_X0, champsim_reg
from repro.core.convert import Converter, convert_trace
from repro.core.improvements import Improvement
from repro.cvp.isa import InstClass

from tests.conftest import alu, load, store


def test_flag_reg_adds_flags_to_zero_dst_alu():
    record = alu(dsts=(), values=(), srcs=(1, 2))
    converter = Converter(Improvement.FLAG_REG)
    instr = converter.convert_record(record)[0]
    assert instr.dst_regs == (REG_FLAGS,)
    assert converter.stats.flag_dsts_added == 1


def test_flag_reg_adds_flags_to_zero_dst_fp():
    record = alu(dsts=(), values=(), srcs=(33, 34), cls=InstClass.FP)
    instr = convert_trace([record], Improvement.FLAG_REG)[0]
    assert instr.dst_regs == (REG_FLAGS,)


def test_flag_reg_adds_flags_to_zero_dst_slow_alu():
    record = alu(dsts=(), values=(), srcs=(1,), cls=InstClass.SLOW_ALU)
    instr = convert_trace([record], Improvement.FLAG_REG)[0]
    assert instr.dst_regs == (REG_FLAGS,)


def test_flag_reg_leaves_alu_with_destination_alone():
    record = alu(dsts=(3,), srcs=(1, 2))
    instr = convert_trace([record], Improvement.FLAG_REG)[0]
    assert instr.dst_regs == (champsim_reg(3),)


def test_flag_reg_does_not_touch_memory_instructions():
    record = load(dsts=(), values=(), srcs=(2,))
    instr = convert_trace([record], Improvement.FLAG_REG)[0]
    # Memory zero-dst handling stays the original forged X0.
    assert instr.dst_regs == (REG_FORGED_X0,)


def test_without_flag_reg_compare_gets_forged_x0():
    record = alu(dsts=(), values=(), srcs=(1, 2))
    instr = convert_trace([record], Improvement.NONE)[0]
    assert instr.dst_regs == (REG_FORGED_X0,)


def test_flag_dependency_chain_restored():
    """Compare → conditional branch dependence exists only with flag-reg."""
    from tests.conftest import branch

    cmp_record = alu(dsts=(), values=(), srcs=(1, 2))
    br_record = branch()

    originals = convert_trace([cmp_record, br_record], Improvement.NONE)
    # Original: the branch reads FLAGS but no instruction writes it.
    assert REG_FLAGS in originals[1].src_regs
    assert REG_FLAGS not in originals[0].dst_regs

    improved = convert_trace([cmp_record, br_record], Improvement.FLAG_REG)
    assert REG_FLAGS in improved[1].src_regs
    assert REG_FLAGS in improved[0].dst_regs


def test_flag_reg_plus_branch_regs_overlap():
    """branch-regs replaces FLAGS for cb(n)z even with flag-reg active.

    This is the overlap the paper describes in Section 4.1: flag-reg in
    isolation makes all conditionals depend on compares; branch-regs then
    reroutes register-source conditionals to their true producer.
    """
    from tests.conftest import branch

    cbz = branch(srcs=(9,))
    both = Improvement.FLAG_REG | Improvement.BRANCH_REGS
    instr = convert_trace([cbz], both)[0]
    assert REG_FLAGS not in instr.src_regs
    assert champsim_reg(9) in instr.src_regs
