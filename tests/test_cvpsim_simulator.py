"""CVP-1 championship simulator tests."""

import pytest

from repro.cvpsim import CvpSimulator, make_value_predictor
from repro.cvpsim.predictors import Prediction, ValuePredictor
from repro.synth import make_trace

from tests.conftest import alu, load


@pytest.fixture(scope="module")
def trace():
    return make_trace("compute_int_7", 6000)


def test_baseline_runs(trace):
    stats = CvpSimulator().run(trace)
    assert stats.instructions == len(trace)
    assert 0 < stats.ipc < 8
    assert stats.confident == 0


def test_stride_prediction_helps(trace):
    base = CvpSimulator().run(trace)
    stride = CvpSimulator(make_value_predictor("stride")).run(trace)
    assert stride.coverage > 0.05
    assert stride.accuracy > 0.9
    assert stride.ipc >= base.ipc


def test_composite_at_least_matches_stride(trace):
    stride = CvpSimulator(make_value_predictor("stride")).run(trace)
    composite = CvpSimulator(make_value_predictor("composite")).run(trace)
    assert composite.coverage >= stride.coverage * 0.95
    assert composite.ipc >= stride.ipc * 0.98


def test_cvp2_base_update_fix_speeds_up_walker_traces():
    """The paper-introduction flaw, quantified from the CVP side."""
    records = make_trace("compute_fp_9", 10_000)  # base-update heavy
    flawed = CvpSimulator(base_update_fix=False).run(records)
    fixed = CvpSimulator(base_update_fix=True).run(records)
    assert fixed.ipc > flawed.ipc


def test_mispredictions_cost_cycles():
    class WrongPredictor(ValuePredictor):
        """Confidently predicts an always-wrong value."""

        def predict(self, pc):
            return Prediction(value=0xBAD, confidence=15)

        def train(self, pc, actual):
            pass

    records = [
        alu(pc=0x1000 + 8 * (i % 8), dsts=(1,), values=(i,), srcs=(2,))
        for i in range(2000)
    ]
    clean = CvpSimulator().run(records)
    flushed = CvpSimulator(WrongPredictor()).run(records)
    assert flushed.cycles > clean.cycles * 2
    assert flushed.incorrect == 2000


def test_perfect_prediction_breaks_chains():
    class Oracle(ValuePredictor):
        """Cheats: predicts the dependency chain's exact next value."""

        def __init__(self):
            self._next = {}

        def predict(self, pc):
            value = self._next.get(pc)
            if value is None:
                return None
            return Prediction(value=value, confidence=15)

        def train(self, pc, actual):
            # The same static pc recurs every 4 records; values step by 1
            # per record, so the next value at this pc is actual + 4.
            self._next[pc] = actual + 4

    # A serial chain through loads: reg 1 feeds the next load.
    records = []
    value = 0
    for i in range(2000):
        value += 1
        records.append(
            load(
                pc=0x1000 + 8 * (i % 4),
                dsts=(1,),
                srcs=(1,),
                values=(value,),
                address=0x2000,
            )
        )
    base = CvpSimulator().run(records)
    oracle = CvpSimulator(Oracle()).run(records)
    assert oracle.accuracy > 0.99
    assert oracle.ipc > 1.5 * base.ipc


def test_window_limits_parallelism(trace):
    wide = CvpSimulator(window=512).run(trace)
    narrow = CvpSimulator(window=8).run(trace)
    assert wide.ipc > narrow.ipc


def test_stats_summary():
    stats = CvpSimulator(make_value_predictor("stride")).run(
        make_trace("crypto_3", 1000)
    )
    text = stats.summary()
    assert "IPC" in text and "coverage" in text
