"""Unit tests for CvpRecord invariants."""

import pytest

from repro.cvp.isa import InstClass
from repro.cvp.record import CvpRecord

from tests.conftest import alu, branch, load, store


def test_plain_alu_record():
    record = alu(dsts=(5,), srcs=(1, 2))
    assert not record.is_branch
    assert not record.is_memory
    assert record.value_of(5) is not None
    assert record.value_of(9) is None


def test_load_requires_address():
    with pytest.raises(ValueError):
        CvpRecord(pc=0, inst_class=InstClass.LOAD, mem_size=8)


def test_non_memory_rejects_address():
    with pytest.raises(ValueError):
        CvpRecord(pc=0, inst_class=InstClass.ALU, mem_address=0x100)


def test_values_must_match_destinations():
    with pytest.raises(ValueError):
        CvpRecord(
            pc=0, inst_class=InstClass.ALU, dst_regs=(1, 2), dst_values=(3,)
        )


def test_taken_branch_requires_target():
    with pytest.raises(ValueError):
        CvpRecord(pc=0, inst_class=InstClass.COND_BRANCH, branch_taken=True)


def test_non_branch_cannot_be_taken():
    with pytest.raises(ValueError):
        CvpRecord(pc=0, inst_class=InstClass.ALU, branch_taken=True)


def test_next_pc_falls_through_for_not_taken():
    record = branch(pc=0x100, taken=False)
    assert record.next_pc() == 0x104


def test_next_pc_follows_taken_target():
    record = branch(pc=0x100, taken=True, target=0x4000)
    assert record.next_pc() == 0x4000


def test_next_pc_for_straightline_code():
    assert alu(pc=0x200).next_pc() == 0x204


def test_load_store_classification():
    assert load().is_load and load().is_memory and not load().is_store
    assert store().is_store and store().is_memory and not store().is_load


def test_register_lists_are_normalised_to_tuples():
    record = CvpRecord(
        pc=0,
        inst_class=InstClass.ALU,
        src_regs=[1, 2],
        dst_regs=[3],
        dst_values=[4],
    )
    assert record.src_regs == (1, 2)
    assert record.dst_regs == (3,)
    assert record.dst_values == (4,)


def test_invalid_register_numbers_rejected():
    with pytest.raises(ValueError):
        alu(dsts=(64,), values=(0,))
    with pytest.raises(ValueError):
        alu(srcs=(70,))
