"""Direction-predictor tests."""

import pytest

from repro.sim.branch import (
    AlwaysTaken,
    Bimodal,
    GShare,
    Tage,
    make_direction_predictor,
)


def accuracy(predictor, stream):
    correct = 0
    for ip, taken in stream:
        if predictor.predict(ip) == taken:
            correct += 1
        predictor.update(ip, taken)
    return correct / len(stream)


def biased_stream(ip=0x1000, n=2000, taken=True):
    return [(ip, taken)] * n


def alternating_stream(ip=0x1000, n=2000):
    return [(ip, i % 2 == 0) for i in range(n)]


def pattern_stream(ip=0x1000, pattern=(True, True, True, False), n=2000):
    return [(ip, pattern[i % len(pattern)]) for i in range(n)]


@pytest.mark.parametrize("name", ["bimodal", "gshare", "tage", "always-taken"])
def test_registry(name):
    predictor = make_direction_predictor(name)
    assert isinstance(predictor.predict(0x1000), bool)


def test_registry_rejects_unknown():
    with pytest.raises(ValueError):
        make_direction_predictor("oracle")


def test_always_taken():
    predictor = AlwaysTaken()
    assert predictor.predict(0x1234) is True
    predictor.update(0x1234, False)
    assert predictor.predict(0x1234) is True


@pytest.mark.parametrize("cls", [Bimodal, GShare, Tage])
def test_learns_heavily_biased_branch(cls):
    assert accuracy(cls(), biased_stream(taken=True)) > 0.98
    assert accuracy(cls(), biased_stream(taken=False)) > 0.95


@pytest.mark.parametrize("cls", [GShare, Tage])
def test_history_predictor_learns_alternation(cls):
    assert accuracy(cls(), alternating_stream()) > 0.9


def test_bimodal_cannot_learn_alternation():
    assert accuracy(Bimodal(), alternating_stream()) < 0.6


@pytest.mark.parametrize("cls", [GShare, Tage])
def test_history_predictor_learns_loop_pattern(cls):
    assert accuracy(cls(), pattern_stream()) > 0.85


def test_tage_beats_bimodal_on_correlated_branches():
    """Branch B's outcome equals branch A's previous outcome."""
    import random

    rng = random.Random(7)
    stream = []
    last_a = True
    for _ in range(3000):
        outcome_a = rng.random() < 0.5
        stream.append((0x1000, outcome_a))
        stream.append((0x2000, last_a))
        last_a = outcome_a
    tage, bimodal = Tage(), Bimodal()
    acc_tage = accuracy(tage, stream)
    acc_bimodal = accuracy(bimodal, stream)
    assert acc_tage > acc_bimodal + 0.1


def test_predictors_separate_different_pcs():
    predictor = Bimodal()
    for _ in range(50):
        predictor.update(0x1000, True)
        predictor.update(0x2000, False)
    assert predictor.predict(0x1000) is True
    assert predictor.predict(0x2000) is False


def test_tage_update_without_predict_is_safe():
    tage = Tage()
    for i in range(100):
        tage.update(0x1000 + (i % 5) * 4, i % 3 == 0)
    assert isinstance(tage.predict(0x1000), bool)
