"""Unit tests for the CVP-1 ISA model."""

import pytest

from repro.cvp.isa import (
    FIRST_VEC_REGISTER,
    InstClass,
    LINK_REGISTER,
    NUM_REGISTERS,
    STACK_POINTER,
    is_branch_class,
    is_memory_class,
    is_unconditional_branch_class,
    is_vec_register,
    validate_register,
)


def test_instruction_class_values_match_cvp1_encoding():
    # The on-disk byte values are part of the CVP-1 format.
    assert InstClass.ALU == 0
    assert InstClass.LOAD == 1
    assert InstClass.STORE == 2
    assert InstClass.COND_BRANCH == 3
    assert InstClass.UNCOND_DIRECT_BRANCH == 4
    assert InstClass.UNCOND_INDIRECT_BRANCH == 5
    assert InstClass.FP == 6
    assert InstClass.SLOW_ALU == 7
    assert InstClass.UNDEF == 8


def test_branch_classes():
    assert is_branch_class(InstClass.COND_BRANCH)
    assert is_branch_class(InstClass.UNCOND_DIRECT_BRANCH)
    assert is_branch_class(InstClass.UNCOND_INDIRECT_BRANCH)
    assert not is_branch_class(InstClass.ALU)
    assert not is_branch_class(InstClass.LOAD)


def test_unconditional_branch_classes():
    assert is_unconditional_branch_class(InstClass.UNCOND_DIRECT_BRANCH)
    assert is_unconditional_branch_class(InstClass.UNCOND_INDIRECT_BRANCH)
    assert not is_unconditional_branch_class(InstClass.COND_BRANCH)


def test_memory_classes():
    assert is_memory_class(InstClass.LOAD)
    assert is_memory_class(InstClass.STORE)
    assert not is_memory_class(InstClass.FP)


def test_register_constants():
    assert LINK_REGISTER == 30
    assert STACK_POINTER == 31
    assert FIRST_VEC_REGISTER == 32
    assert NUM_REGISTERS == 64


def test_vec_register_partition():
    assert not is_vec_register(0)
    assert not is_vec_register(31)
    assert is_vec_register(32)
    assert is_vec_register(63)
    assert not is_vec_register(64)


@pytest.mark.parametrize("reg", [0, 30, 31, 32, 63])
def test_validate_register_accepts_architectural_range(reg):
    assert validate_register(reg) == reg


@pytest.mark.parametrize("reg", [-1, 64, 255])
def test_validate_register_rejects_out_of_range(reg):
    with pytest.raises(ValueError):
        validate_register(reg)
