"""Property-based tests of converter invariants (hypothesis).

The strategies build arbitrary-but-valid CVP-1 records; the properties
are the paper's conversion guarantees, which must hold for *every*
record, not just the synthetic workloads.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.champsim.branch_info import BranchType, deduce_branch_type
from repro.champsim.regs import REG_FLAGS, champsim_reg
from repro.champsim.trace import MAX_DST_REGS, MAX_SRC_REGS, encode_instr
from repro.core.convert import Converter
from repro.core.improvements import Improvement
from repro.cvp.isa import InstClass, LINK_REGISTER
from repro.cvp.record import CvpRecord

registers = st.integers(min_value=0, max_value=63)
addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)
values = st.integers(min_value=0, max_value=(1 << 64) - 1)

improvement_sets = st.sampled_from(
    [
        Improvement.NONE,
        Improvement.MEM_REGS,
        Improvement.BASE_UPDATE,
        Improvement.MEM_FOOTPRINT,
        Improvement.CALL_STACK,
        Improvement.BRANCH_REGS,
        Improvement.FLAG_REG,
        Improvement.MEMORY,
        Improvement.BRANCH,
        Improvement.ALL,
    ]
)


@st.composite
def cvp_records(draw):
    cls = draw(st.sampled_from(list(InstClass)))
    srcs = tuple(draw(st.lists(registers, max_size=5, unique=True)))
    dsts = tuple(draw(st.lists(registers, max_size=3, unique=True)))
    kwargs = dict(
        pc=draw(addresses),
        inst_class=cls,
        src_regs=srcs,
        dst_regs=dsts,
        dst_values=tuple(draw(values) for _ in dsts),
    )
    if cls in (InstClass.LOAD, InstClass.STORE):
        kwargs["mem_address"] = draw(addresses)
        kwargs["mem_size"] = draw(st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    if cls in (
        InstClass.COND_BRANCH,
        InstClass.UNCOND_DIRECT_BRANCH,
        InstClass.UNCOND_INDIRECT_BRANCH,
    ):
        taken = draw(st.booleans())
        kwargs["branch_taken"] = taken
        if taken:
            kwargs["branch_target"] = draw(addresses)
    return CvpRecord(**kwargs)


@given(record=cvp_records(), improvements=improvement_sets)
@settings(max_examples=400)
def test_converted_records_always_encode(record, improvements):
    """Every conversion output fits the 64-byte ChampSim format."""
    converter = Converter(improvements)
    for instr in converter.convert_record(record):
        assert len(instr.src_regs) <= MAX_SRC_REGS
        assert len(instr.dst_regs) <= MAX_DST_REGS
        assert len(encode_instr(instr)) == 64


@given(record=cvp_records(), improvements=improvement_sets)
@settings(max_examples=400)
def test_branch_type_always_deducible(record, improvements):
    """Converted branches never land in the OTHER bucket."""
    converter = Converter(improvements)
    for instr in converter.convert_record(record):
        deducted = deduce_branch_type(instr, converter.required_branch_rules)
        if record.is_branch:
            assert instr.is_branch
            assert deducted not in (BranchType.OTHER, BranchType.NOT_BRANCH)
        else:
            assert not instr.is_branch


@given(record=cvp_records(), improvements=improvement_sets)
@settings(max_examples=300)
def test_memory_direction_preserved(record, improvements):
    """Loads emit memory sources, stores memory destinations, never both."""
    converter = Converter(improvements)
    memory_uops = [
        instr
        for instr in converter.convert_record(record)
        if instr.src_mem or instr.dst_mem
    ]
    if record.is_load:
        assert len(memory_uops) == 1
        assert memory_uops[0].src_mem and not memory_uops[0].dst_mem
    elif record.is_store:
        assert len(memory_uops) == 1
        assert memory_uops[0].dst_mem and not memory_uops[0].src_mem
    else:
        assert not memory_uops


@given(record=cvp_records())
@settings(max_examples=300)
def test_split_preserves_first_pc(record):
    """Base-update splits keep the original PC on the first micro-op and
    PC + 2 on the second (paper Section 3.1.2)."""
    converter = Converter(Improvement.BASE_UPDATE)
    instrs = converter.convert_record(record)
    assert instrs[0].ip == record.pc
    if len(instrs) == 2:
        assert instrs[1].ip == record.pc + 2


@given(record=cvp_records())
@settings(max_examples=300)
def test_mem_regs_preserves_destinations(record):
    """With mem-regs, every surviving destination is a true CVP dest."""
    converter = Converter(Improvement.MEM_REGS)
    for instr in converter.convert_record(record):
        if record.is_branch:
            continue
        mapped = {champsim_reg(r) for r in record.dst_regs}
        assert set(instr.dst_regs) <= mapped


@given(record=cvp_records())
@settings(max_examples=300)
def test_flag_reg_only_touches_destinationless_alu(record):
    converter = Converter(Improvement.FLAG_REG)
    for instr in converter.convert_record(record):
        if REG_FLAGS in instr.dst_regs:
            assert record.inst_class in (
                InstClass.ALU,
                InstClass.SLOW_ALU,
                InstClass.FP,
                InstClass.UNDEF,
            )
            assert not record.dst_regs


@given(record=cvp_records(), improvements=improvement_sets)
@settings(max_examples=300)
def test_conversion_deterministic(record, improvements):
    a = Converter(improvements).convert_record(record)
    b = Converter(improvements).convert_record(record)
    assert a == b


@given(record=cvp_records())
@settings(max_examples=300)
def test_call_stack_return_rule(record):
    """Under call-stack, a RETURN type implies reads-X30-writes-nothing."""
    converter = Converter(Improvement.CALL_STACK)
    for instr in converter.convert_record(record):
        deducted = deduce_branch_type(instr, converter.required_branch_rules)
        if deducted is BranchType.RETURN:
            assert LINK_REGISTER in record.src_regs
            assert not record.dst_regs
