"""IPC-1 instruction-prefetcher tests.

Each prefetcher gets a mechanism-specific unit test plus shared
behavioural tests over a looping fetch stream with discontinuities.
"""

import pytest

from repro.champsim.branch_info import BranchType
from repro.sim.cache.cache import LINE_SIZE
from repro.sim.cache.hierarchy import CacheHierarchy
from repro.sim.config import SimConfig
from repro.sim.prefetch.ipc1 import (
    EPI,
    IPC1_PREFETCHERS,
    JIP,
    TAP,
    Barca,
    DJolt,
    FNLMMA,
    MANA,
    PIPS,
    make_instruction_prefetcher,
)
from repro.sim.stats import SimStats


def bare_hierarchy():
    stats = SimStats()
    h = CacheHierarchy(SimConfig.main(), stats)
    return h, stats


def drive(pf, h, lines, start=0, step=10):
    """Feed a line-address stream through the prefetcher."""
    now = start
    for line in lines:
        hit = h.l1i.lookup(line)
        if not hit:
            h.l1i.fill(line)
        pf.on_fetch(line, hit, h, now)
        now += step
    return now


def test_registry_has_all_eight():
    assert set(IPC1_PREFETCHERS) == {
        "EPI",
        "D-JOLT",
        "FNL+MMA",
        "Barça",
        "PIPS",
        "JIP",
        "MANA",
        "TAP",
    }
    for name in IPC1_PREFETCHERS:
        assert make_instruction_prefetcher(name) is not None
    assert make_instruction_prefetcher("") is None
    with pytest.raises(ValueError):
        make_instruction_prefetcher("NoSuch")


@pytest.mark.parametrize("name", sorted(IPC1_PREFETCHERS))
def test_all_prefetch_sequential_code(name):
    """Every submission covers a straight-line fetch stream."""
    pf = make_instruction_prefetcher(name)
    h, stats = bare_hierarchy()
    lines = [0x400000 + i * LINE_SIZE for i in range(10)]
    drive(pf, h, lines)
    assert stats.prefetches_issued.get("L1I", 0) > 0
    assert h.l1i.present(lines[-1] + LINE_SIZE)


def test_epi_entangles_miss_with_distant_trigger():
    pf = EPI(latency_target=20)
    h, stats = bare_hierarchy()
    trigger, missing = 0x400000, 0x900000
    # Fetch the trigger, let time pass, then miss on a far line twice.
    for _ in range(2):
        pf.on_fetch(trigger, True, h, 0)
        pf.on_fetch(trigger + LINE_SIZE, True, h, 30)
        pf.on_fetch(missing, False, h, 60)
    h.l1i.invalidate(missing)
    # Next fetch of the chosen trigger line prefetches the entangled line.
    # (The trigger is the most recent fetch at least latency_target back —
    # here the second line of the pair.)
    pf.on_fetch(trigger, True, h, 200)
    pf.on_fetch(trigger + LINE_SIZE, True, h, 230)
    assert h.l1i.present(missing)


def test_djolt_learns_distant_lines_behind_discontinuities():
    pf = DJolt(distances=(2,))
    h, stats = bare_hierarchy()
    far = 0x900000
    for _ in range(3):
        pf.on_fetch(
            0x400000, True, h, 0,
            branch_ip=0x400010, branch_type=BranchType.DIRECT_CALL,
            branch_target=0x500000,
        )
        pf.on_fetch(0x500000, True, h, 10)
        pf.on_fetch(far, False, h, 20)  # two fetches after the signature
    h.l1i.invalidate(far)
    pf.on_fetch(
        0x400000, True, h, 100,
        branch_ip=0x400010, branch_type=BranchType.DIRECT_CALL,
        branch_target=0x500000,
    )
    assert h.l1i.present(far)


def test_fnl_footprint_narrows_on_discontinuities():
    pf = FNLMMA()
    h, stats = bare_hierarchy()
    # Line A is always followed by a jump far away: footprint shrinks.
    for _ in range(8):
        pf.on_fetch(0x400000, True, h, 0)
        pf.on_fetch(0x900000, True, h, 10)
    assert pf._footprint.get(0x400000, 99) == 0


def test_fnl_miss_map_chains_misses():
    pf = FNLMMA()
    h, stats = bare_hierarchy()
    a, b = 0x400000, 0x900000
    pf.on_fetch(a, False, h, 0)
    pf.on_fetch(b, False, h, 10)
    assert pf._miss_map.get(a) == b
    h.l1i.invalidate(b)
    pf.on_fetch(a, False, h, 100)
    assert h.l1i.present(b)


def test_barca_replays_region_footprint():
    pf = Barca()
    h, stats = bare_hierarchy()
    region = 0x400000
    touched = [region, region + 3 * LINE_SIZE, region + 5 * LINE_SIZE]
    for line in touched:
        pf.on_fetch(line, True, h, 0)
    for line in touched:
        h.l1i.invalidate(line)
    pf.on_fetch(region, False, h, 100)
    assert h.l1i.present(region + 3 * LINE_SIZE)
    assert h.l1i.present(region + 5 * LINE_SIZE)


def test_pips_scouts_down_learned_path():
    pf = PIPS(scout_depth=3)
    h, stats = bare_hierarchy()
    path = [0x400000, 0x500000, 0x600000, 0x700000]
    for _ in range(4):
        drive(pf, h, path)
    for line in path[1:]:
        h.l1i.invalidate(line)
    pf.on_fetch(path[0], True, h, 500)
    assert h.l1i.present(path[1])
    assert h.l1i.present(path[2])


def test_jip_replays_target_run():
    pf = JIP()
    h, stats = bare_hierarchy()
    target = 0x500000
    run = [target + i * LINE_SIZE for i in range(4)]
    for _ in range(3):
        pf.on_fetch(
            0x400000, True, h, 0,
            branch_ip=0x400020, branch_type=BranchType.DIRECT_JUMP,
            branch_target=target,
        )
        drive(pf, h, run, start=10)
    for line in run:
        h.l1i.invalidate(line)
    pf.on_fetch(
        0x400000, True, h, 500,
        branch_ip=0x400020, branch_type=BranchType.DIRECT_JUMP,
        branch_target=target,
    )
    assert h.l1i.present(run[0])
    assert h.l1i.present(run[2])


def test_mana_records_and_replays_spatial_footprint():
    pf = MANA()
    h, stats = bare_hierarchy()
    trigger = 0x400000
    footprint = [trigger, trigger + 2 * LINE_SIZE, trigger + 4 * LINE_SIZE]
    drive(pf, h, footprint)
    pf.on_fetch(0x900000, True, h, 100)  # leave the region
    for line in footprint[1:]:
        h.l1i.invalidate(line)
    pf.on_fetch(trigger, True, h, 200)
    assert h.l1i.present(footprint[1])
    assert h.l1i.present(footprint[2])


def test_tap_replays_temporal_miss_stream():
    pf = TAP(replay_depth=2)
    h, stats = bare_hierarchy()
    misses = [0x400000, 0x900000, 0xA00000]
    for line in misses:
        pf.on_fetch(line, False, h, 0)
    for line in misses[1:]:
        h.l1i.invalidate(line)
    pf.on_fetch(misses[0], False, h, 100)
    assert h.l1i.present(misses[1])
    assert h.l1i.present(misses[2])


def test_tap_silent_on_hits_beyond_next_line():
    pf = TAP()
    h, stats = bare_hierarchy()
    pf.on_fetch(0x400000, True, h, 0)
    # Only the sequential component fired; no temporal state recorded.
    assert len(pf._stream) == 0
