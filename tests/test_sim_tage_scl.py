"""TAGE-SC-L component tests: loop predictor and statistical corrector."""

import random


from repro.sim.branch import TageSCL, Tage, make_direction_predictor
from repro.sim.branch.tage_scl import LoopPredictor, StatisticalCorrector


def accuracy(predictor, stream):
    correct = 0
    for ip, taken in stream:
        if predictor.predict(ip) == taken:
            correct += 1
        predictor.update(ip, taken)
    return correct / len(stream)


def loop_stream(trips, visits, ip=0x1000):
    stream = []
    for _ in range(visits):
        for i in range(trips):
            stream.append((ip, i < trips - 1))
    return stream


# --------------------------------------------------------------- loop part


def test_loop_predictor_learns_fixed_trip_count():
    loop = LoopPredictor()
    # Train over a few visits of a 5-trip loop.
    for _ in range(5):
        for i in range(5):
            loop.update(0x1000, i < 4)
    # Now it predicts the whole visit including the exit.
    for i in range(5):
        assert loop.predict(0x1000) == (i < 4)
        loop.update(0x1000, i < 4)


def test_loop_predictor_stays_silent_when_unconfident():
    loop = LoopPredictor()
    loop.update(0x1000, True)
    assert loop.predict(0x1000) is None


def test_loop_predictor_resets_on_trip_change():
    loop = LoopPredictor()
    for _ in range(5):
        for i in range(5):
            loop.update(0x1000, i < 4)
    # Trip count changes to 9: confidence collapses, no wrong override.
    for i in range(9):
        loop.update(0x1000, i < 8)
    prediction = loop.predict(0x1000)
    assert prediction is None or prediction is True


def test_loop_predictor_ignores_single_iteration_loops():
    loop = LoopPredictor()
    for _ in range(10):
        loop.update(0x1000, False)  # "loops" of one iteration
    assert loop.predict(0x1000) is None


def test_loop_predictor_table_bound():
    loop = LoopPredictor(table_size=4)
    for pc in range(100):
        loop.update(pc, False)
    assert len(loop._table) <= 4


def test_scl_beats_tage_on_long_fixed_loops():
    """Trip counts beyond per-branch history reach: the L part's job."""
    stream = loop_stream(trips=200, visits=30)
    assert accuracy(TageSCL(), stream) >= accuracy(Tage(), stream)
    assert accuracy(TageSCL(), stream) > 0.99


# ---------------------------------------------------------- corrector part


def test_corrector_learns_to_flip_bad_tage_calls():
    corrector = StatisticalCorrector()
    # TAGE says taken, reality says not-taken, consistently.
    for _ in range(50):
        corrector.update(0x1000, True, False)
    assert corrector.vote(0x1000, True) is False


def test_corrector_defers_when_unconfident():
    corrector = StatisticalCorrector()
    assert corrector.vote(0x1000, True) is True
    assert corrector.vote(0x1000, False) is False


def test_scl_improves_on_noisy_biased_branches():
    rng = random.Random(1)
    stream = [(0x2000, rng.random() < 0.8) for _ in range(6000)]
    assert accuracy(TageSCL(), stream) > accuracy(Tage(), stream)


# ------------------------------------------------------------- composition


def test_registry_builds_tage_scl():
    predictor = make_direction_predictor("tage-sc-l")
    assert isinstance(predictor, TageSCL)


def test_scl_no_worse_on_standard_patterns():
    patterns = [
        [(0x100, i % 2 == 0) for i in range(3000)],  # alternation
        [(0x100, True)] * 3000,  # constant
        loop_stream(trips=4, visits=500),  # short loop
    ]
    for stream in patterns:
        assert accuracy(TageSCL(), stream) >= accuracy(Tage(), stream) - 0.02


def test_scl_in_full_simulation(small_trace):
    from repro.core import Improvement, convert_trace
    from repro.sim import SimConfig, Simulator

    instrs = convert_trace(small_trace, Improvement.ALL)
    from repro.champsim.branch_info import BranchRules

    tage = Simulator(SimConfig.main(direction_predictor="tage")).run(
        instrs, BranchRules.PATCHED
    )
    scl = Simulator(SimConfig.main(direction_predictor="tage-sc-l")).run(
        instrs, BranchRules.PATCHED
    )
    # Same workload, comparable quality (SC-L should not be much worse).
    assert scl.direction_mpki <= tage.direction_mpki * 1.2
