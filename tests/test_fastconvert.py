"""Differential tests: the block fast path vs the per-record converter.

The fast path must be *bit-for-bit* equivalent: identical output bytes
and identical :class:`~repro.core.convert.ConversionStats` for every
golden fixture, every improvement set, and every block size — plus a
property-based corpus of arbitrary valid records.
"""

import glob

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.champsim.trace import encode_instr
from repro.core.convert import Converter
from repro.core.fastconvert import (
    clear_static_memo,
    convert_blocks_to_bytes,
    static_memo_size,
)
from repro.core.improvements import IMPROVEMENT_NAMES, Improvement
from repro.cvp.reader import CvpTraceReader
from repro.experiments.cache import conversion_stats_to_dict

from tests.diffharness import assert_bytes_identical, assert_stats_identical
from tests.test_property_converter import cvp_records, improvement_sets

GOLDEN = sorted(glob.glob("tests/golden/*.cvp.gz"))


def _slow(source, improvements):
    converter = Converter(improvements)
    data = b"".join(encode_instr(i) for i in converter.convert(source))
    return data, conversion_stats_to_dict(converter.stats)


def _fast(source, improvements, block_size):
    converter = Converter(improvements)
    data = b"".join(
        convert_blocks_to_bytes(converter, source, block_size=block_size)
    )
    return data, conversion_stats_to_dict(converter.stats)


@pytest.mark.parametrize("path", GOLDEN)
@pytest.mark.parametrize(
    "name", sorted(IMPROVEMENT_NAMES), ids=lambda n: n.lower()
)
def test_fast_path_matches_slow_path_on_golden(path, name):
    improvements = IMPROVEMENT_NAMES[name]
    with CvpTraceReader(path) as reader:
        slow_bytes, slow_stats = _slow(reader, improvements)
    for block_size in (1, 2, 4093, 4096):
        with CvpTraceReader(path) as reader:
            fast_bytes, fast_stats = _fast(reader, improvements, block_size)
        context = (path, name, block_size)
        assert_bytes_identical(fast_bytes, slow_bytes, context)
        assert_stats_identical(fast_stats, slow_stats, context)


@given(
    records=st.lists(cvp_records(), max_size=60),
    improvements=improvement_sets,
    block_size=st.sampled_from([1, 2, 3, 7, 64]),
)
@settings(max_examples=200, deadline=None)
def test_fast_path_matches_slow_path_on_arbitrary_records(
    records, improvements, block_size
):
    slow_bytes, slow_stats = _slow(list(records), improvements)
    fast_bytes, fast_stats = _fast(list(records), improvements, block_size)
    assert_bytes_identical(fast_bytes, slow_bytes, (improvements, block_size))
    assert_stats_identical(fast_stats, slow_stats, (improvements, block_size))


def test_static_memo_is_shared_and_clearable():
    clear_static_memo()
    assert static_memo_size() == 0
    with CvpTraceReader(GOLDEN[0]) as reader:
        _fast(reader, Improvement.ALL, 4096)
    first = static_memo_size()
    assert first > 0
    # A second conversion of the same trace adds no new entries.
    with CvpTraceReader(GOLDEN[0]) as reader:
        _fast(reader, Improvement.ALL, 4096)
    assert static_memo_size() == first
    # A different improvement set keys separately.
    with CvpTraceReader(GOLDEN[0]) as reader:
        _fast(reader, Improvement.NONE, 4096)
    assert static_memo_size() > first
    clear_static_memo()
    assert static_memo_size() == 0


def test_static_memo_overflow_clears_wholesale(monkeypatch):
    import repro.core.fastconvert as fastconvert

    clear_static_memo()
    monkeypatch.setattr(fastconvert, "STATIC_MEMO_LIMIT", 4)
    with CvpTraceReader(GOLDEN[0]) as reader:
        slow_bytes, _ = _slow(reader, Improvement.ALL)
    with CvpTraceReader(GOLDEN[0]) as reader:
        fast_bytes, _ = _fast(reader, Improvement.ALL, 4096)
    # Fidelity survives constant eviction, and the memo stays bounded
    # (at most limit + 1 entries exist between overflow checks).
    assert_bytes_identical(fast_bytes, slow_bytes, "memo overflow")
    assert static_memo_size() <= 5
    clear_static_memo()


def test_convert_file_block_and_legacy_outputs_identical(tmp_path):
    from repro.core.pipeline import convert_file

    source = GOLDEN[0]
    fast_out = tmp_path / "fast.champsimtrace"
    slow_out = tmp_path / "slow.champsimtrace"
    fast_result = convert_file(source, fast_out, Improvement.ALL)
    slow_result = convert_file(source, slow_out, Improvement.ALL, block_size=0)
    assert_bytes_identical(fast_out.read_bytes(), slow_out.read_bytes())
    assert_stats_identical(
        conversion_stats_to_dict(fast_result.stats),
        conversion_stats_to_dict(slow_result.stats),
    )
    assert fast_result.branch_rules == slow_result.branch_rules


def test_cli_block_size_flag(tmp_path):
    from repro.core.cli import main

    out_fast = tmp_path / "fast.champsimtrace"
    out_slow = tmp_path / "slow.champsimtrace"
    assert main(["-t", GOLDEN[0], "-o", str(out_fast), "-i", "All_imps"]) == 0
    assert (
        main(
            [
                "-t",
                GOLDEN[0],
                "-o",
                str(out_slow),
                "-i",
                "All_imps",
                "--block-size",
                "0",
            ]
        )
        == 0
    )
    assert_bytes_identical(out_fast.read_bytes(), out_slow.read_bytes())
