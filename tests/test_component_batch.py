"""Batched component twins vs their scalar counterparts.

The tentpole contract (``docs/vector_engine.md``): every ``*_batch`` /
``*_run`` component method is bit-identical to the serial per-call
sequence it replaces — same return values, same table/stack/LRU state
afterwards.  This module pins each twin directly (the differential
engine tests only see the composition), plus the machinery the batch
path rides on: stream-purity declarations, the per-columns plan cache,
the component pool, and the observability bypass.
"""

import random

import pytest

from repro.champsim.branch_info import BranchType
from repro.sim import SimConfig, Simulator, columnarize
from repro.sim.branch import make_direction_predictor
from repro.sim.branch.btb import BTB
from repro.sim.branch.ittage import ITTAGE
from repro.sim.branch.ras import ReturnAddressStack
from repro.sim.decoded import DecodedInstr
from repro.sim.engine import Engine
from repro.sim.prefetch import make_data_prefetcher
from repro.sim.prefetch.ipc1 import make_instruction_prefetcher
from repro.sim.prefetch.plan import plan_data_stream, plan_fetch_stream
from repro.sim.vector_engine import VectorEngine

from tests.diffharness import assert_stats_identical

_BRANCH_TYPES = [bt for bt in BranchType if bt is not BranchType.NOT_BRANCH]

DIRECTION_PREDICTORS = [
    "bimodal", "gshare", "tage", "tage-sc-l", "always-taken",
]


def _branch_stream(n=600, seed=1234):
    """Deterministic aliasing-heavy (ip, type, taken, target) columns."""
    rng = random.Random(seed)
    pcs = [0x1000 + k * (4 << 12) for k in range(5)]  # same-row aliases
    ips, types, takens, targets = [], [], [], []
    for i in range(n):
        ip = rng.choice(pcs) + 4 * rng.randrange(4)
        branch_type = rng.choice(_BRANCH_TYPES)
        taken = (
            True
            if branch_type is not BranchType.CONDITIONAL
            else (i // (1 + i % 17)) % 2 == 0
        )
        ips.append(ip)
        types.append(branch_type)
        takens.append(taken)
        targets.append(rng.choice(pcs) if taken else 0)
    return ips, types, takens, targets


def _decoded_stream(n=400, seed=99):
    """A decoded instruction mix for whole-engine tests."""
    rng = random.Random(seed)
    stream = []
    ip = 0x4000
    for _ in range(n):
        branch_type = BranchType.NOT_BRANCH
        taken, target = False, 0
        src_mem = dst_mem = ()
        roll = rng.random()
        if roll < 0.25:
            branch_type = rng.choice(_BRANCH_TYPES)
            taken = branch_type is not BranchType.CONDITIONAL or rng.random() < 0.5
            target = 0x4000 + 4 * rng.randrange(2048) if taken else 0
        elif roll < 0.6:
            src_mem = (rng.randrange(1 << 20),)
        elif roll < 0.8:
            dst_mem = (rng.randrange(1 << 20),)
        stream.append(
            DecodedInstr(
                ip=ip,
                branch_type=branch_type,
                branch_taken=taken,
                target=target,
                src_regs=(1, 2),
                dst_regs=(3,),
                src_mem=src_mem,
                dst_mem=dst_mem,
            )
        )
        ip = target if taken else ip + 4
    return stream


# --------------------------------------------------------------------------
# Per-component twins


@pytest.mark.parametrize("name", DIRECTION_PREDICTORS)
def test_direction_predictor_batch_matches_serial(name):
    ips, types, takens, _ = _branch_stream()
    cond = [
        (ip, taken)
        for ip, bt, taken in zip(ips, types, takens)
        if bt is BranchType.CONDITIONAL
    ]
    serial = make_direction_predictor(name)
    batched = make_direction_predictor(name)
    serial_preds = []
    for ip, taken in cond:
        serial_preds.append(serial.predict(ip))
        serial.update(ip, taken)
    batch_preds = batched.predict_update_batch(
        [ip for ip, _ in cond], [taken for _, taken in cond]
    )
    assert batch_preds == serial_preds
    # Post-state equality: a second pass must predict identically too.
    second_serial = [serial.predict(ip) for ip, _ in cond]
    second_batch = [batched.predict(ip) for ip, _ in cond]
    assert second_batch == second_serial


def test_btb_batch_matches_serial():
    ips, types, takens, targets = _branch_stream()
    serial = BTB(64, 4)  # tiny: forces LRU evictions
    batched = BTB(64, 4)
    serial_entries = []
    for ip, bt, taken, target in zip(ips, types, takens, targets):
        serial_entries.append(serial.lookup(ip))
        if taken:
            serial.install(ip, target, bt)
    batch_entries = batched.lookup_install_batch(ips, takens, targets, types)
    assert batch_entries == serial_entries
    assert batched._sets == serial._sets
    assert [list(s) for s in batched._sets.values()] == [
        list(s) for s in serial._sets.values()
    ]  # identical LRU order, not just contents


def test_ras_batch_matches_serial():
    ips, types, _, _ = _branch_stream()
    serial = ReturnAddressStack(8)  # tiny: forces overflow discards
    batched = ReturnAddressStack(8)
    serial_preds = []
    for ip, bt in zip(ips, types):
        if bt is BranchType.RETURN:
            serial_preds.append(serial.pop())
        else:
            serial_preds.append(None)
            if bt in (BranchType.DIRECT_CALL, BranchType.INDIRECT_CALL):
                serial.push(ip + 4)
    batch_preds = batched.pop_push_batch(types, ips)
    assert batch_preds == serial_preds
    assert batched._stack == serial._stack


def test_ittage_batch_matches_serial():
    ips, types, takens, targets = _branch_stream()
    ind = [
        i
        for i, bt in enumerate(types)
        if bt in (BranchType.INDIRECT, BranchType.INDIRECT_CALL)
    ]
    serial = ITTAGE()
    batched = ITTAGE()
    serial_preds = []
    for i in ind:
        serial_preds.append(serial.predict(ips[i]))
        if takens[i]:
            serial.update(ips[i], targets[i])
    batch_preds = batched.predict_update_batch(
        [ips[i] for i in ind],
        [takens[i] for i in ind],
        [targets[i] for i in ind],
    )
    assert batch_preds == serial_preds
    second_serial = [serial.predict(ips[i]) for i in ind]
    second_batch = [batched.predict(ips[i]) for i in ind]
    assert second_batch == second_serial


def test_flathier_prefetch_runs_match_serial():
    rng = random.Random(7)
    requests = []
    last = None
    for _ in range(300):
        if last is not None and rng.random() < 0.3:
            requests.append(last)  # exercise the duplicate elision
        else:
            last = (rng.randrange(1 << 18), rng.random() < 0.5)
            requests.append(last)
    config = SimConfig.main()
    serial_flat = VectorEngine(config).hierarchy
    batched_flat = VectorEngine(config).hierarchy
    for addr, fill_l1 in requests:
        serial_flat.prefetch_data(addr, now=5, fill_l1=fill_l1)
    batched_flat.prefetch_data_run(requests, now=5)
    assert batched_flat.pf_l1d == serial_flat.pf_l1d
    assert batched_flat.pf_l2 == serial_flat.pf_l2
    assert batched_flat.l1d.sets == serial_flat.l1d.sets
    assert batched_flat.l2.sets == serial_flat.l2.sets

    addrs = [rng.randrange(1 << 18) for _ in range(200)]
    serial_flat = VectorEngine(config).hierarchy
    batched_flat = VectorEngine(config).hierarchy
    for addr in addrs:
        serial_flat.prefetch_instruction(addr, now=9)
    batched_flat.prefetch_instruction_run(addrs, now=9)
    assert batched_flat.pf_l1i == serial_flat.pf_l1i
    assert batched_flat.l1i.sets == serial_flat.l1i.sets
    assert batched_flat.l2.sets == serial_flat.l2.sets


# --------------------------------------------------------------------------
# Stream purity and plan construction


def test_stream_purity_declarations():
    pure = {"Barça", "D-JOLT", "JIP", "MANA", "PIPS"}
    impure = {"EPI", "FNL+MMA", "TAP"}
    for name in pure:
        assert make_instruction_prefetcher(name).stream_pure, name
    for name in impure:
        assert not make_instruction_prefetcher(name).stream_pure, name
    assert make_data_prefetcher("ip_stride", "l1d").stream_pure
    assert make_data_prefetcher("next_line", "l1d").stream_pure


def test_plan_rejects_timing_coupled_prefetchers():
    with pytest.raises(ValueError, match="not stream-pure"):
        plan_fetch_stream(make_instruction_prefetcher("EPI"), [])


def test_data_plan_matches_live_replay():
    rng = random.Random(21)
    ips, addrs = [], []
    for _ in range(250):
        ips.append(0x1000 + 4 * rng.randrange(64))
        addrs.append(rng.randrange(1 << 16))
    planned_pf = make_data_prefetcher("ip_stride", "l1d")
    live_pf = make_data_prefetcher("ip_stride", "l1d")
    plan = plan_data_stream(planned_pf, ips, addrs)

    issued = []

    class Sink:
        def prefetch_data(self, addr, now, fill_l1=False):
            issued.append((addr, fill_l1))

        def prefetch_instruction(self, addr, now):
            raise AssertionError("data prefetcher issued an instruction line")

    sink = Sink()
    for ip, addr in zip(ips, addrs):
        live_pf.on_access(ip, addr, False, sink, 0)
    replayed = [req for reqs in plan if reqs is not None for req in reqs]
    assert replayed == issued


# --------------------------------------------------------------------------
# Component pool


def test_scalar_engine_pool_adoption_is_bit_identical():
    decoded = _decoded_stream()
    config = SimConfig.main()
    first = Engine(config)
    reference = first.run(decoded)
    pool = first.export_pool()
    second = Engine(config, component_pool=pool)
    assert second.direction is pool.direction
    assert second.btb is pool.btb
    assert second.hierarchy is pool.hierarchy
    assert_stats_identical(second.run(decoded), reference, "pooled scalar")


def test_pool_rejected_on_config_or_type_mismatch():
    config = SimConfig.main()
    pool = Engine(config).export_pool()
    other = Engine(SimConfig.main(direction_predictor="gshare"), component_pool=pool)
    assert other.direction is not pool.direction
    vector = VectorEngine(config, component_pool=pool)
    assert vector.direction is not pool.direction  # scalar pool, vector engine


@pytest.mark.parametrize(
    "name", ["EPI", "D-JOLT", "Barça", "FNL+MMA", "JIP", "MANA", "PIPS", "TAP"]
)
def test_ipc1_pool_reset_is_bit_identical(name):
    """Pooled re-runs reset every IPC-1 prefetcher to cold state."""
    decoded = _decoded_stream()
    sim = Simulator(SimConfig.ipc1(l1i_prefetcher=name), engine="vector")
    first = sim.run(decoded)
    second = sim.run(decoded)  # adopts + resets the pooled components
    assert_stats_identical(second, first, name)


@pytest.mark.parametrize("name", DIRECTION_PREDICTORS)
def test_direction_predictor_pool_reset_is_bit_identical(name):
    decoded = _decoded_stream()
    sim = Simulator(
        SimConfig.main(direction_predictor=name), engine="vector"
    )
    first = sim.run(decoded)
    second = sim.run(decoded)
    assert_stats_identical(second, first, name)


def test_simulator_reuses_vector_components_across_runs():
    decoded = _decoded_stream()
    sim = Simulator(SimConfig.main(), engine="vector")
    first = sim.run(decoded)
    pool = sim._component_pool
    assert pool is not None
    second = sim.run(decoded)
    assert sim._component_pool.direction is pool.direction
    assert sim._component_pool.hierarchy is pool.hierarchy
    assert_stats_identical(second, first, "pooled vector re-run")


# --------------------------------------------------------------------------
# Plan cache and the batch on/off switch


def test_plan_cache_populated_and_stable():
    decoded = _decoded_stream()
    config = SimConfig.main()
    columns = columnarize(decoded)
    reference = Engine(config).run(decoded)
    first = VectorEngine(config).run(columns)
    assert columns.plan_cache  # branch plan (at least) was cached
    keys = set(columns.plan_cache)
    second = VectorEngine(config).run(columns)
    assert set(columns.plan_cache) == keys  # hit, not re-keyed
    assert_stats_identical(first, reference, "batched vs scalar")
    assert_stats_identical(second, reference, "plan-cache hit")


def test_batch_components_off_takes_live_path():
    decoded = _decoded_stream()
    config = SimConfig.main()
    columns = columnarize(decoded)
    reference = Engine(config).run(decoded)
    stats = VectorEngine(config, batch_components=False).run(columns)
    assert columns.plan_cache == {}  # the live path never plans
    assert_stats_identical(stats, reference, "batch disabled")


def test_simulator_batch_flag_is_forwarded():
    decoded = _decoded_stream()
    sim = Simulator(SimConfig.main(), engine="vector", batch_components=False)
    baseline = Simulator(SimConfig.main()).run(decoded)
    assert_stats_identical(sim.run(decoded), baseline, "nobatch simulator")
    assert sim._columns_memo[2].plan_cache == {}


# --------------------------------------------------------------------------
# Observability bypass (obs attribution stays per-call)


def test_obs_enabled_run_bypasses_batch_and_attributes(tmp_path):
    import repro.obs as obs
    from repro.obs import events

    from tests.test_obs import _reset_obs

    decoded = _decoded_stream()
    config = SimConfig.main()
    columns = columnarize(decoded)
    reference = Engine(config).run(decoded)
    log = tmp_path / "obs.jsonl"
    _reset_obs()
    try:
        obs.configure(log=log, program="pytest-batch")
        stats = VectorEngine(config).run(columns)
    finally:
        _reset_obs()
    # Instrumented runs take the live per-call path so _TimedCalls can
    # attribute component time; nothing may be planned around them.
    assert columns.plan_cache == {}
    assert_stats_identical(stats, reference, "obs-enabled vector")
    spans = {
        row["name"]
        for row in events.iter_events(log)
        if row["type"] == "span"
    }
    assert "sim.branch" in spans  # per-component attribution survived
