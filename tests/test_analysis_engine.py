"""Engine-level tests: golden traces, improvement ablation, cache, baseline."""

import json
from pathlib import Path

import pytest

from repro.analysis.baseline import (
    load_baseline,
    suppress_report,
    write_baseline,
)
from repro.analysis.cache import LintCache, lint_file_cached, lint_key
from repro.analysis.diagnostics import Severity
from repro.analysis.engine import (
    LintSummary,
    TraceLinter,
    lint_trace_name,
    resolve_branch_rules,
    rule_catalog,
)
from repro.champsim.branch_info import BranchRules
from repro.core.improvements import Improvement

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_TRACES = sorted(
    json.loads((GOLDEN_DIR / "expected.json").read_text())["traces"]
)

#: Each paper improvement, with the rule that must fire when it is
#: disabled (somewhere across the golden fixtures).
IMPROVEMENT_TO_RULE = [
    (Improvement.MEM_REGS, "TL101"),
    (Improvement.BASE_UPDATE, "TL102"),
    (Improvement.MEM_FOOTPRINT, "TL103"),
    (Improvement.CALL_STACK, "TL104"),
    (Improvement.BRANCH_REGS, "TL105"),
    (Improvement.FLAG_REG, "TL106"),
]


def lint_golden(improvements):
    linter = TraceLinter(improvements)
    return [
        linter.lint_file(GOLDEN_DIR / f"{name}.cvp.gz")
        for name in GOLDEN_TRACES
    ]


@pytest.mark.parametrize("name", GOLDEN_TRACES)
def test_golden_traces_lint_clean_with_all_improvements(name):
    linter = TraceLinter(Improvement.ALL)
    report = linter.lint_file(GOLDEN_DIR / f"{name}.cvp.gz")
    assert report.errors == 0, [d.render() for d in report.diagnostics]
    assert report.warnings == 0, [d.render() for d in report.diagnostics]


@pytest.mark.parametrize(
    "improvement,rule_id",
    IMPROVEMENT_TO_RULE,
    ids=[rule for _, rule in IMPROVEMENT_TO_RULE],
)
def test_disabling_an_improvement_fires_its_rule(improvement, rule_id):
    reports = lint_golden(Improvement.ALL & ~improvement)
    fired = set()
    for report in reports:
        fired.update(report.fired_rule_ids())
    assert rule_id in fired
    summary = LintSummary(reports=reports)
    assert summary.exit_code() == 2


def test_no_improvements_fires_every_conversion_rule_family():
    reports = lint_golden(Improvement.NONE)
    fired = set()
    for report in reports:
        fired.update(report.fired_rule_ids())
    # Every Table 1 improvement has material in the fixtures.
    assert {"TL101", "TL102", "TL103", "TL104", "TL105", "TL106"} <= fired


def test_lint_trace_name_synthesises_and_lints():
    report = lint_trace_name("compute_int_1", 600)
    assert report.trace == "compute_int_1"
    assert report.records == 600
    assert report.errors == 0


def test_resolve_branch_rules_auto_tracks_branch_regs():
    assert (
        resolve_branch_rules("auto", Improvement.ALL) is BranchRules.PATCHED
    )
    assert (
        resolve_branch_rules("auto", Improvement.NONE) is BranchRules.ORIGINAL
    )
    assert (
        resolve_branch_rules("original", Improvement.ALL)
        is BranchRules.ORIGINAL
    )


def test_exit_code_reflects_max_severity():
    clean = lint_golden(Improvement.ALL)
    assert LintSummary(reports=clean).exit_code() == 0
    broken = lint_golden(Improvement.NONE)
    assert LintSummary(reports=broken).exit_code() == 2


def test_lint_cache_round_trip(tmp_path):
    cache = LintCache(tmp_path / "cache")
    linter = TraceLinter(Improvement.NONE)
    path = GOLDEN_DIR / f"{GOLDEN_TRACES[0]}.cvp.gz"

    cold = lint_file_cached(linter, path, cache)
    assert not cold.from_cache
    assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)

    warm = lint_file_cached(linter, path, cache)
    assert warm.from_cache
    assert cache.hits == 1
    assert [d.to_dict() for d in warm.diagnostics] == [
        d.to_dict() for d in cold.diagnostics
    ]
    assert warm.rule_ids == cold.rule_ids
    assert warm.improvements == cold.improvements


def test_lint_cache_key_covers_configuration():
    base = lint_key("abc", Improvement.ALL, BranchRules.PATCHED, ("TL001",))
    assert base != lint_key(
        "abc", Improvement.NONE, BranchRules.PATCHED, ("TL001",)
    )
    assert base != lint_key(
        "abc", Improvement.ALL, BranchRules.ORIGINAL, ("TL001",)
    )
    assert base != lint_key(
        "abc", Improvement.ALL, BranchRules.PATCHED, ("TL002",)
    )
    assert base != lint_key(
        "def", Improvement.ALL, BranchRules.PATCHED, ("TL001",)
    )


def test_corrupt_cache_entry_is_a_miss(tmp_path):
    cache = LintCache(tmp_path)
    linter = TraceLinter(Improvement.ALL)
    path = GOLDEN_DIR / f"{GOLDEN_TRACES[0]}.cvp.gz"
    report = lint_file_cached(linter, path, cache)
    entry = next((tmp_path / "lint").rglob("*.json"))
    entry.write_text("{not json")
    again = lint_file_cached(linter, path, cache)
    assert not again.from_cache
    assert again.records == report.records


def test_baseline_suppresses_known_findings(tmp_path):
    no_flag = Improvement.ALL & ~Improvement.FLAG_REG
    reports = lint_golden(no_flag)
    assert LintSummary(reports=reports).exit_code() == 2

    baseline_path = tmp_path / "baseline.json"
    count = write_baseline(baseline_path, reports)
    assert count > 0

    baseline = load_baseline(baseline_path)
    suppressed = [suppress_report(report, baseline) for report in reports]
    assert LintSummary(reports=suppressed).exit_code() == 0
    assert sum(report.suppressed for report in suppressed) > 0
    # A *new* finding (different configuration) still surfaces.
    fresh = lint_golden(Improvement.NONE)
    still = [suppress_report(report, baseline) for report in fresh]
    assert LintSummary(reports=still).exit_code() == 2


def test_baseline_schema_mismatch_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": 999, "findings": {}}))
    with pytest.raises(ValueError):
        load_baseline(path)


def test_rule_catalog_is_complete_and_ordered():
    catalog = rule_catalog()
    ids = [entry["rule_id"] for entry in catalog]
    assert ids == sorted(ids)
    assert {
        "TL001", "TL002", "TL003", "TL004",
        "TL101", "TL102", "TL103", "TL104", "TL105", "TL106",
        "TL201", "TL202",
    } == set(ids)
    for entry in catalog:
        assert entry["title"]
        assert entry["paper_section"]


def test_severity_ordering_and_labels():
    assert Severity.ERROR > Severity.WARNING > Severity.INFO
    assert Severity.from_label("warning") is Severity.WARNING
    with pytest.raises(ValueError):
        Severity.from_label("nope")
