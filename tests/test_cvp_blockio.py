"""Block-based CVP-1 decode/encode vs the per-record reference path."""

import glob
import gzip
import io

import pytest

from repro.cvp.blockio import (
    DEFAULT_BLOCK_SIZE,
    encode_block,
    iter_record_blocks,
)
from repro.cvp.encoding import TraceFormatError, encode_record
from repro.cvp.reader import CvpTraceReader
from repro.cvp.writer import CvpTraceWriter

from tests.conftest import alu, branch, load, store

GOLDEN = sorted(glob.glob("tests/golden/*.cvp.gz"))


def _golden_bytes(path):
    with gzip.open(path, "rb") as handle:
        return handle.read()


def _records_per_record(path):
    with CvpTraceReader(path) as reader:
        return list(reader)


@pytest.mark.parametrize("path", GOLDEN)
@pytest.mark.parametrize("block_size", [1, 2, 7, 4093, DEFAULT_BLOCK_SIZE])
def test_blocks_equal_per_record_decode(path, block_size):
    """Concatenated blocks == the per-record decode, at every block size."""
    reference = _records_per_record(path)
    blocks = list(
        iter_record_blocks(io.BytesIO(_golden_bytes(path)), block_size)
    )
    flat = [record for block in blocks for record in block]
    assert flat == reference
    # Every block except the last is exactly block_size records.
    for block in blocks[:-1]:
        assert len(block) == block_size
    assert blocks and 0 < len(blocks[-1]) <= block_size


def test_golden_set_includes_cacheline_crossing_fixture():
    assert any(path.endswith("srv_24.cvp.gz") for path in GOLDEN)


def test_reader_blocks_api_matches_iteration():
    """CvpTraceReader.blocks yields the same records the iterator does."""
    path = GOLDEN[0]
    reference = _records_per_record(path)
    with CvpTraceReader(path) as reader:
        flat = [record for block in reader.blocks(16) for record in block]
    assert flat == reference


def test_reader_blocks_over_in_memory_records():
    records = [alu(pc=0x100 + 4 * i) for i in range(10)]
    reader = CvpTraceReader(records)
    blocks = list(reader.blocks(4))
    assert [len(b) for b in blocks] == [4, 4, 2]
    assert [r for b in blocks for r in b] == records


def test_blocks_rejects_nonpositive_block_size():
    with pytest.raises(ValueError):
        list(iter_record_blocks(io.BytesIO(b""), 0))


class Dribble(io.RawIOBase):
    """A stream that returns at most ``chunk`` bytes per read."""

    def __init__(self, data, chunk=13):
        self._data = data
        self._off = 0
        self._chunk = chunk

    def readable(self):
        return True

    def read(self, size=-1):
        take = self._chunk if size < 0 else min(size, self._chunk)
        piece = self._data[self._off : self._off + take]
        self._off += len(piece)
        return piece


def test_decoding_survives_short_reads():
    data = _golden_bytes(GOLDEN[0])
    reference = _records_per_record(GOLDEN[0])
    flat = [
        record
        for block in iter_record_blocks(Dribble(data), 5)
        for record in block
    ]
    assert flat == reference


def test_truncated_stream_raises_trace_format_error():
    data = _golden_bytes(GOLDEN[0])
    with pytest.raises(TraceFormatError):
        list(iter_record_blocks(io.BytesIO(data[:-3]), 8))


def test_invalid_class_raises_trace_format_error():
    bad = (0x1234).to_bytes(8, "little") + bytes([99])
    with pytest.raises(TraceFormatError):
        list(iter_record_blocks(io.BytesIO(bad), 8))


def test_out_of_range_register_raises_like_constructor():
    record = alu(srcs=(2, 3), dsts=(1,))
    raw = bytearray(encode_record(record))
    assert raw[9] == 2  # source count, right after pc(8) + class(1)
    raw[10] = 77  # first source register, patched out of range (>= 64)
    with pytest.raises(ValueError):
        list(iter_record_blocks(io.BytesIO(bytes(raw)), 8))


def test_encode_block_matches_per_record_encoding():
    records = [
        alu(pc=0x100),
        load(pc=0x104, dsts=(1, 2), values=(5, 6)),
        store(pc=0x108),
        branch(pc=0x10C, taken=True, target=0x200),
        branch(pc=0x110, taken=False, target=None),
        alu(pc=0x114, dsts=(40,), values=((1 << 127) | 3,)),  # SIMD dest
    ]
    assert encode_block(records) == b"".join(
        encode_record(r) for r in records
    )


def test_writer_write_all_round_trips(tmp_path):
    records = [alu(pc=0x100 + 4 * i, dsts=(i % 8,)) for i in range(300)]
    path = tmp_path / "trace.cvp.gz"
    with CvpTraceWriter(path) as writer:
        writer.write_all(records, block_size=64)
    with CvpTraceReader(path) as reader:
        assert list(reader) == records
