"""Target-prediction structure tests: BTB, RAS, ITTAGE."""

import pytest

from repro.champsim.branch_info import BranchType
from repro.sim.branch import BTB, ITTAGE, ReturnAddressStack


# ---------------------------------------------------------------------- BTB


def test_btb_miss_then_hit():
    btb = BTB(entries=64, ways=4)
    assert btb.lookup(0x1000) is None
    btb.install(0x1000, 0x2000, BranchType.DIRECT_JUMP)
    assert btb.lookup(0x1000) == (0x2000, BranchType.DIRECT_JUMP)


def test_btb_update_existing_entry():
    btb = BTB(entries=64, ways=4)
    btb.install(0x1000, 0x2000, BranchType.INDIRECT)
    btb.install(0x1000, 0x3000, BranchType.INDIRECT)
    assert btb.lookup(0x1000)[0] == 0x3000


def test_btb_lru_eviction():
    btb = BTB(entries=8, ways=2)  # 4 sets
    sets = 4
    base = 0x1000
    conflicting = [base + i * 4 * sets for i in range(3)]  # same set
    btb.install(conflicting[0], 1, BranchType.DIRECT_JUMP)
    btb.install(conflicting[1], 2, BranchType.DIRECT_JUMP)
    btb.lookup(conflicting[0])  # touch: 1 becomes MRU
    btb.install(conflicting[2], 3, BranchType.DIRECT_JUMP)  # evicts 2
    assert btb.lookup(conflicting[0]) is not None
    assert btb.lookup(conflicting[1]) is None
    assert btb.lookup(conflicting[2]) is not None


def test_btb_requires_divisible_geometry():
    with pytest.raises(ValueError):
        BTB(entries=10, ways=4)


def test_btb_default_geometry_is_papers():
    btb = BTB()
    assert btb._num_sets * btb._ways == 16384


# ---------------------------------------------------------------------- RAS


def test_ras_lifo_order():
    ras = ReturnAddressStack(size=8)
    ras.push(0x100)
    ras.push(0x200)
    assert ras.pop() == 0x200
    assert ras.pop() == 0x100


def test_ras_empty_pop_is_none():
    assert ReturnAddressStack().pop() is None


def test_ras_overflow_drops_oldest():
    ras = ReturnAddressStack(size=2)
    ras.push(1)
    ras.push(2)
    ras.push(3)
    assert ras.pop() == 3
    assert ras.pop() == 2
    assert ras.pop() is None


def test_ras_misclassified_call_desynchronises_stack():
    """The paper's call-stack bug in miniature.

    A call typed as a return *pops* instead of pushing: its own target is
    mispredicted and the genuine return above it now sees the wrong
    entry.
    """
    ras = ReturnAddressStack()
    ras.push(0xAAA4)  # genuine call A
    # BLR X30 typed as return: pops A's return address...
    assert ras.pop() == 0xAAA4  # ...and predicts it as the call's target
    # Genuine return from A now finds an empty stack.
    assert ras.pop() is None


def test_ras_clear():
    ras = ReturnAddressStack()
    ras.push(1)
    ras.clear()
    assert len(ras) == 0


# ------------------------------------------------------------------- ITTAGE


def test_ittage_learns_stable_target():
    ittage = ITTAGE()
    for _ in range(10):
        ittage.update(0x1000, 0x4000)
    assert ittage.predict(0x1000) == 0x4000


def test_ittage_cold_miss_is_none():
    assert ITTAGE().predict(0x9999) is None


def test_ittage_learns_history_correlated_targets():
    """Target alternates with the path: ITTAGE should exceed last-target."""
    ittage = ITTAGE()
    targets = [0x4000, 0x5000]
    correct = 0
    total = 0
    for i in range(4000):
        # Two different call paths lead to two different targets.
        path_marker = 0x100 if i % 2 == 0 else 0x200
        ittage.update(0x50, path_marker)  # drive path history
        predicted = ittage.predict(0x1000)
        actual = targets[i % 2]
        if i > 500:
            total += 1
            correct += predicted == actual
        ittage.update(0x1000, actual)
    assert correct / total > 0.8


def test_ittage_adapts_to_target_change():
    ittage = ITTAGE()
    for _ in range(5):
        ittage.update(0x1000, 0x4000)
    for _ in range(20):
        ittage.update(0x1000, 0x8000)
    assert ittage.predict(0x1000) == 0x8000
