"""Static program-model tests."""

from repro.synth.profiles import profile_for_trace
from repro.synth.program import (
    CODE_BASE,
    build_program,
)


def program(name="compute_int_2"):
    return build_program(profile_for_trace(name))


def test_program_is_deterministic():
    a, b = program(), program()
    assert len(a.functions) == len(b.functions)
    for fa, fb in zip(a.functions, b.functions):
        assert [blk.terminator for blk in fa.blocks] == [
            blk.terminator for blk in fb.blocks
        ]
        assert [blk.body for blk in fa.blocks] == [blk.body for blk in fb.blocks]


def test_layout_is_contiguous_and_non_overlapping():
    prog = program()
    for func in range(len(prog.functions) - 1):
        end_of_func = prog.block_start(func, len(prog.functions[func].blocks))
        assert end_of_func == prog.function_entry(func + 1)


def test_terminator_sits_before_next_block():
    prog = program()
    assert prog.terminator_pc(0, 0) + 4 == prog.block_start(0, 1)


def test_body_pcs_within_block():
    prog = program()
    blocks = prog.functions[0].blocks
    for slot in range(len(blocks[0].body)):
        pc = prog.body_pc(0, 0, slot, 1)
        assert prog.block_start(0, 0) <= pc < prog.setup_pc(0, 0, 0)


def test_setup_pcs_between_body_and_terminator():
    prog = program()
    assert prog.setup_pc(0, 0, 0) >= prog.block_start(0, 0)
    assert prog.setup_pc(0, 0, 2) < prog.terminator_pc(0, 0)


def test_code_base():
    assert program().function_entry(0) == CODE_BASE


def test_dispatcher_calls_out_from_every_nonfinal_block():
    prog = program("srv_5")
    dispatcher = prog.functions[0]
    for block in dispatcher.blocks[:-1]:
        assert block.terminator.kind == "call"


def test_last_block_returns():
    prog = program()
    for func in prog.functions:
        assert func.blocks[-1].terminator.kind == "ret"


def test_skip_terminators_never_jump_past_function():
    prog = program("srv_5")
    for func in prog.functions:
        num_blocks = len(func.blocks)
        for idx, block in enumerate(func.blocks):
            if block.terminator.kind == "skip":
                assert idx + 2 <= num_blocks - 1


def test_indirect_targets_exclude_dispatcher():
    prog = program("srv_5")
    assert 0 not in prog.indirect_targets
    assert prog.indirect_targets  # non-empty


def test_chase_ring_nodes_far_apart():
    """Nodes must never be mistaken for base updates (|delta| > 512)."""
    prog = program("compute_int_2")
    ring = sorted(prog.chase_ring)
    assert all(b - a > 512 for a, b in zip(ring, ring[1:]))


def test_affected_program_contains_x30_call_sites():
    prog = build_program(profile_for_trace("srv_3"))
    forms = [
        blk.terminator.form
        for func in prog.functions
        for blk in func.blocks
        if blk.terminator.kind == "call"
    ]
    assert "indirect_x30" in forms
