"""Sweep-journal tests: checkpoint, resume, and damage tolerance.

The resume contract (``repro-experiment --resume``) is that a sweep
killed at N% replays its completed tasks from the journal — zero
re-simulations — and that a damaged journal line costs exactly one
re-run, never a wrong value and never a crash.
"""

from __future__ import annotations

import json

import pytest

from repro.core.improvements import Improvement
from repro.experiments.cache import run_key
from repro.experiments.journal import JOURNAL_SCHEMA, SweepJournal
from repro.experiments.runner import ExperimentRunner
from repro.sim.config import SimConfig

INSTRUCTIONS = 800
NAMES = ["srv_0", "crypto_1"]


@pytest.fixture(scope="module")
def sample_results():
    runner = ExperimentRunner(instructions=INSTRUCTIONS)
    return {
        name: runner.run(name, Improvement.NONE) for name in NAMES
    }


def _key(name):
    return run_key(name, Improvement.NONE, SimConfig.main(), INSTRUCTIONS)


# ----------------------------------------------------------------------
# record / resume round-trip
# ----------------------------------------------------------------------


def test_record_and_resume_round_trip(tmp_path, sample_results):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        for name, result in sample_results.items():
            journal.record(_key(name), result)
        assert len(journal) == len(NAMES)

    with SweepJournal(path, resume=True) as resumed:
        assert len(resumed) == len(NAMES)
        for name, result in sample_results.items():
            assert resumed.lookup(_key(name)) == result
        assert resumed.lookup("absent-key") is None


def test_fresh_journal_truncates_previous_run(tmp_path, sample_results):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.record(_key(NAMES[0]), sample_results[NAMES[0]])
    with SweepJournal(path) as journal:  # resume=False: start over
        assert len(journal) == 0
    with SweepJournal(path, resume=True) as resumed:
        assert len(resumed) == 0


def test_record_is_idempotent_per_key(tmp_path, sample_results):
    path = tmp_path / "sweep.jsonl"
    result = sample_results[NAMES[0]]
    with SweepJournal(path) as journal:
        journal.record(_key(NAMES[0]), result)
        journal.record(_key(NAMES[0]), result)
    lines = path.read_text().splitlines()
    assert len(lines) == 2  # meta + one entry, not two


# ----------------------------------------------------------------------
# damage tolerance
# ----------------------------------------------------------------------


def test_torn_final_line_is_skipped(tmp_path, sample_results):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        for name, result in sample_results.items():
            journal.record(_key(name), result)
    text = path.read_text()
    # Simulate a mid-append kill: cut the last line in half.
    path.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
    with SweepJournal(path, resume=True) as resumed:
        assert len(resumed) == len(NAMES) - 1
        assert resumed.lookup(_key(NAMES[0])) == sample_results[NAMES[0]]


def test_tampered_entry_digest_is_skipped(tmp_path, sample_results):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        for name, result in sample_results.items():
            journal.record(_key(name), result)
    lines = path.read_text().splitlines()
    entry = json.loads(lines[1])
    entry["result"]["stats"]["instructions"] += 1  # silent value change
    lines[1] = json.dumps(entry, sort_keys=True)
    path.write_text("\n".join(lines) + "\n")
    with SweepJournal(path, resume=True) as resumed:
        # The tampered entry is re-run, never replayed as a wrong value.
        assert resumed.lookup(json.loads(lines[1])["key"]) is None
        assert len(resumed) == len(NAMES) - 1


def test_schema_mismatch_drops_whole_journal(tmp_path, sample_results):
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.record(_key(NAMES[0]), sample_results[NAMES[0]])
    lines = path.read_text().splitlines()
    meta = json.loads(lines[0])
    meta["schema"] = JOURNAL_SCHEMA + 1
    lines[0] = json.dumps(meta)
    path.write_text("\n".join(lines) + "\n")
    with SweepJournal(path, resume=True) as resumed:
        assert len(resumed) == 0


def test_garbage_journal_resumes_empty(tmp_path):
    path = tmp_path / "sweep.jsonl"
    path.write_bytes(b"\xff\xfe not a journal \x00")
    with SweepJournal(path, resume=True) as resumed:
        assert len(resumed) == 0


# ----------------------------------------------------------------------
# runner integration: resume replays zero completed tasks
# ----------------------------------------------------------------------


@pytest.mark.parametrize("jobs", [1, 2])
def test_resume_replays_zero_completed_tasks(jobs, tmp_path, sample_results):
    path = tmp_path / "sweep.jsonl"
    specs = [(name, Improvement.NONE, None) for name in NAMES]
    with SweepJournal(path) as journal:
        first_runner = ExperimentRunner(
            instructions=INSTRUCTIONS, journal=journal
        )
        first = first_runner.run_batch(specs, jobs=jobs)
    assert first_runner.simulations == len(NAMES)

    with SweepJournal(path, resume=True) as journal:
        second_runner = ExperimentRunner(
            instructions=INSTRUCTIONS, journal=journal
        )
        second = second_runner.run_batch(specs, jobs=jobs)
    assert second_runner.simulations == 0
    assert [r.stats for r in second] == [r.stats for r in first]
    assert [r.stats for r in first] == [
        sample_results[name].stats for name in NAMES
    ]


def test_partial_journal_reruns_only_missing(tmp_path, sample_results):
    """A sweep killed halfway re-runs exactly the unjournalled tasks."""
    path = tmp_path / "sweep.jsonl"
    with SweepJournal(path) as journal:
        journal.record(_key(NAMES[0]), sample_results[NAMES[0]])

    specs = [(name, Improvement.NONE, None) for name in NAMES]
    with SweepJournal(path, resume=True) as journal:
        runner = ExperimentRunner(instructions=INSTRUCTIONS, journal=journal)
        results = runner.run_batch(specs, jobs=1)
    assert runner.simulations == 1  # only the missing task
    assert [r.stats for r in results] == [
        sample_results[name].stats for name in NAMES
    ]
