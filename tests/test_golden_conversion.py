"""Golden-trace regression tests for the converter.

``tests/golden/`` checks in tiny synthesized CVP-1 inputs together with
the SHA-256 of their expected (uncompressed) ChampSim output streams and
the full conversion statistics, for three pinned improvement sets.  Any
converter refactor — including routing through the parallel suite path —
that silently changes output bytes or stats fails here, byte for byte.

To update after an *intentional* semantic change::

    PYTHONPATH=src python tests/golden/regen.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.champsim.trace import encode_instr, read_champsim_trace
from repro.core.convert import Converter
from repro.core.improvements import IMPROVEMENT_NAMES
from repro.core.pipeline import convert_file
from repro.cvp.reader import CvpTraceReader
from repro.experiments.cache import conversion_stats_to_dict
from repro.synth.generator import GENERATOR_VERSION, make_trace

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
EXPECTED = json.loads((GOLDEN_DIR / "expected.json").read_text())

_CASES = [
    (trace, label)
    for trace, entry in sorted(EXPECTED["traces"].items())
    for label in sorted(entry["conversions"])
]


def _stream_digest_and_stats(cvp_path, improvements):
    converter = Converter(improvements)
    digest = hashlib.sha256()
    count = 0
    with CvpTraceReader(cvp_path) as reader:
        for instr in converter.convert(reader):
            digest.update(encode_instr(instr))
            count += 1
    return digest.hexdigest(), count, converter


def test_generator_version_matches_fixtures():
    """Fixtures were generated at this GENERATOR_VERSION.

    If this fails you bumped the generator without regenerating the
    golden inputs (or vice versa) — rerun ``tests/golden/regen.py``.
    """
    assert EXPECTED["generator_version"] == GENERATOR_VERSION


@pytest.mark.parametrize("trace,label", _CASES)
def test_conversion_output_digest_is_pinned(trace, label):
    expected = EXPECTED["traces"][trace]["conversions"][label]
    digest, count, converter = _stream_digest_and_stats(
        GOLDEN_DIR / f"{trace}.cvp.gz", IMPROVEMENT_NAMES[label]
    )
    assert digest == expected["output_sha256"], (
        f"{trace}/{label}: converter output drifted from the golden "
        f"digest — if intentional, rerun tests/golden/regen.py"
    )
    assert count == expected["instructions_out"]
    assert converter.required_branch_rules.value == expected["branch_rules"]


@pytest.mark.parametrize("trace,label", _CASES)
def test_conversion_stats_are_pinned(trace, label):
    expected = EXPECTED["traces"][trace]["conversions"][label]
    _, _, converter = _stream_digest_and_stats(
        GOLDEN_DIR / f"{trace}.cvp.gz", IMPROVEMENT_NAMES[label]
    )
    assert conversion_stats_to_dict(converter.stats) == expected["stats"]


@pytest.mark.parametrize("trace", sorted(EXPECTED["traces"]))
def test_file_conversion_path_matches_stream_digest(trace, tmp_path):
    """convert_file (the suite/parallel path) emits the same bytes."""
    expected = EXPECTED["traces"][trace]["conversions"]["All_imps"]
    out = tmp_path / f"{trace}.champsimtrace"
    convert_file(
        GOLDEN_DIR / f"{trace}.cvp.gz", out, IMPROVEMENT_NAMES["All_imps"]
    )
    digest = hashlib.sha256()
    for instr in read_champsim_trace(out):
        digest.update(encode_instr(instr))
    assert digest.hexdigest() == expected["output_sha256"]


@pytest.mark.parametrize("trace", sorted(EXPECTED["traces"]))
def test_generator_reproduces_fixture_inputs(trace):
    """make_trace still regenerates the checked-in CVP records exactly.

    This separates converter drift from generator drift: if this fails,
    the *generator* changed (bump GENERATOR_VERSION and regenerate); if
    only the digest tests fail, the *converter* changed.
    """
    from repro.cvp.reader import read_trace

    instructions = EXPECTED["traces"][trace]["instructions"]
    assert (
        make_trace(trace, instructions)
        == read_trace(GOLDEN_DIR / f"{trace}.cvp.gz")
    )
