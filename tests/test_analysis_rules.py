"""Per-rule unit tests: hand-built records violating each invariant."""

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import TraceLinter
from repro.analysis.rules import resolve_rules
from repro.core.improvements import Improvement
from repro.cvp.isa import InstClass, LINK_REGISTER

from tests.conftest import alu, blr_x30, branch, load, ret, store


def lint(records, rule, improvements=Improvement.ALL, branch_rules="auto"):
    """Run exactly one rule over an in-memory record stream."""
    linter = TraceLinter(
        improvements,
        rules=resolve_rules(select=[rule]),
        branch_rules=branch_rules,
    )
    return linter.lint_records(records).diagnostics


def rule_ids(diagnostics):
    return {d.rule_id for d in diagnostics}


# --- TL001: register-count plausibility ---------------------------------


def test_tl001_cond_branch_with_destination():
    rec = branch(srcs=(3,), dsts=(5,), values=(1,))
    diags = lint([rec], "TL001")
    assert rule_ids(diags) == {"TL001"}
    assert diags[0].severity is Severity.ERROR


def test_tl001_indirect_branch_without_source():
    rec = branch(cls=InstClass.UNCOND_INDIRECT_BRANCH, srcs=())
    diags = lint([rec], "TL001")
    assert any(d.severity is Severity.ERROR for d in diags)


def test_tl001_store_without_sources():
    diags = lint([store(srcs=())], "TL001")
    assert rule_ids(diags) == {"TL001"}


def test_tl001_direct_branch_writing_non_link_register():
    rec = branch(
        cls=InstClass.UNCOND_DIRECT_BRANCH, dsts=(7,), values=(0x1004,)
    )
    diags = lint([rec], "TL001")
    assert rule_ids(diags) == {"TL001"}


def test_tl001_clean_records():
    records = [
        alu(),
        load(),
        store(),
        branch(srcs=(3,)),
        ret(),
        branch(
            cls=InstClass.UNCOND_DIRECT_BRANCH,
            dsts=(LINK_REGISTER,),
            values=(0x1004,),
        ),
    ]
    assert lint(records, "TL001") == []


# --- TL002: transfer size / effective address ---------------------------


def test_tl002_zero_transfer_size():
    diags = lint([load(size=0)], "TL002")
    assert rule_ids(diags) == {"TL002"}


def test_tl002_oversized_load():
    diags = lint([load(size=32)], "TL002")
    assert any(d.severity is Severity.ERROR for d in diags)


def test_tl002_dc_zva_store_size_is_legal():
    # 64B stores are DC ZVA, not an oversized transfer.
    assert lint([store(size=64, address=0x2000)], "TL002") == []


def test_tl002_unaligned_dc_zva_is_informational():
    diags = lint([store(size=64, address=0x2010)], "TL002")
    assert [d.severity for d in diags] == [Severity.INFO]


def test_tl002_null_address_warns():
    diags = lint([store(address=0)], "TL002")
    assert [d.severity for d in diags] == [Severity.WARNING]


# --- TL003: PC validity -------------------------------------------------


def test_tl003_unaligned_pc():
    diags = lint([alu(pc=0x1002)], "TL003")
    assert rule_ids(diags) == {"TL003"}


def test_tl003_null_pc():
    diags = lint([alu(pc=0)], "TL003")
    assert rule_ids(diags) == {"TL003"}


def test_tl003_unaligned_branch_target():
    diags = lint([branch(srcs=(3,), taken=True, target=0x4002)], "TL003")
    assert rule_ids(diags) == {"TL003"}


# --- TL004: control-flow continuity -------------------------------------


def test_tl004_taken_branch_not_followed_by_target():
    records = [
        branch(pc=0x1000, srcs=(3,), taken=True, target=0x4000),
        alu(pc=0x5000),
    ]
    diags = lint(records, "TL004")
    assert rule_ids(diags) == {"TL004"}
    assert diags[0].index == 1


def test_tl004_untaken_branch_must_fall_through():
    records = [
        branch(pc=0x1000, srcs=(3,), taken=False),
        alu(pc=0x1010),
    ]
    assert rule_ids(lint(records, "TL004")) == {"TL004"}


def test_tl004_correct_continuations_are_clean():
    records = [
        branch(pc=0x1000, srcs=(3,), taken=True, target=0x4000),
        alu(pc=0x4000),
        branch(pc=0x4004, srcs=(3,), taken=False),
        alu(pc=0x4008),
        # Non-branch records carry no continuity guarantee (CVP-1 elides
        # instructions), so a gap after an ALU is fine.
        alu(pc=0x9000),
    ]
    assert lint(records, "TL004") == []


# --- TL101: mem-regs ----------------------------------------------------


def test_tl101_dropped_load_destination_without_mem_regs():
    rec = load(dsts=(1, 2), srcs=(5,))
    no_imp = Improvement.ALL & ~Improvement.MEM_REGS
    diags = lint([rec], "TL101", improvements=no_imp)
    assert rule_ids(diags) == {"TL101"}
    assert lint([rec], "TL101") == []


def test_tl101_forged_x0_on_destinationless_store():
    rec = store(srcs=(1, 2))
    no_imp = Improvement.ALL & ~Improvement.MEM_REGS
    diags = lint([rec], "TL101", improvements=no_imp)
    assert any("forged" in d.message for d in diags)
    assert lint([rec], "TL101") == []


# --- TL102: base-update -------------------------------------------------


def post_index_load(pc=0x1000, base=5, dst=1, address=0x2000, step=8):
    """``LDR X1, [X5], #8``: base written with address + step."""
    return load(
        pc=pc,
        dsts=(dst, base),
        srcs=(base,),
        values=(0xBEEF, address + step),
        address=address,
    )


def test_tl102_base_update_not_split():
    no_imp = Improvement.ALL & ~Improvement.BASE_UPDATE
    diags = lint([post_index_load()], "TL102", improvements=no_imp)
    assert rule_ids(diags) == {"TL102"}
    assert lint([post_index_load()], "TL102") == []


# --- TL103: mem-footprint -----------------------------------------------


def test_tl103_cacheline_crossing_access():
    rec = load(address=0x203C, size=8)  # spans lines 0x2000 and 0x2040
    no_imp = Improvement.ALL & ~Improvement.MEM_FOOTPRINT
    diags = lint([rec], "TL103", improvements=no_imp)
    assert rule_ids(diags) == {"TL103"}
    assert lint([rec], "TL103") == []


def test_tl103_unaligned_dc_zva():
    rec = store(address=0x2010, size=64, srcs=(1,))
    no_imp = Improvement.ALL & ~Improvement.MEM_FOOTPRINT
    diags = lint([rec], "TL103", improvements=no_imp)
    assert any("DC ZVA" in d.message for d in diags)
    assert lint([rec], "TL103") == []


# --- TL104: call-stack --------------------------------------------------


def test_tl104_blr_x30_converted_as_return():
    no_imp = Improvement.ALL & ~Improvement.CALL_STACK
    diags = lint([blr_x30()], "TL104", improvements=no_imp)
    assert rule_ids(diags) == {"TL104"}
    assert lint([blr_x30()], "TL104") == []


def test_tl104_true_return_stays_clean():
    assert lint([ret()], "TL104") == []


# --- TL105: branch-regs -------------------------------------------------


def test_tl105_severed_conditional_branch_dependency():
    rec = branch(srcs=(3,))
    no_imp = Improvement.ALL & ~Improvement.BRANCH_REGS
    diags = lint([rec], "TL105", improvements=no_imp)
    assert rule_ids(diags) == {"TL105"}
    assert lint([rec], "TL105") == []


def test_tl105_indirect_branch_sources():
    rec = branch(cls=InstClass.UNCOND_INDIRECT_BRANCH, srcs=(9,))
    no_imp = Improvement.ALL & ~Improvement.BRANCH_REGS
    diags = lint([rec], "TL105", improvements=no_imp)
    assert rule_ids(diags) == {"TL105"}
    assert lint([rec], "TL105") == []


# --- TL106: flag-reg ----------------------------------------------------


def test_tl106_destinationless_compare_without_flags():
    rec = alu(dsts=(), srcs=(1, 2), values=())
    no_imp = Improvement.ALL & ~Improvement.FLAG_REG
    diags = lint([rec], "TL106", improvements=no_imp)
    assert rule_ids(diags) == {"TL106"}
    assert lint([rec], "TL106") == []


# --- TL201/TL202: ChampSim branch-type deduction ------------------------


def test_tl201_conditional_needs_patched_rules():
    # Register-form conditional branches (cbz) under BRANCH_REGS need the
    # paper's patched deduction rules; the original rules mistype them.
    rec = branch(srcs=(3,))
    diags = lint([rec], "TL201", branch_rules="original")
    assert rule_ids(diags) == {"TL201"}
    assert lint([rec], "TL201", branch_rules="auto") == []


def test_tl202_blr_x30_categorised_wrong_without_call_stack():
    no_imp = Improvement.ALL & ~Improvement.CALL_STACK
    diags = lint([blr_x30()], "TL202", improvements=no_imp)
    assert rule_ids(diags) == {"TL202"}
    assert lint([blr_x30()], "TL202") == []


# --- Diagnostic plumbing ------------------------------------------------


def test_diagnostic_roundtrip_and_fingerprint():
    diag = Diagnostic(
        rule_id="TL001",
        severity=Severity.WARNING,
        trace="srv_3",
        index=7,
        pc=0x1234,
        message="something",
    )
    again = Diagnostic.from_dict(diag.to_dict())
    assert again == diag
    # The fingerprint ignores the index, so re-recording a trace with a
    # different budget keeps baselines stable.
    moved = Diagnostic.from_dict({**diag.to_dict(), "index": 99})
    assert moved.fingerprint() == diag.fingerprint()
    assert "TL001 warning" in diag.render()


def test_rule_selection_prefixes():
    assert {r.rule_id for r in resolve_rules(select=["TL1"])} == {
        "TL101", "TL102", "TL103", "TL104", "TL105", "TL106"
    }
    ids = {r.rule_id for r in resolve_rules(ignore=["TL2"])}
    assert "TL201" not in ids and "TL001" in ids
    try:
        resolve_rules(select=["TL9"])
    except ValueError as exc:
        assert "TL9" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("unknown prefix must raise")
