"""Differential tier: the vector engine vs the scalar reference engine.

The vector engine's contract is *bit-identical* :class:`SimStats` — not
statistically close, equal on every counter — for any decoded stream and
any configuration.  This module pins that contract three ways:

- every golden fixture under a configuration sweep covering each
  direction predictor, the indirect-predictor fallback, every IPC-1
  instruction prefetcher, both data prefetchers on and off, cache-size
  extremes, PRF/ROB/width pressure, FDIP on/off and warm-up fractions
  including the degenerate 100%;
- hypothesis-generated decoded streams whose IP walks deliberately land
  on cacheline boundaries (the fetch stage's segment breaks), mix
  loads/stores/branches, and revisit hot lines — replayed under a
  rotating subset of the configurations;
- the engine's alternate input forms (raw records, decoded rows,
  pre-built columns) and the simulator's columnar memo, which must all
  produce the same statistics.

Failures report per-counter diffs via :mod:`tests.diffharness`.
"""

import glob

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.champsim.branch_info import BranchRules, BranchType
from repro.core.convert import Converter
from repro.core.improvements import Improvement
from repro.cvp.reader import CvpTraceReader
from repro.sim import SimConfig, Simulator, columnarize, make_engine
from repro.sim.decoded import DecodedInstr, decode_trace
from repro.sim.engine import Engine
from repro.sim.vector_engine import VectorEngine

from tests.diffharness import assert_stats_identical

GOLDEN = sorted(glob.glob("tests/golden/*.cvp.gz"))

_KB = 1024

#: (id, config) pairs spanning every pluggable component and the sizing
#: extremes.  Golden fixtures are a few hundred instructions, so the
#: whole cross product stays cheap.
CONFIGS = [
    ("main", SimConfig.main()),
    ("ipc1", SimConfig.ipc1()),
    ("bimodal", SimConfig.main(direction_predictor="bimodal")),
    ("gshare", SimConfig.main(direction_predictor="gshare")),
    ("tage-sc-l", SimConfig.main(direction_predictor="tage-sc-l")),
    ("always-taken", SimConfig.main(direction_predictor="always-taken")),
    ("indirect-btb", SimConfig.main(indirect_predictor="btb")),
    ("no-prefetch", SimConfig.main(l1d_prefetcher="", l2_prefetcher="")),
    ("swapped-prefetch", SimConfig.main(
        l1d_prefetcher="next_line", l2_prefetcher="ip_stride")),
    ("tiny-caches", SimConfig.main(
        l1i=(1 * _KB, 1, 4), l1d=(1 * _KB, 1, 5),
        l2=(4 * _KB, 2, 14), llc=(8 * _KB, 4, 34))),
    ("huge-caches", SimConfig.main(
        l1i=(4096 * _KB, 16, 4), l1d=(4096 * _KB, 16, 5),
        l2=(16384 * _KB, 16, 14), llc=(65536 * _KB, 16, 34))),
    ("prf-64", SimConfig.main(prf_size=64)),
    ("prf-narrow", SimConfig.main(
        prf_size=16, fetch_width=2, dispatch_width=2,
        exec_width=2, retire_width=2, rob_size=16)),
    ("width-1", SimConfig.main(
        fetch_width=1, dispatch_width=1, exec_width=1,
        retire_width=1, rob_size=8)),
    ("no-fdip", SimConfig.main(fdip_lookahead=0)),
    ("coupled-frontend", SimConfig.main(decoupled_frontend=False)),
    ("slow-mem", SimConfig.main(dram_latency=600, alu_latency=2)),
    ("warmup-half", SimConfig.main(warmup_fraction=0.5)),
    ("warmup-all", SimConfig.main(warmup_fraction=1.0)),
]

#: The eight IPC-1 contest submissions, by exact registry name.
IPC1_PREFETCHERS = [
    "EPI", "D-JOLT", "Barça", "FNL+MMA", "JIP", "MANA", "PIPS", "TAP",
]
CONFIGS += [
    (f"ipc1-{name}", SimConfig.ipc1(l1i_prefetcher=name))
    for name in IPC1_PREFETCHERS
]

CONFIG_IDS = [config_id for config_id, _ in CONFIGS]


@pytest.fixture(scope="module")
def golden_decoded():
    """Each golden fixture converted and decoded once: path -> decoded."""
    out = {}
    for path in GOLDEN:
        converter = Converter(Improvement.ALL)
        with CvpTraceReader(path) as reader:
            instrs = list(converter.convert(reader))
        out[path] = decode_trace(instrs, converter.required_branch_rules)
    return out


def _run_both(config, decoded):
    scalar = Engine(config).run(decoded)
    vector = VectorEngine(config).run(decoded)
    return scalar, vector


@pytest.mark.parametrize("path", GOLDEN)
@pytest.mark.parametrize("config_id,config", CONFIGS, ids=CONFIG_IDS)
def test_vector_matches_scalar_on_golden(path, config_id, config, golden_decoded):
    decoded = golden_decoded[path]
    scalar, vector = _run_both(config, decoded)
    assert_stats_identical(vector, scalar, (path, config_id))


# --------------------------------------------------------------------------
# Input-form equivalence and the columnar memo


def test_vector_accepts_columns_rows_and_raw(golden_decoded):
    decoded = golden_decoded[GOLDEN[0]]
    config = SimConfig.main()
    reference = Engine(config).run(decoded)
    from_rows = VectorEngine(config).run(decoded)
    from_columns = VectorEngine(config).run(columnarize(decoded))
    assert_stats_identical(from_rows, reference, "rows input")
    assert_stats_identical(from_columns, reference, "columns input")


def test_simulator_columns_memo_is_bit_identical(golden_decoded):
    decoded = golden_decoded[GOLDEN[0]]
    sim = Simulator(SimConfig.main(), engine="vector")
    first = sim.run(decoded)
    assert sim._columns_memo is not None
    memo_columns = sim._columns_memo[2]
    second = sim.run(decoded)  # served from the columnar memo
    assert sim._columns_memo[2] is memo_columns
    assert_stats_identical(second, first, "memoized re-run")
    assert_stats_identical(
        Simulator(SimConfig.main()).run(decoded), first, "scalar simulator"
    )


def test_vector_matches_scalar_with_obs_enabled(golden_decoded, tmp_path):
    # With instrumentation on, the vector engine routes cache accesses
    # through the timed component wrappers instead of its inline fast
    # paths — the stats must not notice (docs/observability.md).
    import repro.obs as obs

    from tests.test_obs import _reset_obs

    decoded = golden_decoded[GOLDEN[0]]
    config = SimConfig.main()
    _reset_obs()
    try:
        obs.configure(log=tmp_path / "obs.jsonl", program="pytest-diff")
        scalar, vector = _run_both(config, decoded)
    finally:
        _reset_obs()
    assert_stats_identical(vector, scalar, "obs enabled")
    assert_stats_identical(
        Engine(config).run(decoded), scalar, "obs on vs off"
    )


def test_make_engine_builds_the_requested_engine():
    assert type(make_engine(SimConfig.main())) is Engine
    assert type(make_engine(SimConfig.main(engine="vector"))) is VectorEngine
    assert type(make_engine(SimConfig.main(), engine="vector")) is VectorEngine
    with pytest.raises(ValueError, match="unknown engine"):
        make_engine(SimConfig.main(), engine="simd")


@pytest.mark.parametrize("n", [0, 1, 2, 5])
def test_vector_matches_scalar_on_tiny_streams(n, golden_decoded):
    decoded = golden_decoded[GOLDEN[0]][:n]
    for config_id, config in (CONFIGS[0], CONFIGS[1], CONFIGS[18]):
        scalar, vector = _run_both(config, decoded)
        assert_stats_identical(vector, scalar, (n, config_id))


# --------------------------------------------------------------------------
# Property-based adversarial streams

_BRANCH_TYPES = [bt for bt in BranchType if bt is not BranchType.NOT_BRANCH]

#: Addresses mixing a hot 64KB region (cache/prefetcher reuse and
#: collisions) with a cold 44-bit range (guaranteed misses).
_addresses = st.one_of(
    st.integers(min_value=0, max_value=(1 << 16) - 1),
    st.integers(min_value=0, max_value=(1 << 44) - 1),
)

_reg_tuples = st.lists(
    st.integers(min_value=0, max_value=40), max_size=3
).map(tuple)

#: A small sweep replayed over every generated stream: the reference
#: config, the contest config with a real L1I prefetcher, and a
#: pressure config (tiny caches + finite PRF + warm-up).
_PROPERTY_CONFIGS = [
    SimConfig.main(),
    SimConfig.ipc1(l1i_prefetcher="EPI"),
    SimConfig.main(
        l1i=(1 * _KB, 1, 4), l1d=(1 * _KB, 1, 5),
        l2=(4 * _KB, 2, 14), llc=(8 * _KB, 4, 34),
        prf_size=24, warmup_fraction=0.3),
]


@st.composite
def decoded_streams(draw):
    """Decoded streams with adversarial fetch-segment breaks.

    The IP walk mixes sequential flow, steps that land *exactly* on the
    next cacheline boundary (a segment break with no branch), and far
    jumps (taken branches of every type).  Memory operands mix hot and
    cold lines; loads and stores can coincide on one instruction.
    """
    n = draw(st.integers(min_value=0, max_value=100))
    ip = draw(st.integers(min_value=64, max_value=(1 << 40) - 1))
    ips = []
    jumped = []
    for _ in range(n):
        ips.append(ip)
        step = draw(st.sampled_from(["seq", "seq", "seq", "edge", "jump"]))
        if step == "seq":
            ip += 4
            jumped.append(False)
        elif step == "edge":
            ip = (ip | 63) + 1
            jumped.append(False)
        else:
            ip = draw(st.integers(min_value=64, max_value=(1 << 40) - 1))
            jumped.append(True)
    stream = []
    for index in range(n):
        next_ip = ips[index + 1] if index + 1 < n else ips[index]
        if jumped[index]:
            branch_type = draw(st.sampled_from(_BRANCH_TYPES))
            taken, target = True, next_ip
        elif draw(st.booleans()):
            branch_type = BranchType.CONDITIONAL
            taken, target = False, 0
        else:
            branch_type = BranchType.NOT_BRANCH
            taken, target = False, 0
        src_mem = dst_mem = ()
        if branch_type is BranchType.NOT_BRANCH:
            if draw(st.booleans()):
                src_mem = tuple(
                    draw(st.lists(_addresses, min_size=1, max_size=2))
                )
            if draw(st.booleans()):
                dst_mem = tuple(
                    draw(st.lists(_addresses, min_size=1, max_size=2))
                )
        stream.append(
            DecodedInstr(
                ip=ips[index],
                branch_type=branch_type,
                branch_taken=taken,
                target=target,
                src_regs=draw(_reg_tuples),
                dst_regs=draw(_reg_tuples),
                src_mem=src_mem,
                dst_mem=dst_mem,
            )
        )
    return stream


@given(
    decoded=decoded_streams(),
    config_index=st.integers(0, len(_PROPERTY_CONFIGS) - 1),
)
@settings(max_examples=150, deadline=None)
def test_vector_matches_scalar_on_arbitrary_streams(decoded, config_index):
    config = _PROPERTY_CONFIGS[config_index]
    scalar, vector = _run_both(config, decoded)
    assert_stats_identical(vector, scalar, (config.name, len(decoded)))


# --------------------------------------------------------------------------
# Predictor-aliasing stress (dense same-set branch PCs, history ramps)

#: Configurations whose predictors the aliasing streams attack: TAGE
#: (main), the SC/loop correction layers (tage-sc-l), and the contest
#: config's ITTAGE indirect predictor.
_ALIASING_CONFIGS = [
    SimConfig.main(),
    SimConfig.main(direction_predictor="tage-sc-l"),
    SimConfig.ipc1(),
]


@st.composite
def aliasing_streams(draw):
    """Branch streams built to alias inside the predictor tables.

    A small pool of branch PCs congruent modulo a power-of-two stride
    lands every branch in the same bimodal/gshare row and forces TAGE
    tag collisions; each PC's taken pattern is periodic with a period
    that *ramps* as the branch re-executes, walking the useful history
    length through TAGE's geometric series the way the Firestorm/Oryon
    dissections probe real predictors.  Indirect branches cycle targets
    through the pool to alias ITTAGE the same way.
    """
    pool_size = draw(st.integers(min_value=2, max_value=6))
    base = draw(st.integers(min_value=64, max_value=(1 << 20) - 1)) & ~3
    stride = 4 << draw(st.integers(min_value=10, max_value=14))
    pcs = [base + k * stride for k in range(pool_size)]
    periods = [draw(st.integers(min_value=1, max_value=32)) for _ in pcs]
    indirect = [draw(st.booleans()) for _ in pcs]
    n = draw(st.integers(min_value=1, max_value=120))
    counts = [0] * pool_size
    stream = []
    for _ in range(n):
        which = draw(st.integers(min_value=0, max_value=pool_size - 1))
        counts[which] += 1
        period = periods[which] + counts[which] // 8  # history-length ramp
        taken = (counts[which] // period) % 2 == 0
        if indirect[which]:
            branch_type = BranchType.INDIRECT
            taken = True
            target = pcs[(which + counts[which]) % pool_size]
        else:
            branch_type = BranchType.CONDITIONAL
            target = pcs[(which + 1) % pool_size] if taken else 0
        stream.append(
            DecodedInstr(
                ip=pcs[which],
                branch_type=branch_type,
                branch_taken=taken,
                target=target,
                src_regs=(),
                dst_regs=(),
                src_mem=(),
                dst_mem=(),
            )
        )
        if draw(st.booleans()):  # straight-line filler between branches
            stream.append(
                DecodedInstr(
                    ip=pcs[which] + 4,
                    branch_type=BranchType.NOT_BRANCH,
                    branch_taken=False,
                    target=0,
                    src_regs=(),
                    dst_regs=(),
                    src_mem=(),
                    dst_mem=(),
                )
            )
    return stream


@given(
    decoded=aliasing_streams(),
    config_index=st.integers(0, len(_ALIASING_CONFIGS) - 1),
)
@settings(max_examples=100, deadline=None)
def test_vector_matches_scalar_on_aliasing_stress(decoded, config_index):
    config = _ALIASING_CONFIGS[config_index]
    scalar, vector = _run_both(config, decoded)
    assert_stats_identical(vector, scalar, (config.name, len(decoded)))


@given(decoded=decoded_streams())
@settings(max_examples=25, deadline=None)
def test_vector_matches_scalar_under_patched_rules_raw_input(decoded):
    # Raw-input form: both engines decode internally (shared cache code),
    # exercising the vector engine's non-columnar entry point.
    config = SimConfig.main()
    scalar = Engine(config).run(decoded, BranchRules.PATCHED)
    vector = VectorEngine(config).run(decoded, BranchRules.PATCHED)
    assert_stats_identical(vector, scalar, "patched rules")
