"""Ablation-study unit tests (small scale; the benchmark runs the full
assertions at benchmark scale)."""

import pytest

from repro.experiments.ablation import (
    FrontendAblationRow,
    decoupled_frontend_study,
    improvement_interaction_study,
    render_frontend_ablation,
    render_interaction,
)
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def tiny_runner():
    return ExperimentRunner(instructions=2500, stride=23)


def test_reduction_metric():
    row = FrontendAblationRow("X", speedup_coupled=1.4, speedup_decoupled=1.1)
    assert row.reduction == pytest.approx(0.75)
    flat = FrontendAblationRow("Y", speedup_coupled=1.0, speedup_decoupled=1.0)
    assert flat.reduction == 0.0


def test_interaction_study_shape(tiny_runner):
    rows = improvement_interaction_study(tiny_runner)
    assert [r.label for r in rows] == ["imp_branch-regs", "imp_flag-regs", "both"]
    assert render_interaction(rows)


def test_frontend_study_shape(tiny_runner):
    rows = decoupled_frontend_study(tiny_runner)
    assert len(rows) == 8
    speedups = [r.speedup_coupled for r in rows]
    assert speedups == sorted(speedups, reverse=True)
    assert render_frontend_ablation(rows)
