"""Block encode/decode and buffered I/O for the ChampSim trace format."""

import io

import pytest

from repro.champsim.trace import (
    CHAMPSIM_DTYPE,
    RECORD_SIZE,
    ChampSimInstr,
    ChampSimTraceError,
    ChampSimTraceReader,
    ChampSimTraceWriter,
    decode_block,
    decode_block_array,
    decode_instr,
    encode_block,
    encode_block_array,
    encode_instr,
)
from repro.errors import TraceFormatError

try:
    import numpy as np
except ImportError:  # pragma: no cover
    np = None


def _instrs(count=20):
    out = []
    for i in range(count):
        if i % 4 == 3:
            out.append(
                ChampSimInstr(
                    ip=0x1000 + 4 * i,
                    is_branch=True,
                    branch_taken=bool(i % 8 == 3),
                    dst_regs=(64,),
                    src_regs=(25, 64),
                    dst_mem=(),
                    src_mem=(),
                )
            )
        elif i % 4 == 1:
            out.append(
                ChampSimInstr(
                    ip=0x1000 + 4 * i,
                    is_branch=False,
                    branch_taken=False,
                    dst_regs=(i % 30 + 1,),
                    src_regs=(2, 3),
                    dst_mem=(),
                    src_mem=(0x8000 + 64 * i,),
                )
            )
        else:
            out.append(
                ChampSimInstr(
                    ip=0x1000 + 4 * i,
                    is_branch=False,
                    branch_taken=False,
                    dst_regs=(1,),
                    src_regs=(2,),
                    dst_mem=(),
                    src_mem=(),
                )
            )
    return out


def test_encode_block_matches_per_record_encoding():
    instrs = _instrs()
    assert encode_block(instrs) == b"".join(encode_instr(i) for i in instrs)


def test_decode_block_matches_per_record_decoding():
    data = encode_block(_instrs())
    per_record = [
        decode_instr(data[off : off + RECORD_SIZE])
        for off in range(0, len(data), RECORD_SIZE)
    ]
    assert decode_block(data) == per_record


def test_decode_block_rejects_ragged_input():
    data = encode_block(_instrs(3))
    with pytest.raises(ChampSimTraceError):
        decode_block(data[:-1])


@pytest.mark.skipif(np is None, reason="numpy not installed")
def test_numpy_array_round_trip():
    data = encode_block(_instrs())
    array = decode_block_array(data)
    assert array.dtype == CHAMPSIM_DTYPE
    assert len(array) == 20
    assert list(array["ip"][:3]) == [0x1000, 0x1004, 0x1008]
    assert encode_block_array(array) == data


@pytest.mark.skipif(np is None, reason="numpy not installed")
def test_numpy_array_rejects_wrong_dtype():
    with pytest.raises(ChampSimTraceError):
        encode_block_array(np.zeros(4, dtype=np.uint8))


def test_write_all_flushes_once_per_block():
    instrs = _instrs(10)

    class CountingStream(io.BytesIO):
        writes = 0

        def write(self, data):
            CountingStream.writes += 1
            return super().write(data)

    stream = CountingStream()
    writer = ChampSimTraceWriter(stream)
    written = writer.write_all(instrs, block_size=4)
    assert written == 10
    assert writer.records_written == 10
    # 10 records in blocks of 4 -> 3 write calls, not 10.
    assert CountingStream.writes == 3
    assert stream.getvalue() == encode_block(instrs)


def test_write_encoded_counts_records_and_validates():
    instrs = _instrs(5)
    stream = io.BytesIO()
    writer = ChampSimTraceWriter(stream)
    assert writer.write_encoded(encode_block(instrs)) == 5
    assert writer.records_written == 5
    with pytest.raises(ChampSimTraceError):
        writer.write_encoded(b"\x00" * (RECORD_SIZE + 1))
    assert writer.records_written == 5  # failed write did not count


def test_reader_truncated_final_record_is_a_clear_error():
    data = encode_block(_instrs(3))
    reader = ChampSimTraceReader(io.BytesIO(data[:-7]))
    assert next(reader).ip == 0x1000
    assert next(reader).ip == 0x1004
    with pytest.raises(ChampSimTraceError) as excinfo:
        next(reader)
    message = str(excinfo.value)
    assert "truncated final record" in message
    assert "2 complete records" in message
    assert isinstance(excinfo.value, TraceFormatError)


def test_read_block_truncation_reports_complete_record_count():
    data = encode_block(_instrs(6))
    reader = ChampSimTraceReader(io.BytesIO(data[:-1]))
    assert len(reader.read_block(4)) == 4
    with pytest.raises(ChampSimTraceError) as excinfo:
        reader.read_block(4)
    assert "5 complete records" in str(excinfo.value)


def test_reader_blocks_round_trip(tmp_path):
    instrs = _instrs(11)
    path = tmp_path / "trace.champsimtrace.gz"
    with ChampSimTraceWriter(path) as writer:
        writer.write_all(instrs, block_size=4)
    with ChampSimTraceReader(path) as reader:
        blocks = list(reader.blocks(4))
    assert [len(b) for b in blocks] == [4, 4, 3]
    assert [i for b in blocks for i in b] == instrs


def test_read_block_rejects_nonpositive_size():
    reader = ChampSimTraceReader(io.BytesIO(b""))
    with pytest.raises(ValueError):
        reader.read_block(0)
