"""SimStats unit tests."""

from repro.champsim.branch_info import BranchType
from repro.sim.stats import SimStats


def test_ipc():
    stats = SimStats()
    stats.instructions = 3000
    stats.cycles = 1500
    assert stats.ipc == 2.0


def test_ipc_zero_cycles():
    assert SimStats().ipc == 0.0


def test_branch_accounting_counts_each_branch_once():
    stats = SimStats()
    stats.count_branch(BranchType.CONDITIONAL, True, True, True)
    stats.instructions = 1000
    assert stats.direction_mispredicts == 1
    assert stats.target_mispredicts == 1
    assert stats.mispredicted_branches == 1
    assert stats.branch_mpki == 1.0
    assert stats.direction_mpki == 1.0
    assert stats.target_mpki == 1.0


def test_ras_mpki_counts_only_returns():
    stats = SimStats()
    stats.count_branch(BranchType.RETURN, True, False, True)
    stats.count_branch(BranchType.INDIRECT, True, False, True)
    stats.instructions = 1000
    assert stats.ras_mpki == 1.0
    assert stats.target_mpki == 2.0


def test_branches_by_type():
    stats = SimStats()
    for _ in range(3):
        stats.count_branch(BranchType.DIRECT_CALL, True, False, False)
    assert stats.branches_by_type[BranchType.DIRECT_CALL] == 3
    assert stats.branches == 3
    assert stats.taken_branches == 3


def test_cache_mpki():
    stats = SimStats()
    stats.instructions = 2000
    stats.count_cache_access("L1I", miss=True)
    stats.count_cache_access("L1I", miss=False)
    assert stats.l1i_mpki == 0.5
    assert stats.cache_accesses["L1I"] == 2
    assert stats.l1d_mpki == 0.0


def test_disabled_stats_count_nothing():
    stats = SimStats(enabled=False)
    stats.count_instruction()
    stats.count_branch(BranchType.CONDITIONAL, True, True, False)
    stats.count_cache_access("L1D", miss=True)
    stats.count_prefetch("L2")
    assert stats.instructions == 0
    assert stats.branches == 0
    assert stats.cache_misses == {}
    assert stats.prefetches_issued == {}


def test_mpki_with_zero_instructions():
    stats = SimStats()
    stats.count_branch(BranchType.CONDITIONAL, True, True, False)
    assert stats.branch_mpki == 0.0


def test_summary_contains_all_levels():
    stats = SimStats()
    stats.instructions = 10
    stats.cycles = 20
    text = stats.summary()
    for token in ("IPC", "L1I", "L1D", "L2", "LLC", "RAS"):
        assert token in text
