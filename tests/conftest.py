"""Shared fixtures and record builders for the test suite."""

from __future__ import annotations

import pytest

from repro.cvp.isa import InstClass, LINK_REGISTER
from repro.cvp.record import CvpRecord


def alu(pc=0x1000, dsts=(1,), srcs=(2, 3), values=None, cls=InstClass.ALU):
    """An ALU-class record with sensible defaults."""
    if values is None:
        values = tuple(0xDEAD + i for i in range(len(dsts)))
    return CvpRecord(
        pc=pc, inst_class=cls, src_regs=srcs, dst_regs=dsts, dst_values=values
    )


def load(
    pc=0x1000,
    dsts=(1,),
    srcs=(2,),
    values=None,
    address=0x2000,
    size=8,
):
    if values is None:
        values = tuple(0xBEEF + i for i in range(len(dsts)))
    return CvpRecord(
        pc=pc,
        inst_class=InstClass.LOAD,
        src_regs=srcs,
        dst_regs=dsts,
        dst_values=values,
        mem_address=address,
        mem_size=size,
    )


def store(pc=0x1000, dsts=(), srcs=(1, 2), values=(), address=0x2000, size=8):
    return CvpRecord(
        pc=pc,
        inst_class=InstClass.STORE,
        src_regs=srcs,
        dst_regs=dsts,
        dst_values=values,
        mem_address=address,
        mem_size=size,
    )


def branch(
    pc=0x1000,
    cls=InstClass.COND_BRANCH,
    taken=True,
    target=0x4000,
    srcs=(),
    dsts=(),
    values=(),
):
    return CvpRecord(
        pc=pc,
        inst_class=cls,
        src_regs=srcs,
        dst_regs=dsts,
        dst_values=values,
        branch_taken=taken,
        branch_target=target if taken else None,
    )


def ret(pc=0x1000, target=0x4000):
    """A genuine return: reads X30, writes nothing."""
    return branch(
        pc=pc,
        cls=InstClass.UNCOND_INDIRECT_BRANCH,
        taken=True,
        target=target,
        srcs=(LINK_REGISTER,),
    )


def blr_x30(pc=0x1000, target=0x4000):
    """The call-stack bug case: BLR X30 reads *and writes* X30."""
    return branch(
        pc=pc,
        cls=InstClass.UNCOND_INDIRECT_BRANCH,
        taken=True,
        target=target,
        srcs=(LINK_REGISTER,),
        dsts=(LINK_REGISTER,),
        values=(pc + 4,),
    )


@pytest.fixture(scope="session")
def small_trace():
    """A deterministic 4000-record synthetic trace (session-cached)."""
    from repro.synth import make_trace

    return make_trace("compute_int_1", 4000)


@pytest.fixture(scope="session")
def srv_trace():
    """A server trace carrying BLR-X30 calls (call-stack bug material)."""
    from repro.synth import make_trace

    return make_trace("srv_3", 6000)
