"""Regenerate the golden conversion fixtures.

Run from the repository root after an *intentional* converter or trace
format change::

    PYTHONPATH=src python tests/golden/regen.py

Writes, for each fixture trace, a tiny checked-in CVP-1 input
(``<name>.cvp.gz``) and, into ``expected.json``, the SHA-256 of the
*uncompressed* ChampSim output byte stream plus the full conversion
statistics for each pinned improvement set.  ``test_golden_conversion.py``
replays the conversion from the checked-in inputs and diffs against this
file, so any semantic drift in the converter — including via the parallel
suite path — fails loudly.

Do NOT regenerate to make a failing test pass unless the output change is
the point of your patch; the diff of ``expected.json`` is then part of
the review surface.
"""

from __future__ import annotations

import gzip
import hashlib
import json
from pathlib import Path

from repro.champsim.trace import encode_instr
from repro.core.convert import Converter
from repro.core.improvements import IMPROVEMENT_NAMES
from repro.cvp.reader import CvpTraceReader
from repro.cvp.writer import write_trace
from repro.experiments.cache import conversion_stats_to_dict
from repro.synth.generator import GENERATOR_VERSION, make_trace

GOLDEN_DIR = Path(__file__).resolve().parent

#: (trace name, instruction count): tiny but behaviourally diverse —
#: srv_3 carries the BLR-X30 call-stack bug material, compute_int_23 is a
#: paper-called-out integer trace, crypto_1 exercises the crypto profile,
#: and srv_24 at 700 records contains cacheline-crossing accesses and a
#: DC ZVA (the mem-footprint improvement's material, Section 3.1.3).
FIXTURE_TRACES = (
    ("srv_3", 400),
    ("compute_int_23", 400),
    ("crypto_1", 300),
    ("srv_24", 700),
)

#: Improvement sets pinned by the golden layer (original, all-fixes, and
#: the branch-only set whose PATCHED rules changed the deduction story).
FIXTURE_IMPROVEMENTS = ("No_imp", "All_imps", "Branch_imps")


def output_digest_and_stats(cvp_path: Path, improvements):
    """Convert ``cvp_path`` in memory; digest the raw output records."""
    converter = Converter(improvements)
    digest = hashlib.sha256()
    count = 0
    with CvpTraceReader(cvp_path) as reader:
        for instr in converter.convert(reader):
            digest.update(encode_instr(instr))
            count += 1
    return {
        "output_sha256": digest.hexdigest(),
        "instructions_out": count,
        "branch_rules": converter.required_branch_rules.value,
        "stats": conversion_stats_to_dict(converter.stats),
    }


def main() -> None:
    expected = {"generator_version": GENERATOR_VERSION, "traces": {}}
    for name, instructions in FIXTURE_TRACES:
        cvp_path = GOLDEN_DIR / f"{name}.cvp.gz"
        records = make_trace(name, instructions)
        # mtime=0 keeps the .gz byte-stable across regenerations.
        with gzip.GzipFile(cvp_path, "wb", mtime=0) as stream:
            write_trace(records, stream)
        entry = {"instructions": instructions, "conversions": {}}
        for label in FIXTURE_IMPROVEMENTS:
            entry["conversions"][label] = output_digest_and_stats(
                cvp_path, IMPROVEMENT_NAMES[label]
            )
        expected["traces"][name] = entry
        print(f"{name}: {instructions} records -> {cvp_path.name}")
    out = GOLDEN_DIR / "expected.json"
    out.write_text(json.dumps(expected, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
