"""Property-based tests of timing-model invariants (hypothesis).

Random small instruction streams; the properties are global sanity laws
of the interval model: determinism, resource monotonicity, stat
consistency.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.champsim.regs import (
    REG_FLAGS,
    REG_INSTRUCTION_POINTER as IP,
)
from repro.champsim.trace import ChampSimInstr
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator


@st.composite
def instruction_streams(draw):
    """A random but structurally sane stream over a small code region."""
    length = draw(st.integers(min_value=20, max_value=120))
    stream = []
    for i in range(length):
        ip = 0x400000 + 8 * (i % 16)
        kind = draw(st.sampled_from(["alu", "load", "store", "branch"]))
        if kind == "alu":
            stream.append(
                ChampSimInstr(
                    ip=ip,
                    dst_regs=(draw(st.integers(1, 8)),),
                    src_regs=(draw(st.integers(1, 8)),),
                )
            )
        elif kind == "load":
            stream.append(
                ChampSimInstr(
                    ip=ip,
                    dst_regs=(draw(st.integers(1, 8)),),
                    src_mem=(draw(st.integers(1, 1 << 24)) * 8,),
                )
            )
        elif kind == "store":
            stream.append(
                ChampSimInstr(
                    ip=ip,
                    src_regs=(draw(st.integers(1, 8)),),
                    dst_mem=(draw(st.integers(1, 1 << 24)) * 8,),
                )
            )
        else:
            stream.append(
                ChampSimInstr(
                    ip=ip,
                    is_branch=True,
                    branch_taken=draw(st.booleans()),
                    src_regs=(IP, REG_FLAGS),
                    dst_regs=(IP,),
                )
            )
    return stream


def run(stream, **overrides):
    config = SimConfig.main(
        l1d_prefetcher="", l2_prefetcher="", fdip_lookahead=0, **overrides
    )
    return Simulator(config).run(stream)


@given(instruction_streams())
@settings(max_examples=40, deadline=None)
def test_simulation_is_deterministic(stream):
    a, b = run(stream), run(stream)
    assert (a.cycles, a.mispredicted_branches, a.cache_misses) == (
        b.cycles,
        b.mispredicted_branches,
        b.cache_misses,
    )


@given(instruction_streams())
@settings(max_examples=40, deadline=None)
def test_instruction_count_is_exact(stream):
    stats = run(stream)
    assert stats.instructions == len(stream)
    assert stats.branches == sum(1 for i in stream if i.is_branch)


@given(instruction_streams())
@settings(max_examples=30, deadline=None)
def test_bigger_rob_never_hurts(stream):
    small = run(stream, rob_size=16)
    big = run(stream, rob_size=256)
    assert big.cycles <= small.cycles


@given(instruction_streams())
@settings(max_examples=30, deadline=None)
def test_wider_machine_never_hurts(stream):
    narrow = run(stream, fetch_width=1, dispatch_width=1, exec_width=1, retire_width=1)
    wide = run(stream)
    assert wide.cycles <= narrow.cycles


@given(instruction_streams())
@settings(max_examples=30, deadline=None)
def test_finite_prf_never_speeds_up(stream):
    unlimited = run(stream)
    tight = run(stream, prf_size=12)
    assert tight.cycles >= unlimited.cycles


@given(instruction_streams())
@settings(max_examples=30, deadline=None)
def test_ipc_positive_and_bounded(stream):
    stats = run(stream)
    assert 0 < stats.ipc <= 6.0


@given(instruction_streams())
@settings(max_examples=30, deadline=None)
def test_cache_accounting_consistent(stream):
    stats = run(stream)
    for level in ("L1I", "L1D", "L2", "LLC"):
        misses = stats.cache_misses.get(level, 0)
        accesses = stats.cache_accesses.get(level, 0)
        assert 0 <= misses <= accesses
    loads = sum(1 for i in stream if i.src_mem)
    stores = sum(1 for i in stream if i.dst_mem)
    assert stats.cache_accesses.get("L1D", 0) == loads + stores
