"""Experiment-harness tests: runner memoisation, figure/table shapes."""

import pytest

from repro.core.improvements import Improvement
from repro.experiments.figures import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
)
from repro.experiments.runner import ExperimentRunner, geomean
from repro.experiments.tables import (
    FIXED_TRACE_IMPROVEMENTS,
    table1,
    table2,
    table3,
)
from repro.experiments import report
from repro.sim.config import SimConfig


@pytest.fixture(scope="module")
def runner():
    # A tiny but category-diverse sample: every 13th public trace.
    return ExperimentRunner(instructions=4000, stride=13)


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([]) == 0.0


def test_runner_samples_suite(runner):
    names = runner.public_trace_names()
    assert 0 < len(names) < 135
    categories = {name.split("_")[0] for name in names}
    assert "srv" in categories


def test_runner_memoises_runs(runner):
    first = runner.run("srv_0", Improvement.NONE)
    second = runner.run("srv_0", Improvement.NONE)
    assert first is second


def test_runner_distinguishes_configs(runner):
    main = runner.run("srv_0", Improvement.NONE, SimConfig.main())
    ipc1 = runner.run("srv_0", Improvement.NONE, SimConfig.ipc1())
    assert main is not ipc1


def test_runner_trace_cache(runner):
    assert runner.trace("srv_0") is runner.trace("srv_0")


def test_runner_engine_override_is_bit_identical(runner):
    from tests.diffharness import assert_stats_identical

    vector_runner = ExperimentRunner(instructions=4000, engine="vector")
    scalar = runner.run("srv_0", Improvement.ALL)
    vector = vector_runner.run("srv_0", Improvement.ALL)
    assert vector.stats is not scalar.stats
    assert_stats_identical(vector.stats, scalar.stats, "engine override")
    # The override rewrites the memo key, so the run is not aliased with
    # a scalar run of the same (trace, improvements, config).
    rerun = vector_runner.run("srv_0", Improvement.ALL, SimConfig.main())
    assert rerun is vector


def test_cli_engine_flag(capsys):
    from repro.experiments.cli import main

    rc = main(
        [
            "fig1",
            "--stride",
            "45",
            "--instructions",
            "1500",
            "--no-cache",
            "--engine",
            "vector",
        ]
    )
    assert rc == 0
    assert "Figure 1" in capsys.readouterr().out


def test_figure1_shape(runner):
    data = figure1(runner)
    assert data.traces == len(runner.public_trace_names())
    v = data.variation
    assert v["imp_flag-regs"] < 0
    assert v["imp_branch-regs"] < 0
    assert v["imp_base-update"] > -0.005
    assert abs(v["imp_mem-footprint"]) < 0.01
    assert v["Branch_imps"] < v["imp_call-stack"]
    text = report.render_figure1(data)
    assert "Figure 1" in text


def test_figure2_series_sorted(runner):
    data = figure2(runner)
    for series in data.series.values():
        assert series == sorted(series, reverse=True)
    assert report.render_figure2(data)


def test_figure3_sorted_by_mpki(runner):
    rows = figure3(runner)
    mpkis = [r.branch_mpki for r in rows]
    assert mpkis == sorted(mpkis)
    # Trend: high-MPKI third slows down more than low-MPKI third.
    third = max(1, len(rows) // 3)
    low = geomean([r.slowdown_flag_reg for r in rows[:third]])
    high = geomean([r.slowdown_flag_reg for r in rows[-third:]])
    # Trend with a small-sample tolerance (the full-suite harness shows
    # it cleanly; this runner samples ~11 short traces).
    assert high >= low - 0.01
    assert report.render_figure3(rows)


def test_figure4_sorted_by_fraction(runner):
    rows = figure4(runner)
    fracs = [r.base_update_load_fraction for r in rows]
    assert fracs == sorted(fracs)
    third = max(1, len(rows) // 3)
    low = geomean([r.speedup for r in rows[:third]])
    high = geomean([r.speedup for r in rows[-third:]])
    # Trend with a small-sample tolerance (the full-suite harness shows
    # it cleanly; this runner samples ~11 short traces).
    assert high >= low - 0.015
    assert report.render_figure4(rows)


def test_figure5_affected_traces_lead(runner):
    rows = figure5(runner, top=5)
    assert rows[0].ras_mpki_original >= rows[-1].ras_mpki_original
    worst = rows[0]
    if worst.ras_mpki_original > 2:
        assert worst.ras_mpki_improved < worst.ras_mpki_original
    assert report.render_figure5(rows)


def test_table1_lists_all_six(runner):
    rows = table1(runner)
    assert [r.improvement for r in rows] == [
        "mem-regs",
        "base-update",
        "mem-footprint",
        "call-stack",
        "branch-regs",
        "flag-reg",
    ]
    assert all(r.records_affected >= 0 for r in rows)
    flag_row = next(r for r in rows if r.improvement == "flag-reg")
    assert flag_row.records_affected > 0
    assert report.render_table1(rows)


def test_table2_rows(runner):
    rows = table2(runner)
    assert len(rows) == len(runner.ipc1_trace_names())
    for row in rows:
        assert row.ipc > 0
        assert row.branch_mpki >= row.direction_mpki * 0.5
        assert row.l1i_mpki >= 0
    assert report.render_table2(rows)


def test_table3_structure(runner):
    data = table3(runner)
    assert len(data.competition) == 8
    assert len(data.fixed) == 8
    for entries in (data.competition, data.fixed):
        speedups = [e.speedup for e in entries]
        assert speedups == sorted(speedups, reverse=True)
        assert all(s > 0.99 for s in speedups)
        assert [e.rank for e in entries] == list(range(1, 9))
    assert report.render_table3(data)


def test_fixed_trace_improvements_exclude_mem_footprint():
    assert Improvement.MEM_FOOTPRINT not in FIXED_TRACE_IMPROVEMENTS
    assert Improvement.BASE_UPDATE in FIXED_TRACE_IMPROVEMENTS
    assert Improvement.CALL_STACK in FIXED_TRACE_IMPROVEMENTS


def test_cli_runs_fig1(capsys):
    from repro.experiments.cli import main

    rc = main(["fig1", "--stride", "45", "--instructions", "1500", "--no-cache"])
    assert rc == 0
    assert "Figure 1" in capsys.readouterr().out
