"""Generator and suite edge cases."""

import pytest

from repro.core import Converter, Improvement
from repro.cvp.record import CvpRecord
from repro.synth import make_trace
from repro.synth.generator import MAX_CALL_DEPTH
from repro.synth.profiles import CATEGORY_PROFILES, profile_for_trace
from repro.synth.suite import cvp1_public_suite, ipc1_suite


@pytest.mark.parametrize(
    "name",
    [
        "srv_0",
        "srv_63",
        "compute_int_0",
        "compute_int_46",
        "compute_fp_0",
        "compute_fp_12",
        "crypto_0",
        "crypto_10",
        "secret_srv7",
        "secret_int_919",
    ],
)
def test_every_category_generates_and_converts(name):
    """Suite corners: generation → conversion never crashes."""
    records = make_trace(name, 800)
    assert len(records) == 800
    converter = Converter(Improvement.ALL)
    instrs = list(converter.convert(records))
    assert len(instrs) >= 800


def test_tiny_budgets():
    for budget in (1, 2, 3, 7):
        assert len(make_trace("crypto_0", budget)) == budget


def test_deep_call_chains_are_capped():
    """The interpreter never recurses past MAX_CALL_DEPTH frames."""
    import sys

    limit = sys.getrecursionlimit()
    # If the cap failed, 20k instructions of a call-heavy profile would
    # overflow Python's stack long before finishing.
    records = make_trace("srv_7", 20_000)
    assert len(records) == 20_000
    assert sys.getrecursionlimit() == limit
    assert MAX_CALL_DEPTH < 64


def test_all_records_are_valid_cvp_records(small_trace):
    for record in small_trace:
        assert isinstance(record, CvpRecord)  # invariants ran in __post_init__


def test_base_profiles_are_self_consistent():
    for profile in CATEGORY_PROFILES.values():
        # Construction validates all fractions; just touch each.
        assert 0 < profile.num_functions
        assert 0 < profile.block_body_len


def test_suite_stride_sampling_preserves_categories():
    names = [name for name, _ in cvp1_public_suite(instructions=50, stride=20)]
    prefixes = {name.rsplit("_", 1)[0] for name in names}
    assert "srv" in prefixes


def test_ipc1_suite_full_iteration_smoke():
    count = 0
    for name, records in ipc1_suite(instructions=60):
        assert len(records) == 60
        count += 1
    assert count == 50


def test_profile_for_trace_is_pure():
    a = profile_for_trace("srv_31")
    b = profile_for_trace("srv_31")
    assert a == b and a is not b
