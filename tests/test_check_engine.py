"""Engine-level tests: the clean-tree gate, mutation tripwires, cache
and baseline round-trips."""

import json
import shutil
from pathlib import Path

import pytest

from repro.checks.baseline import (
    load_check_baseline,
    suppress_check_report,
    write_check_baseline,
)
from repro.checks.cache import (
    CheckCache,
    check_key,
    check_paths_cached,
    report_from_dict,
    report_to_dict,
)
from repro.checks.engine import CheckRunner, CheckSummary
from repro.checks.findings import Finding, Severity
from repro.checks.rules import resolve_check_rules

REPO_ROOT = Path(__file__).parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "checks-baseline.json"


def tree_report(root, select=None):
    runner = CheckRunner(
        rules=resolve_check_rules(select=select) if select else None
    )
    return runner.check_paths([root])


# --- the gate: the shipped tree must be clean ---------------------------


def test_src_tree_clean_under_repo_baseline(monkeypatch):
    """``repro-check src/repro`` (with the repo baseline) must pass."""
    monkeypatch.chdir(REPO_ROOT)
    report = tree_report(SRC_TREE)
    baseline = load_check_baseline(BASELINE)
    surviving = [
        f for f in report.findings if f.fingerprint() not in baseline
    ]
    assert surviving == [], [f.render() for f in surviving]


def test_repo_baseline_entries_all_current(monkeypatch):
    """Every baseline entry must match a live finding (no dead wood)."""
    monkeypatch.chdir(REPO_ROOT)
    report = tree_report(SRC_TREE)
    fingerprints = {f.fingerprint() for f in report.findings}
    baseline = load_check_baseline(BASELINE)
    assert baseline <= fingerprints, sorted(baseline - fingerprints)


# --- mutation tripwires (the PR's acceptance criteria) ------------------


def _copy_tree(tmp_path):
    dest = tmp_path / "repro"
    shutil.copytree(SRC_TREE, dest)
    return dest


def test_deleting_vector_counter_update_fails(tmp_path):
    tree = _copy_tree(tmp_path)
    vector = tree / "sim" / "vector_engine.py"
    source = vector.read_text()
    target = [
        line
        for line in source.splitlines()
        if "stats.target_mispredicts +=" in line
    ]
    assert target, "expected a target_mispredicts update to delete"
    vector.write_text(source.replace(target[0] + "\n", ""))
    report = tree_report(tree, select=["RC401"])
    assert report.fired_rule_ids() == ("RC401",)
    assert CheckSummary(reports=[report]).exit_code() == 2


def test_adding_unkeyed_config_field_fails(tmp_path):
    tree = _copy_tree(tmp_path)
    config = tree / "sim" / "config.py"
    config.write_text(config.read_text() + "    new_knob: int = 0\n")
    report = tree_report(tree, select=["RC202"])
    assert report.fired_rule_ids() == ("RC202",)
    assert any("new_knob" in f.message for f in report.findings)


def test_dropping_manifest_entry_fails(tmp_path):
    tree = _copy_tree(tmp_path)
    manifest = tree / "checks" / "manifests.py"
    source = manifest.read_text()
    manifest.write_text(source.replace('    "rob_size",\n', ""))
    report = tree_report(tree, select=["RC202"])
    assert any("rob_size" in f.message for f in report.findings)


# --- report cache -------------------------------------------------------


def test_cache_roundtrip_and_hit(tmp_path):
    runner = CheckRunner(rules=resolve_check_rules(select=["RC1"]))
    cache = CheckCache(tmp_path / "cache")
    fixture = REPO_ROOT / "tests" / "fixtures" / "checks" / "rc1xx"

    first = check_paths_cached(runner, [fixture], cache)
    assert not first.from_cache
    assert cache.counters.misses == 1 and cache.counters.stores == 1

    second = check_paths_cached(runner, [fixture], cache)
    assert second.from_cache
    assert cache.counters.hits == 1
    assert [f.to_dict() for f in second.findings] == [
        f.to_dict() for f in first.findings
    ]


def test_cache_key_depends_on_content_and_rules(tmp_path):
    digests = [("a.py", "d1"), ("b.py", "d2")]
    base = check_key(digests, ["RC101"])
    assert check_key(list(reversed(digests)), ["RC101"]) == base
    assert check_key(digests, ["RC102"]) != base
    assert check_key([("a.py", "d1"), ("b.py", "dX")], ["RC101"]) != base


def test_cache_schema_mismatch_misses(tmp_path):
    cache = CheckCache(tmp_path)
    finding = Finding("RC101", Severity.ERROR, "a.py", 3, "boom")
    report = report_from_dict(
        {
            "root": "a",
            "files": 1,
            "rule_ids": ["RC101"],
            "findings": [finding.to_dict()],
        }
    )
    cache.store("ab" * 32, report)
    stored = cache._path("ab" * 32)
    payload = json.loads(stored.read_text())
    payload["schema"] = 999
    stored.write_text(json.dumps(payload))
    assert cache.load("ab" * 32) is None


def test_report_dict_roundtrip():
    finding = Finding("RC204", Severity.WARNING, "x/y.py", 7, "msg")
    report = report_from_dict(
        {
            "root": "x",
            "files": 2,
            "rule_ids": ["RC204"],
            "findings": [finding.to_dict()],
        }
    )
    assert report_to_dict(report)["findings"][0] == finding.to_dict()
    assert report.findings[0].fingerprint() == finding.fingerprint()


# --- baselines ----------------------------------------------------------


def test_baseline_roundtrip_suppresses(tmp_path):
    report = tree_report(
        REPO_ROOT / "tests" / "fixtures" / "checks" / "rc3xx"
    )
    assert report.findings
    path = tmp_path / "baseline.json"
    count = write_check_baseline(
        path, [report], justifications={"RC302": "fixture state"}
    )
    assert count == len(report.findings)
    suppressed = suppress_check_report(report, load_check_baseline(path))
    assert suppressed.findings == []
    assert suppressed.suppressed == count


def test_baseline_fingerprint_survives_line_moves():
    a = Finding("RC302", Severity.WARNING, "p.py", 10, "same message")
    b = Finding("RC302", Severity.WARNING, "p.py", 99, "same message")
    assert a.fingerprint() == b.fingerprint()


def test_baseline_without_justification_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(
        json.dumps(
            {
                "schema": 1,
                "findings": {"deadbeef": {"finding": "x", "justification": ""}},
            }
        )
    )
    with pytest.raises(ValueError, match="justification"):
        load_check_baseline(path)


def test_baseline_schema_mismatch_rejected(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": 99, "findings": {}}))
    with pytest.raises(ValueError, match="schema"):
        load_check_baseline(path)


# --- rule selection and parse errors ------------------------------------


def test_resolve_unknown_pattern_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        resolve_check_rules(select=["RC9"])


def test_select_prefix_and_ignore():
    ids = {r.rule_id for r in resolve_check_rules(select=["RC1"])}
    assert ids == {"RC101", "RC102", "RC103", "RC104", "RC105", "RC106"}
    ids = {
        r.rule_id
        for r in resolve_check_rules(select=["RC1"], ignore=["RC103"])
    }
    assert "RC103" not in ids and "RC101" in ids


def test_parse_error_becomes_rc001_error(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    report = CheckRunner().check_paths([tmp_path])
    assert report.fired_rule_ids() == ("RC001",)
    assert CheckSummary(reports=[report]).exit_code() == 2
