"""Improvement flag-set tests (artifact CLI naming)."""

import pytest

from repro.core.improvements import (
    IMPROVEMENT_NAMES,
    Improvement,
    improvement_name,
    parse_improvements,
)


def test_groups_compose():
    assert Improvement.MEMORY == (
        Improvement.MEM_REGS | Improvement.BASE_UPDATE | Improvement.MEM_FOOTPRINT
    )
    assert Improvement.BRANCH == (
        Improvement.CALL_STACK | Improvement.BRANCH_REGS | Improvement.FLAG_REG
    )
    assert Improvement.ALL == Improvement.MEMORY | Improvement.BRANCH


def test_artifact_names_roundtrip():
    for name, improvements in IMPROVEMENT_NAMES.items():
        assert parse_improvements(name) == improvements
        assert improvement_name(improvements) == name


def test_parse_is_case_insensitive():
    assert parse_improvements("all_imps") == Improvement.ALL
    assert parse_improvements("IMP_CALL-STACK") == Improvement.CALL_STACK


def test_parse_combinations():
    combined = parse_improvements("imp_base-update+imp_call-stack")
    assert combined == Improvement.BASE_UPDATE | Improvement.CALL_STACK


def test_parse_unknown_raises():
    with pytest.raises(ValueError):
        parse_improvements("imp_bogus")


def test_name_of_combination():
    combined = Improvement.BASE_UPDATE | Improvement.CALL_STACK
    name = improvement_name(combined)
    assert "imp_base-update" in name and "imp_call-stack" in name


def test_no_imp_name():
    assert improvement_name(Improvement.NONE) == "No_imp"


def test_flag_membership():
    assert Improvement.BASE_UPDATE in Improvement.ALL
    assert Improvement.BASE_UPDATE in Improvement.MEMORY
    assert Improvement.BASE_UPDATE not in Improvement.BRANCH
