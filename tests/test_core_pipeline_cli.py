"""File-level conversion pipeline and CLI tests."""

import pytest

from repro.champsim.branch_info import BranchRules
from repro.champsim.trace import read_champsim_trace
from repro.core.cli import main as convert_main
from repro.core.improvements import Improvement
from repro.core.pipeline import convert_file
from repro.cvp.writer import write_trace
from repro.synth import make_trace
from repro.synth.cli import main as gen_main


@pytest.fixture(scope="module")
def cvp_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "srv_tiny.gz"
    write_trace(make_trace("srv_3", 1500), path)
    return path


def test_convert_file_roundtrip(cvp_file, tmp_path):
    out = tmp_path / "out.champsimtrace"
    result = convert_file(cvp_file, out, Improvement.ALL)
    assert result.stats.records_in == 1500
    assert result.branch_rules is BranchRules.PATCHED
    instrs = read_champsim_trace(out)
    assert len(instrs) == result.stats.instructions_out


def test_convert_file_gz_output(cvp_file, tmp_path):
    out = tmp_path / "out.champsimtrace.gz"
    convert_file(cvp_file, out, Improvement.NONE)
    assert read_champsim_trace(out)
    assert out.read_bytes()[:2] == b"\x1f\x8b"


def test_convert_file_no_imp_uses_original_rules(cvp_file, tmp_path):
    result = convert_file(cvp_file, tmp_path / "o.bin", Improvement.NONE)
    assert result.branch_rules is BranchRules.ORIGINAL


def test_cli_convert(cvp_file, tmp_path, capsys):
    out = tmp_path / "cli.bin"
    rc = convert_main(
        ["-t", str(cvp_file), "-i", "All_imps", "-o", str(out), "-v"]
    )
    assert rc == 0
    assert out.exists()
    captured = capsys.readouterr()
    assert "records in" in captured.out


def test_cli_rejects_unknown_improvement(cvp_file, tmp_path):
    rc = convert_main(
        ["-t", str(cvp_file), "-i", "imp_nope", "-o", str(tmp_path / "x")]
    )
    assert rc == 2


def test_gen_cli(tmp_path, capsys):
    out = tmp_path / "gen.gz"
    rc = gen_main(["-t", "crypto_1", "-n", "500", "-o", str(out)])
    assert rc == 0
    assert "wrote 500 records" in capsys.readouterr().out


def test_conversion_is_deterministic(cvp_file, tmp_path):
    a = tmp_path / "a.bin"
    b = tmp_path / "b.bin"
    convert_file(cvp_file, a, Improvement.ALL)
    convert_file(cvp_file, b, Improvement.ALL)
    assert a.read_bytes() == b.read_bytes()
