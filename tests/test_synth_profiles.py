"""Workload-profile tests."""

import dataclasses

import pytest

from repro.synth.profiles import (
    AFFECTED_X30_TRACES,
    CATEGORY_PROFILES,
    WorkloadProfile,
    category_of,
    profile_for_trace,
)


def test_four_categories_exist():
    assert set(CATEGORY_PROFILES) == {"compute_int", "compute_fp", "crypto", "srv"}


@pytest.mark.parametrize(
    "name,category",
    [
        ("srv_0", "srv"),
        ("compute_int_46", "compute_int"),
        ("compute_fp_3", "compute_fp"),
        ("crypto_9", "crypto"),
        ("secret_srv160", "srv"),
        ("secret_int_294", "compute_int"),
    ],
)
def test_category_of(name, category):
    assert category_of(name) == category


def test_category_of_unknown_raises():
    with pytest.raises(ValueError):
        category_of("mystery_trace_7")


def test_profiles_are_deterministic():
    assert profile_for_trace("srv_17") == profile_for_trace("srv_17")


def test_profiles_differ_across_traces():
    a = profile_for_trace("srv_17")
    b = profile_for_trace("srv_18")
    assert a != b


def test_affected_traces_carry_x30_calls():
    for name in AFFECTED_X30_TRACES:
        assert profile_for_trace(name).x30_indirect_call_frac > 0


def test_most_traces_unaffected_by_x30_bug():
    affected = sum(
        1
        for i in range(47)
        if profile_for_trace(f"compute_int_{i}").x30_indirect_call_frac > 0
    )
    assert affected < 10  # a minority, as in the paper


def test_base_update_fraction_spreads():
    fracs = [
        profile_for_trace(f"srv_{i}").base_update_load_frac for i in range(64)
    ]
    assert min(fracs) < 0.02
    assert max(fracs) > 0.10


def test_profile_validation_rejects_bad_mix():
    with pytest.raises(ValueError):
        WorkloadProfile(
            name="x", category="srv", load_frac=0.5, store_frac=0.5
        )


def test_profile_validation_rejects_out_of_range_fraction():
    with pytest.raises(ValueError):
        WorkloadProfile(name="x", category="srv", bias=1.5)


def test_server_profiles_have_larger_code_footprints():
    srv = CATEGORY_PROFILES["srv"]
    crypto = CATEGORY_PROFILES["crypto"]
    assert srv.num_functions > 5 * crypto.num_functions


def test_replace_keeps_validation():
    base = CATEGORY_PROFILES["srv"]
    with pytest.raises(ValueError):
        dataclasses.replace(base, load_frac=2.0)
