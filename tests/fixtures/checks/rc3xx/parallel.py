"""Negative control for the RC3xx worker/pickle-safety rules."""

import concurrent.futures

# Module-level mutable in a pool-driving module -> RC302.
_RESULTS = {}


def fanout(tasks, log_path):
    def local_worker(task):
        return task * 2

    handle = open(log_path, "w")
    with concurrent.futures.ProcessPoolExecutor() as pool:
        nested = [pool.submit(local_worker, t) for t in tasks]  # RC301
        inline = pool.submit(lambda t: t, tasks[0])  # RC301
        leaked = pool.submit(print, handle)  # RC303: open handle
        lazy = pool.submit(sum, (t for t in tasks))  # RC303: generator
    handle.close()
    return nested, inline, leaked, lazy
