"""Negative control cache walk: the batched twin drops a counter (RC404).

``prefetch_data_run`` resolves (greedy stem partition) to its scalar
counterpart ``prefetch_data``, which bumps both ``pf_l2`` and
``pf_l1d``; the run-compacted twin only ever bumps ``pf_l2``.
"""


class FlatHierarchy:
    def __init__(self):
        self.pf_l1d = 0
        self.pf_l2 = 0

    def prefetch_data(self, addr, fill_l1):
        self.pf_l2 += 1
        if fill_l1:
            self.pf_l1d += 1

    def prefetch_data_run(self, requests):
        # The batched twin never bumps pf_l1d -> RC404.
        for _addr, _fill_l1 in requests:
            self.pf_l2 += 1
