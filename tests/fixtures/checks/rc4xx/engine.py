"""Negative control scalar engine: the complete reference side."""

from stats import SimStats


class Engine:
    def __init__(self, config):
        self.config = config
        self.stats = SimStats()

    def run(self, n):
        config = self.config
        for _ in range(n * config.width * config.bubble):
            self.stats.count_instruction()
            self.stats.flushes += 1
        self.stats.cycles = n
        return self.stats
