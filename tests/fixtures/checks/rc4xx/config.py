"""Negative control config shared by the two fixture engines."""

from dataclasses import dataclass


@dataclass(frozen=True)
class SimConfig:
    width: int = 4
    bubble: int = 1


SIM_CONFIG_KEY_FIELDS = ("width", "bubble")
