"""Negative control stats: one counter missing from to_dict (RC403)."""


class SimStats:
    enabled: bool = True
    instructions: int = 0
    cycles: int = 0
    flushes: int = 0

    def count_instruction(self):
        if self.enabled:
            self.instructions += 1

    def to_dict(self):
        # 'flushes' is never exported -> RC403.
        return {"instructions": self.instructions, "cycles": self.cycles}
