"""Negative control vector engine: drops a counter and ignores a knob.

Relative to ``engine.py`` this side never updates ``stats.flushes``
(RC401) and never reads ``config.bubble`` (RC402).
"""

from engine import Engine


class VectorEngine(Engine):
    def run(self, n):
        config = self.config
        self.stats.instructions += n * config.width
        self.stats.cycles = n
        return self.stats
