"""Negative control: manifest that is both incomplete and stale."""

# Missing 'new_knob' (RC202) and listing a field SimConfig no longer
# has ('retired_knob', RC202 the other direction).
SIM_CONFIG_KEY_FIELDS = ("name", "width", "depth", "retired_knob")
