"""Negative control: a config dataclass with incomplete key coverage."""

from dataclasses import dataclass


@dataclass(frozen=True)
class SimConfig:
    name: str = "base"
    width: int = 4
    depth: int = 16
    # Not in SIM_CONFIG_KEY_FIELDS (keys.py) -> RC202.
    new_knob: int = 0
