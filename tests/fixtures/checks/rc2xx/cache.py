"""Negative control: lossy fingerprint, fingerprint-free run key, and a
schema-free persistent cache (RC201, RC204)."""

import json
from pathlib import Path


def config_fingerprint(config):
    # Enumerates fields explicitly but drops 'depth' and 'new_knob'
    # -> RC201 (one finding per missing field).
    return {"name": config.name, "width": config.width}


def run_key(trace, config):
    # Never calls config_fingerprint()/asdict() -> RC201.
    return f"{trace}:{config.name}"


class ResultCache:
    """Persists payloads but neither stamps nor checks a schema -> RC204."""

    def __init__(self, root):
        self.root = Path(root)

    def _path(self, key):
        return self.root / f"{key}.json"

    def load(self, key):
        try:
            return json.loads(self._path(key).read_text())
        except OSError:
            return None

    def store(self, key, payload):
        self._path(key).write_text(json.dumps(payload))


class BlobStore:
    """Store classes carry the same contract (ruleset 4) -> RC204."""

    def __init__(self, root):
        self.root = Path(root)

    def load(self, key):
        try:
            return json.loads((self.root / key).read_text())
        except OSError:
            return None

    def store(self, key, payload):
        (self.root / key).write_text(json.dumps(payload))


class DelegatingCache:
    """Delegates persistence to a *Store: the stamping obligation moves
    to BlobStore (checked above), so RC204 must NOT fire here."""

    def __init__(self, root):
        self._blobs = BlobStore(root)

    def load(self, key):
        return self._blobs.load(key)

    def store(self, key, payload):
        self._blobs.store(key, payload)
