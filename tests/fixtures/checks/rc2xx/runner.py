"""Negative control: the PR 1 memo-key aliasing bug, verbatim (RC203)."""


class ExperimentRunner:
    def __init__(self):
        self._runs = {}

    def run(self, name, improvements, config):
        # Projects the config to one field instead of keying on the
        # whole object -> RC203 (projection + missing full config).
        key = (name, improvements, config.l1i_prefetcher)
        if key not in self._runs:
            self._runs[key] = self._execute(name, improvements, config)
        return self._runs[key]

    def _execute(self, name, improvements, config):
        return (name, improvements, config)
