"""Negative control for the RC1xx determinism rules.

Lives under a ``sim/`` path component so it is in determinism scope.
Every statement below violates exactly one rule; ``repro-check`` over
this tree must report RC101-RC106 and exit non-zero (asserted by the
check-negative-controls CI job and ``tests/test_check_rules.py``).
"""

import os
import random
import time


def unstable_sample(items):
    pick = random.choice(items)  # RC101: process-global RNG
    stamp = time.time()  # RC102: wall-clock read
    memo = {}
    memo[id(pick)] = stamp  # RC103: id()-keyed map
    token = hash("salted-by-pythonhashseed")  # RC104: builtin hash()
    total = sum({0.1, 0.2, 0.3})  # RC105: set-order accumulation
    names = list(os.listdir("."))  # RC106: unsorted fs enumeration
    return pick, stamp, memo, token, total, names
