"""Negative-control fixture: every RC5xx rule must fire on this file."""


def swallow(path):
    try:
        with open(path) as handle:
            return handle.read()
    except OSError:  # RC501: failure vanishes without a trace
        return None


def unkillable(fn):
    try:
        return fn()
    except:  # noqa: E722  RC502: catches KeyboardInterrupt too
        raise
