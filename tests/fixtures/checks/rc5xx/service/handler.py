"""Negative control: an unsafe service handler (the ``service`` path
component is in robustness scope as of ruleset 4)."""


class UnsafeHandler:
    def handle_submit(self, body):
        try:
            return self.enqueue(body)
        except Exception:  # RC501: the job vanishes; the client polls forever
            return None

    def enqueue(self, body):
        raise NotImplementedError
