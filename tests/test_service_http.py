"""HTTP handler and queue unit tests (no sockets unless stated).

The handler logic lives on :class:`ExperimentService` methods that the
tests call directly; one end-to-end test binds a real server on an
ephemeral port and drives it through :class:`ServiceClient`.
"""

import json
import threading

import pytest

from repro.service.client import ServiceClient, ServiceError as ClientError
from repro.service.fleet import Fleet, LocalPoolBackend, SweepParams
from repro.service.http import (
    ExperimentService,
    ServiceError,
    _parse_query,
    make_server,
)
from repro.service.queue import JobQueue
from repro.service.store import ArtifactStore

#: Small enough to simulate in milliseconds, large enough to be real.
TINY = {"experiment": "fig3", "instructions": 800, "stride": 27}


@pytest.fixture
def service(tmp_path):
    """A service whose worker thread is NOT running — submissions stay
    queued, so dedup and state assertions cannot race."""
    fleet = Fleet(ArtifactStore(tmp_path), backend=LocalPoolBackend(jobs=1))
    svc = ExperimentService(fleet, start_worker=False)
    yield svc
    svc.queue.close()


# ----------------------------------------------------------------------
# submissions
# ----------------------------------------------------------------------


def test_submit_bad_json_is_400(service):
    with pytest.raises(ServiceError) as err:
        service.handle_submit(b"{not json")
    assert err.value.status == 400


def test_submit_invalid_utf8_is_400(service):
    with pytest.raises(ServiceError) as err:
        service.handle_submit(b"\xff\xfe")
    assert err.value.status == 400


def test_submit_unknown_experiment_is_400(service):
    body = json.dumps({"experiment": "fig9"}).encode()
    with pytest.raises(ServiceError) as err:
        service.handle_submit(body)
    assert err.value.status == 400
    assert "fig9" in str(err.value)


def test_submit_unknown_field_is_400(service):
    body = json.dumps({"experiment": "fig1", "shards": 4}).encode()
    with pytest.raises(ServiceError) as err:
        service.handle_submit(body)
    assert err.value.status == 400
    assert "shards" in str(err.value)


def test_submit_invalid_param_types_are_400(service):
    for overlay in (
        {"instructions": -1},
        {"instructions": "many"},
        {"stride": 0},
        {"limit": 0},
        {"engine": "quantum"},
    ):
        payload = dict(TINY)
        payload.update(overlay)
        with pytest.raises(ServiceError) as err:
            service.handle_submit(json.dumps(payload).encode())
        assert err.value.status == 400


def test_submit_enqueues_and_dedups_in_flight(service):
    first = service.handle_submit(json.dumps(TINY).encode())
    assert first["state"] == "queued"
    assert first["created"] is True
    # Identical params while the job is still queued: same job, no new
    # queue entry.
    second = service.handle_submit(json.dumps(TINY).encode())
    assert second["job"] == first["job"]
    assert second["created"] is False
    # Different params: a distinct job.
    other = dict(TINY, stride=28)
    third = service.handle_submit(json.dumps(other).encode())
    assert third["job"] != first["job"]
    assert third["created"] is True
    assert service.queue.describe()["queued"] == 2


def test_unknown_job_is_404(service):
    with pytest.raises(ServiceError) as err:
        service.handle_job("job-999")
    assert err.value.status == 404


# ----------------------------------------------------------------------
# renders
# ----------------------------------------------------------------------


def test_unknown_figure_is_404(service):
    with pytest.raises(ServiceError) as err:
        service.handle_render("figures", "fig9", {})
    assert err.value.status == 404


def test_table_name_on_figure_route_is_404(service):
    with pytest.raises(ServiceError) as err:
        service.handle_render("figures", "tab1", {})
    assert err.value.status == 404


def test_render_bad_params_are_400(service):
    with pytest.raises(ServiceError) as err:
        service.handle_render("figures", "fig3", {"stride": -1})
    assert err.value.status == 400


def test_render_cold_then_warm(service):
    cold = service.handle_render(
        "figures", "fig3", {"instructions": 800, "stride": 27}
    )
    assert cold.simulations > 0
    warm = service.handle_render(
        "figures", "fig3", {"instructions": 800, "stride": 27}
    )
    assert warm.simulations == 0
    assert warm.warm_artifact is True
    assert warm.text == cold.text


def test_unknown_artifact_is_404(service):
    with pytest.raises(ServiceError) as err:
        service.handle_artifact("f" * 64)
    assert err.value.status == 404


def test_parse_query_coerces_ints_and_rejects_junk():
    assert _parse_query("instructions=800&stride=27&engine=vector") == {
        "instructions": 800,
        "stride": 27,
        "engine": "vector",
    }
    with pytest.raises(ServiceError) as err:
        _parse_query("instructions=lots")
    assert err.value.status == 400


# ----------------------------------------------------------------------
# queue mechanics
# ----------------------------------------------------------------------


def test_queue_take_runs_and_settles():
    queue = JobQueue()
    job, created = queue.submit("sweep", "fp-1", None)
    assert created
    taken = queue.take(timeout=1.0)
    assert taken is job
    assert taken.state == "running"
    # A running job still dedups new submissions onto itself.
    again, created = queue.submit("sweep", "fp-1", None)
    assert again is job and not created
    queue.finish(job, {"simulations": 0})
    assert queue.wait(job.id, timeout=1.0).state == "done"
    # Settled jobs no longer absorb submissions.
    fresh, created = queue.submit("sweep", "fp-1", None)
    assert created and fresh.id != job.id


def test_queue_failed_job_reports_error():
    queue = JobQueue()
    job, _ = queue.submit("sweep", "fp-2", None)
    queue.take(timeout=1.0)
    queue.fail(job, "boom")
    settled = queue.wait(job.id, timeout=1.0)
    assert settled.state == "failed"
    assert settled.to_dict()["error"] == "boom"


def test_queue_close_unblocks_take():
    queue = JobQueue()
    queue.close()
    assert queue.take(timeout=5.0) is None  # returns immediately


# ----------------------------------------------------------------------
# end to end over a real socket
# ----------------------------------------------------------------------


def test_server_round_trip(tmp_path):
    fleet = Fleet(ArtifactStore(tmp_path), backend=LocalPoolBackend(jobs=1))
    server = make_server("127.0.0.1", 0, fleet)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        client = ServiceClient(f"http://127.0.0.1:{server.server_address[1]}")
        submitted = client.submit_sweep(dict(TINY))
        done = client.wait(submitted["job"], timeout=120.0)
        assert done["result"]["simulations"] > 0
        text, simulations = client.figure(
            "fig3", instructions=800, stride=27
        )
        assert simulations == 0  # the job warmed the store
        assert "fig3" in done["result"]["experiment"]
        artifact = client.artifact(done["result"]["artifact_key"])
        assert artifact["text"] == text
        status = client.status()
        assert status["jobs"]["done"] == 1
        exposition = client.metrics()
        assert "repro_http_requests_total" in exposition
        with pytest.raises(ClientError) as err:
            client.figure("fig9")
        assert err.value.status == 404
        with pytest.raises(ClientError) as err:
            client.job("job-999")
        assert err.value.status == 404
    finally:
        server.service.stop()
        server.shutdown()
        server.server_close()
