"""Property tests over ChampSim's branch-deduction rule sets.

Enumerate every register-usage signature over {IP, SP, FLAGS, other} and
check global properties of the ORIGINAL vs PATCHED rules — in particular
that the paper's two patches only ever move branches *into* the
conditional class, never out of any other class.
"""

import itertools


from repro.champsim.branch_info import BranchRules, BranchType, deduce_branch_type
from repro.champsim.regs import (
    REG_FLAGS,
    REG_INSTRUCTION_POINTER as IP,
    REG_STACK_POINTER as SP,
)
from repro.champsim.trace import ChampSimInstr

OTHER = 31

#: All subsets of the interesting source registers...
_SRC_SETS = [
    tuple(s)
    for r in range(4)
    for s in itertools.combinations((IP, SP, REG_FLAGS, OTHER), r)
]
#: ...and destination registers (2 slots max).
_DST_SETS = [
    tuple(s) for r in range(3) for s in itertools.combinations((IP, SP), r)
]


def _all_signatures():
    for src in _SRC_SETS:
        for dst in _DST_SETS:
            yield ChampSimInstr(
                ip=0x1000,
                is_branch=True,
                branch_taken=True,
                src_regs=src,
                dst_regs=dst,
            )


def test_deduction_is_total():
    """Every signature maps to exactly one type under both rule sets."""
    for instr in _all_signatures():
        for rules in BranchRules:
            assert deduce_branch_type(instr, rules) in BranchType


def test_patches_only_create_conditionals():
    """Where the rule sets disagree, PATCHED turns INDIRECT/OTHER into
    CONDITIONAL — the two Section 3.2.2 patches.  The single exception is
    a signature no converter emits (writes SP without reading it while
    reading IP+other), which the stricter indirect rule demotes to OTHER.
    """
    disagreements = []
    for instr in _all_signatures():
        original = deduce_branch_type(instr, BranchRules.ORIGINAL)
        patched = deduce_branch_type(instr, BranchRules.PATCHED)
        if original is not patched:
            disagreements.append((instr, original, patched))
    assert disagreements, "the patches must change something"
    for instr, original, patched in disagreements:
        if patched is BranchType.OTHER:
            # The inexpressible signature: SP written but never read.
            assert instr.writes(SP) and not instr.reads(SP)
            continue
        assert patched is BranchType.CONDITIONAL
        assert original in (BranchType.INDIRECT, BranchType.OTHER)


def test_calls_and_returns_identical_across_rules():
    for instr in _all_signatures():
        original = deduce_branch_type(instr, BranchRules.ORIGINAL)
        if original in (
            BranchType.DIRECT_CALL,
            BranchType.INDIRECT_CALL,
            BranchType.RETURN,
            BranchType.DIRECT_JUMP,
        ):
            assert deduce_branch_type(instr, BranchRules.PATCHED) is original


def test_every_category_is_reachable():
    reachable = {
        deduce_branch_type(instr, BranchRules.ORIGINAL)
        for instr in _all_signatures()
    }
    for branch_type in (
        BranchType.DIRECT_JUMP,
        BranchType.INDIRECT,
        BranchType.CONDITIONAL,
        BranchType.DIRECT_CALL,
        BranchType.INDIRECT_CALL,
        BranchType.RETURN,
    ):
        assert branch_type in reachable
