"""repro.faults — deterministic fault injection + retry policy.

Off by default: with ``REPRO_FAULTS`` unset and no plan installed, every
injection site collapses to one cached ``None`` check.  A plan (from the
environment or :func:`install`) schedules faults per site with
deterministic counters — same plan, same workload, same fault sequence —
which is what the chaos tests lean on to assert that recovered runs are
byte-identical to fault-free runs.

Sites compiled into the production code:

======================  ================================================
``worker.crash``        hard worker death (``os._exit``) in the pool
``worker.hang``         worker sleeps ``seconds`` (tests task timeouts)
``worker.exc``          transient :class:`InjectedFault` raise
``cache.corrupt``       bit-flip a just-written cache entry
``cache.truncate``      drop the second half of a just-written entry
``io.cvp.truncate``     CVP block read ends mid-record
``io.champsim.truncate``ChampSim block read ends mid-record
======================  ================================================

:class:`RetryPolicy` lives here too: it is the recovery half of the same
story, and the chaos tier exercises the two together.
"""

from __future__ import annotations

from repro.faults.inject import (
    CRASH_EXIT_CODE,
    FAULTS_ENV,
    FAULTS_PID_ENV,
    InjectedFault,
    active_plan,
    corrupt_file,
    enabled,
    fire,
    in_worker,
    install,
    reset_for_worker,
    store_fault,
    truncate_read,
    worker_preamble,
)
from repro.faults.plan import (
    KNOWN_SITES,
    FaultPlan,
    FaultPlanError,
    FaultSpec,
)
from repro.faults.retry import DEFAULT_FATAL, RetryPolicy, exception_name

__all__ = [
    "CRASH_EXIT_CODE",
    "DEFAULT_FATAL",
    "FAULTS_ENV",
    "FAULTS_PID_ENV",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedFault",
    "KNOWN_SITES",
    "RetryPolicy",
    "active_plan",
    "corrupt_file",
    "enabled",
    "exception_name",
    "fire",
    "in_worker",
    "install",
    "reset_for_worker",
    "store_fault",
    "truncate_read",
    "worker_preamble",
]
