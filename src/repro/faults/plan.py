"""Seeded, deterministic fault plans — *what* to break, *when*.

A :class:`FaultPlan` is a set of :class:`FaultSpec` entries, one per
injection **site**.  Sites are dotted names compiled into the production
code (``worker.crash``, ``cache.corrupt``, ``io.cvp.truncate`` ...); the
plan decides, per process and per site, which calls at that site fire.

Decisions are *counter-based*, never probabilistic: every process keeps
an eligible-call counter per site, and a spec fires on calls
``start``, ``start+every``, ``start+2*every`` ... up to ``count`` total
fires.  Two runs of the same plan over the same workload therefore
inject byte-identical fault sequences — which is what lets the chaos
tests assert that recovered runs equal fault-free runs exactly.

Plans travel through the ``REPRO_FAULTS`` environment variable (so pool
workers inherit them across ``fork``/``spawn``) in a compact spec
grammar::

    REPRO_FAULTS="worker.crash:count=1;worker.hang:seconds=8:start=2"

i.e. ``;``-separated site entries, each ``site[:key=value]...`` with
integer/float values.  :meth:`FaultPlan.parse` and
:meth:`FaultPlan.to_spec` round-trip the grammar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: Known injection sites, for spec validation (typos must fail loudly,
#: not silently inject nothing).
KNOWN_SITES = frozenset(
    {
        # experiments/parallel.py worker preamble
        "worker.crash",
        "worker.hang",
        "worker.exc",
        # experiments/cache.py + analysis/cache.py store paths
        "cache.corrupt",
        "cache.truncate",
        # cvp/blockio.py buffered reads
        "io.cvp.truncate",
        # champsim/trace.py block reads
        "io.champsim.truncate",
    }
)

_INT_KEYS = frozenset({"count", "start", "every"})
_FLOAT_KEYS = frozenset({"seconds"})


class FaultPlanError(ValueError):
    """A ``REPRO_FAULTS`` spec string that cannot be parsed."""


@dataclass(frozen=True)
class FaultSpec:
    """One site's injection schedule.

    Args:
        site: Dotted injection-site name (member of :data:`KNOWN_SITES`).
        count: Maximum number of fires per process (0 = unlimited).
        start: Eligible calls to skip before the first fire.
        every: Fire on every ``every``-th eligible call after ``start``.
        seconds: Duration knob (hang sleep length), where meaningful.
    """

    site: str
    count: int = 1
    start: int = 0
    every: int = 1
    seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; known: "
                + ", ".join(sorted(KNOWN_SITES))
            )
        if self.count < 0 or self.start < 0 or self.every < 1:
            raise FaultPlanError(
                f"invalid schedule for {self.site}: count>=0, start>=0, "
                f"every>=1 required"
            )

    def fires_on(self, call_index: int, fires_so_far: int) -> bool:
        """Whether the ``call_index``-th eligible call (0-based) fires."""
        if self.count and fires_so_far >= self.count:
            return False
        if call_index < self.start:
            return False
        return (call_index - self.start) % self.every == 0

    def to_spec(self) -> str:
        """The grammar fragment for this spec (defaults omitted)."""
        parts = [self.site]
        if self.count != 1:
            parts.append(f"count={self.count}")
        if self.start:
            parts.append(f"start={self.start}")
        if self.every != 1:
            parts.append(f"every={self.every}")
        if self.seconds != 60.0:
            parts.append(f"seconds={self.seconds:g}")
        return ":".join(parts)


@dataclass(frozen=True)
class FaultPlan:
    """A full injection schedule: one :class:`FaultSpec` per site."""

    specs: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        for spec in self.specs:
            if spec.site in seen:
                raise FaultPlanError(f"duplicate fault site {spec.site!r}")
            seen.add(spec.site)

    @property
    def by_site(self) -> Dict[str, FaultSpec]:
        return {spec.site: spec for spec in self.specs}

    def spec_for(self, site: str) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.site == site:
                return spec
        return None

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        specs = []
        for entry in text.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            fields = entry.split(":")
            site = fields[0].strip()
            kwargs: Dict[str, float] = {}
            for pair in fields[1:]:
                if "=" not in pair:
                    raise FaultPlanError(
                        f"malformed fault option {pair!r} in {entry!r} "
                        "(expected key=value)"
                    )
                key, _, raw = pair.partition("=")
                key = key.strip()
                try:
                    if key in _INT_KEYS:
                        kwargs[key] = int(raw)
                    elif key in _FLOAT_KEYS:
                        kwargs[key] = float(raw)
                    else:
                        raise FaultPlanError(
                            f"unknown fault option {key!r} in {entry!r}"
                        )
                except ValueError as exc:
                    if isinstance(exc, FaultPlanError):
                        raise
                    raise FaultPlanError(
                        f"non-numeric value {raw!r} for {key!r} in {entry!r}"
                    ) from exc
            specs.append(FaultSpec(site=site, **kwargs))  # type: ignore[arg-type]
        return cls(specs=tuple(specs))

    def to_spec(self) -> str:
        """Serialise back to the env grammar (parse/to_spec round-trip)."""
        return ";".join(spec.to_spec() for spec in self.specs)


@dataclass
class SiteCounters:
    """Per-process eligible-call and fire counters for one plan."""

    calls: Dict[str, int] = field(default_factory=dict)
    fires: Dict[str, int] = field(default_factory=dict)

    def decide(self, spec: FaultSpec) -> bool:
        """Advance the site's call counter; True when this call fires."""
        index = self.calls.get(spec.site, 0)
        self.calls[spec.site] = index + 1
        fired = spec.fires_on(index, self.fires.get(spec.site, 0))
        if fired:
            self.fires[spec.site] = self.fires.get(spec.site, 0) + 1
        return fired

    def reset(self) -> None:
        self.calls.clear()
        self.fires.clear()
