"""Configurable retry with deterministic, seeded exponential backoff.

Replaces the fleet's historical hardcoded retry-once: a
:class:`RetryPolicy` owns how many attempts a task gets, how long to
wait between them (exponential backoff with *seeded deterministic*
jitter — the same task key and attempt always produce the same delay,
so retried sweeps stay reproducible down to their sleep schedule), and
which exception classes are worth retrying at all.

Worker exceptions cross the pool boundary as formatted tracebacks, not
exception objects, so retryability is classified by *exception class
name* — the last ``Type: message`` line of the traceback.  An empty
``retryable`` tuple means "retry everything" (the historic behaviour);
a non-empty tuple whitelists class names (exact or dotted-suffix
match), and ``fatal`` names always win over ``retryable``.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Tuple

#: Exception classes that are never worth a retry, regardless of policy:
#: they signal deliberate interruption or programmer error, and retrying
#: them just repeats the failure slower.
DEFAULT_FATAL = ("KeyboardInterrupt", "SystemExit", "SyntaxError")


def exception_name(traceback_text: str) -> str:
    """The exception class name carried by a formatted traceback.

    Parses the final ``Type: message`` (or bare ``Type``) line of
    ``traceback.format_exc()`` output; returns ``""`` when the text has
    no recognisable terminal line (classification then falls back to
    "retryable").
    """
    for line in reversed(traceback_text.strip().splitlines()):
        line = line.strip()
        if not line or line.startswith(("File ", "Traceback", "^")):
            continue
        head = line.split(":", 1)[0].strip()
        # A class name is a dotted identifier ("ValueError",
        # "repro.faults.inject.InjectedFault").
        if head and all(part.isidentifier() for part in head.split(".")):
            return head
        return ""
    return ""


@dataclass(frozen=True)
class RetryPolicy:
    """How the fleet retries failing tasks.

    Args:
        attempts: Total attempts per task (first try included); >= 1.
        backoff_base: Seconds before the first retry (0 = no waiting,
            the default — keeps fault-free sweeps exactly as fast as
            before).
        backoff_multiplier: Delay growth factor per extra attempt.
        backoff_max: Upper bound on any single delay.
        jitter: Fraction of the delay randomised (deterministically)
            around the nominal value, e.g. 0.2 => +-20%.
        seed: Folded into the jitter hash; two policies with different
            seeds spread retries differently, each reproducibly.
        retryable: Exception class names worth retrying (exact or
            dotted-suffix match); empty = every non-fatal class.
        fatal: Exception class names never retried.
    """

    attempts: int = 2
    backoff_base: float = 0.0
    backoff_multiplier: float = 2.0
    backoff_max: float = 30.0
    jitter: float = 0.0
    seed: int = 0
    retryable: Tuple[str, ...] = ()
    fatal: Tuple[str, ...] = DEFAULT_FATAL

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    @classmethod
    def default(cls) -> "RetryPolicy":
        """The fleet default: two attempts, no backoff delay."""
        return cls()

    @staticmethod
    def _matches(name: str, patterns: Tuple[str, ...]) -> bool:
        return any(
            name == pattern or name.endswith("." + pattern) or pattern == "*"
            for pattern in patterns
        )

    def is_retryable(self, exc_name: str) -> bool:
        """Whether a failure of class ``exc_name`` deserves more attempts."""
        if exc_name and self._matches(exc_name, self.fatal):
            return False
        if not self.retryable:
            return True
        return bool(exc_name) and self._matches(exc_name, self.retryable)

    def classify(self, traceback_text: str) -> Tuple[str, bool]:
        """(exception class name, retryable?) for a worker traceback."""
        name = exception_name(traceback_text)
        return name, self.is_retryable(name)

    def delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before attempt ``attempt + 1`` (deterministic).

        ``attempt`` counts completed attempts (1 after the first
        failure).  The jitter term hashes ``(seed, key, attempt)`` into
        ``[-jitter, +jitter]``, so distinct tasks de-synchronise their
        retries while identical reruns reproduce the exact schedule.
        """
        if self.backoff_base <= 0:
            return 0.0
        nominal = min(
            self.backoff_max,
            self.backoff_base * self.backoff_multiplier ** max(0, attempt - 1),
        )
        if not self.jitter:
            return nominal
        digest = hashlib.sha256(
            f"{self.seed}|{key}|{attempt}".encode("utf-8")
        ).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)  # [0, 1)
        return min(
            self.backoff_max, nominal * (1.0 + self.jitter * (2.0 * unit - 1.0))
        )

    def sleep(self, attempt: int, key: str = "") -> float:
        """Sleep the backoff delay; returns the seconds slept."""
        delay = self.delay(attempt, key)
        if delay > 0:
            time.sleep(delay)
        return delay
