"""Per-process fault-injection state and the site-side helpers.

Production code calls :func:`fire` at compiled-in injection sites; when
no plan is active (the default — ``REPRO_FAULTS`` unset and nothing
installed) this is one cached ``None`` check, so the hot paths pay
nothing.  When a plan is active, :func:`fire` advances the site's
deterministic counter and returns the :class:`FaultSpec` on the calls
that fire.

Process model: :func:`install` writes the plan into ``REPRO_FAULTS`` so
pool workers inherit it, and records the installing PID in
``REPRO_FAULTS_PID``.  Destructive actions distinguish the fleet parent
from its workers through that PID: :func:`crash` hard-kills only worker
processes (``os._exit`` — the realistic SIGKILL/OOM stand-in that breaks
the pool) and degrades to a raised :class:`InjectedFault` in the parent,
so a serial run under a crash plan sees a retryable exception instead of
taking the whole sweep down.

Every injected action emits a ``fault.injected`` obs event (when obs is
on), so chaos runs are auditable from the event log alone.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.faults.plan import FaultPlan, FaultPlanError, FaultSpec, SiteCounters

#: Environment variable carrying the plan spec (see plan.py grammar).
FAULTS_ENV = "REPRO_FAULTS"
#: PID of the process that installed/first-loaded the plan.
FAULTS_PID_ENV = "REPRO_FAULTS_PID"

#: Exit status used by injected worker crashes (distinctive in waitpid).
CRASH_EXIT_CODE = 86


class InjectedFault(RuntimeError):
    """A transient, injected failure (retryable by design)."""


#: Cached plan: ``None`` = not yet loaded, ``_NO_PLAN`` = loaded, none.
_NO_PLAN = FaultPlan(())
_plan: Optional[FaultPlan] = None
_counters = SiteCounters()


def _load_plan() -> FaultPlan:
    """Read ``REPRO_FAULTS`` once per process; cache the result."""
    global _plan
    if _plan is None:
        text = os.environ.get(FAULTS_ENV, "").strip()
        _plan = FaultPlan.parse(text) if text else _NO_PLAN
        if _plan.specs and not os.environ.get(FAULTS_PID_ENV):
            # First process to activate the plan is the fleet parent.
            os.environ[FAULTS_PID_ENV] = str(os.getpid())
    return _plan


def enabled() -> bool:
    """Whether any fault plan is active in this process."""
    return bool(_load_plan().specs)


def active_plan() -> Optional[FaultPlan]:
    """The active plan, or None."""
    plan = _load_plan()
    return plan if plan.specs else None


def install(plan: Optional[FaultPlan]) -> None:
    """Activate ``plan`` for this process and future workers (via env).

    ``install(None)`` clears any active plan.  Counters reset either
    way, so tests get a fresh deterministic schedule per install.
    """
    global _plan
    if plan is None or not plan.specs:
        os.environ.pop(FAULTS_ENV, None)
        os.environ.pop(FAULTS_PID_ENV, None)
        _plan = _NO_PLAN
    else:
        os.environ[FAULTS_ENV] = plan.to_spec()
        os.environ[FAULTS_PID_ENV] = str(os.getpid())
        _plan = plan
    _counters.reset()


def reset_for_worker() -> None:
    """Fresh per-process state after a ``fork`` (pool worker init).

    A forked worker inherits the parent's plan cache *and* its counters;
    left alone, the worker would resume mid-schedule.  Workers re-read
    the environment and count from zero.
    """
    global _plan
    _plan = None
    _counters.reset()


def in_worker() -> bool:
    """True when this process is not the one that installed the plan."""
    pid = os.environ.get(FAULTS_PID_ENV)
    return bool(pid) and pid != str(os.getpid())


def fire(site: str) -> Optional[FaultSpec]:
    """Advance ``site``'s counter; the spec on calls that fire, else None."""
    plan = _load_plan()
    if not plan.specs:
        return None
    spec = plan.spec_for(site)
    if spec is None:
        return None
    if not _counters.decide(spec):
        return None
    _emit_injection(site, spec)
    return spec


def _emit_injection(site: str, spec: FaultSpec) -> None:
    """Audit-trail event for every injected fault (no-op when obs off)."""
    from repro.obs import state as _obs_state

    if not _obs_state.enabled():
        return
    from repro.obs import counter, emit_event

    emit_event(
        "fault.injected",
        {
            "site": site,
            "fire": _counters.fires.get(site, 0),
            "call": _counters.calls.get(site, 0),
            "worker": in_worker(),
        },
    )
    counter(
        "repro_faults_injected_total", "Injected faults by site."
    ).labels(site=site).inc()


# ----------------------------------------------------------------------
# site-side actions
# ----------------------------------------------------------------------


def worker_preamble() -> None:
    """Run the ``worker.*`` sites; called at the top of every task body.

    - ``worker.crash``: hard process death in a pool worker
      (``os._exit`` — no cleanup, no exception, the pool breaks); in
      the fleet parent it degrades to a raised :class:`InjectedFault`
      so serial runs stay recoverable.
    - ``worker.hang``: sleep ``seconds`` (the parent's per-task timeout
      is what should cut this short).
    - ``worker.exc``: raise a transient :class:`InjectedFault`.
    """
    if not enabled():
        return
    spec = fire("worker.crash")
    if spec is not None:
        if in_worker():
            os._exit(CRASH_EXIT_CODE)
        raise InjectedFault(
            "injected worker crash (degraded to an exception outside a "
            "pool worker)"
        )
    spec = fire("worker.hang")
    if spec is not None:
        import time

        time.sleep(spec.seconds)
    spec = fire("worker.exc")
    if spec is not None:
        raise InjectedFault("injected transient worker exception")


def corrupt_file(path: "os.PathLike[str]", truncate: bool = False) -> None:
    """Damage an on-disk artifact in place (corrupt-write simulation).

    ``truncate=False`` flips one byte in the middle of the file;
    ``truncate=True`` drops its second half.  Empty files are left
    alone (nothing to damage).
    """
    try:
        with open(path, "r+b") as stream:
            stream.seek(0, os.SEEK_END)
            size = stream.tell()
            if size == 0:
                return
            if truncate:
                stream.truncate(max(1, size // 2))
            else:
                mid = size // 2
                stream.seek(mid)
                byte = stream.read(1)
                stream.seek(mid)
                stream.write(bytes((byte[0] ^ 0xFF,)) if byte else b"\xff")
    except OSError as exc:
        raise FaultPlanError(
            f"fault injection could not damage {os.fspath(path)!r}: {exc}"
        ) from exc


def store_fault(path: "os.PathLike[str]") -> None:
    """Run the ``cache.*`` sites against a just-written cache entry."""
    if not enabled():
        return
    if fire("cache.corrupt") is not None:
        corrupt_file(path, truncate=False)
    if fire("cache.truncate") is not None:
        corrupt_file(path, truncate=True)


def truncate_read(site: str, data: bytes, keep_floor: int = 1) -> bytes:
    """Run an ``io.*`` short-read site over a just-read buffer.

    When the site fires, returns a truncated copy of ``data`` (at least
    ``keep_floor`` bytes, at most half); otherwise ``data`` unchanged.
    """
    if not enabled() or not data:
        return data
    if fire(site) is None:
        return data
    return data[: max(keep_floor, len(data) // 2)]
