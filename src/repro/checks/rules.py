"""Rule base classes, the registry, and ``--select/--ignore`` logic.

Every source-check rule is a small class with a stable ID (``RC1xx``
determinism, ``RC2xx`` cache-key completeness, ``RC3xx`` worker/pickle
safety, ``RC4xx`` engine parity, ``RC5xx`` failure handling), a default
severity, and a one-line rationale.  Rules self-register on import via :func:`register`;
:func:`resolve_check_rules` implements the same ruff-style prefix
selection as :func:`repro.analysis.rules.resolve_rules` (``--select
RC4`` keeps every parity rule).

Two rule shapes exist:

- :class:`ModuleCheckRule` runs once per source file (the RC1xx and
  most RC3xx rules);
- :class:`ProjectCheckRule` runs once per project and may correlate
  definitions across files (the RC2xx and RC4xx rules) — these locate
  their anchor definitions structurally via
  :class:`~repro.checks.project.CheckProject` lookups and skip silently
  when an anchor is absent, so checking a subtree stays meaningful.
"""

from __future__ import annotations

import abc
import ast
from typing import Dict, Iterator, List, Optional, Sequence, Type

from repro.checks.findings import Finding, Severity
from repro.checks.project import CheckProject, SourceModule


class CheckRule(abc.ABC):
    """Common shape of every source-check rule."""

    #: Stable identifier (``RC101``...), unique across the registry.
    rule_id: str = ""
    #: Default severity of this rule's findings.
    severity: Severity = Severity.ERROR
    #: One-line summary for ``--list-rules`` and the docs catalog.
    title: str = ""
    #: The invariant the rule protects (one sentence, for the catalog).
    rationale: str = ""

    def finding(
        self,
        module: SourceModule,
        node: Optional[ast.AST],
        message: str,
        severity: Optional[Severity] = None,
    ) -> Finding:
        """Build a finding at ``node``'s location in ``module``."""
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            path=module.path,
            line=getattr(node, "lineno", 1) if node is not None else 1,
            message=message,
        )


class ModuleCheckRule(CheckRule):
    """A rule evaluated independently over each source file."""

    @abc.abstractmethod
    def check(
        self, module: SourceModule, project: CheckProject
    ) -> Iterator[Finding]:
        """Yield findings for one module."""


class ProjectCheckRule(CheckRule):
    """A rule correlating definitions across the whole project."""

    @abc.abstractmethod
    def check(self, project: CheckProject) -> Iterator[Finding]:
        """Yield findings for the project."""


_REGISTRY: Dict[str, Type[CheckRule]] = {}


def register(cls: Type[CheckRule]) -> Type[CheckRule]:
    """Class decorator: add a rule class to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate rule id {cls.rule_id!r}: "
            f"{existing.__name__} and {cls.__name__}"
        )
    _REGISTRY[cls.rule_id] = cls
    return cls


def _ensure_rules_loaded() -> None:
    """Import the rule modules so their ``@register`` decorators run."""
    from repro.checks import (  # noqa: F401
        cachekeys,
        determinism,
        parity,
        robustness,
        workers,
    )


def all_check_rule_classes() -> List[Type[CheckRule]]:
    """Every registered rule class, ordered by rule ID."""
    _ensure_rules_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _matches(rule_id: str, patterns: Sequence[str]) -> bool:
    """Ruff-style prefix match: ``RC1`` selects ``RC101``, ``RC102``..."""
    return any(rule_id.startswith(pattern) for pattern in patterns)


def resolve_check_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[CheckRule]:
    """Instantiate the selected rules (all by default, minus ``ignore``).

    ``select`` and ``ignore`` hold exact rule IDs or prefixes.  Unknown
    patterns raise ``ValueError`` so typos fail loudly instead of
    silently checking nothing.
    """
    classes = all_check_rule_classes()
    known_ids = [cls.rule_id for cls in classes]
    for pattern in list(select or []) + list(ignore or []):
        if not any(rule_id.startswith(pattern) for rule_id in known_ids):
            raise ValueError(
                f"unknown rule or prefix {pattern!r}; known: "
                + ", ".join(known_ids)
            )
    chosen = [
        cls
        for cls in classes
        if (not select or _matches(cls.rule_id, select))
        and not (ignore and _matches(cls.rule_id, ignore))
    ]
    return [cls() for cls in chosen]
