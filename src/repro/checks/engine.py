"""The source-check engine: run the rule set over a parsed project.

:class:`CheckRunner` mirrors :class:`repro.analysis.engine.TraceLinter`
one layer up the stack — same registry/severity/exit-code design, but
the input is the repo's own Python source instead of a trace stream.
Module rules run once per file; project rules run once per
:class:`~repro.checks.project.CheckProject` so they can correlate
definitions across files (the RC2xx/RC4xx cross-checks).

A file that fails to parse becomes an ``RC001`` error finding rather
than silently dropping out of every rule's view — a broken file must
fail the gate, not weaken it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.checks.findings import Finding, Severity
from repro.checks.project import CheckProject, SourceModule, parse_module
from repro.checks.rules import (
    CheckRule,
    ModuleCheckRule,
    ProjectCheckRule,
    resolve_check_rules,
)

#: Pseudo-rule ID for files the checker cannot parse.
PARSE_ERROR_RULE_ID = "RC001"


@dataclass
class CheckReport:
    """Outcome of checking one source tree."""

    root: str
    files: int
    findings: List[Finding]
    #: IDs of the rules that ran (selection-dependent; part of the cache key).
    rule_ids: Tuple[str, ...]
    #: True when the report was replayed from the check cache.
    from_cache: bool = False
    #: Findings suppressed by a baseline file (counted, not listed).
    suppressed: int = 0

    def count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings if f.severity is severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.findings:
            return None
        return max(f.severity for f in self.findings)

    def fired_rule_ids(self) -> Tuple[str, ...]:
        return tuple(sorted({f.rule_id for f in self.findings}))

    def describe(self) -> str:
        """One-line summary for CLI output."""
        cached = " (cached)" if self.from_cache else ""
        suppressed = (
            f" suppressed={self.suppressed}" if self.suppressed else ""
        )
        return (
            f"{self.root}: {self.files} file(s), "
            f"errors={self.errors} warnings={self.warnings} "
            f"infos={self.count(Severity.INFO)}{suppressed}{cached}"
        )


@dataclass
class CheckSummary:
    """Aggregate of several reports (the CLI's exit status)."""

    reports: List[CheckReport] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(report.errors for report in self.reports)

    @property
    def warnings(self) -> int:
        return sum(report.warnings for report in self.reports)

    @property
    def max_severity(self) -> Optional[Severity]:
        severities = [
            report.max_severity
            for report in self.reports
            if report.max_severity is not None
        ]
        return max(severities) if severities else None

    def exit_code(self) -> int:
        """0 clean/info, 1 warnings, 2 errors."""
        worst = self.max_severity
        if worst is None or worst is Severity.INFO:
            return 0
        return 2 if worst is Severity.ERROR else 1


class CheckRunner:
    """Check source trees against the registered rule set.

    Args:
        rules: Rule instances to run; default is every registered rule
            (see :func:`repro.checks.rules.resolve_check_rules`).
    """

    def __init__(self, rules: Optional[Sequence[CheckRule]] = None):
        all_rules = (
            list(rules) if rules is not None else resolve_check_rules()
        )
        self.module_rules: List[ModuleCheckRule] = [
            rule for rule in all_rules if isinstance(rule, ModuleCheckRule)
        ]
        self.project_rules: List[ProjectCheckRule] = [
            rule for rule in all_rules if isinstance(rule, ProjectCheckRule)
        ]
        self.rule_ids: Tuple[str, ...] = tuple(
            sorted(rule.rule_id for rule in all_rules)
        )

    def check_project(
        self,
        project: CheckProject,
        root: str = "<memory>",
        parse_errors: Optional[Sequence[Finding]] = None,
    ) -> CheckReport:
        """Run the rule set over an already-parsed project."""
        from repro import obs

        findings: List[Finding] = list(parse_errors or [])
        with obs.span("check.project", root=root) as check_span:
            for module in project.modules:
                for module_rule in self.module_rules:
                    findings.extend(module_rule.check(module, project))
            for project_rule in self.project_rules:
                findings.extend(project_rule.check(project))
            findings.sort(
                key=lambda f: (f.path, f.line, f.rule_id, f.message)
            )
            check_span.set(
                files=len(project.modules), findings=len(findings)
            )
        if obs.enabled():
            obs.counter(
                "repro_check_files_total", "Source files checked."
            ).inc(len(project.modules))
            fires = obs.counter(
                "repro_check_rule_fires_total",
                "Check findings emitted, by rule ID.",
            )
            by_rule: Dict[str, int] = {}
            for finding in findings:
                by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
            for rule_id, fired in by_rule.items():
                fires.labels(rule=rule_id).inc(fired)
        return CheckReport(
            root=root,
            files=len(project.modules),
            findings=findings,
            rule_ids=self.rule_ids,
        )

    def check_paths(
        self, roots: Sequence[Union[str, Path]]
    ) -> CheckReport:
        """Parse every ``.py`` file under ``roots`` and check them."""
        modules: List[SourceModule] = []
        parse_errors: List[Finding] = []
        for path in CheckProject.iter_source_files(roots):
            source = path.read_text(encoding="utf-8")
            display = CheckProject.display_path(path)
            try:
                modules.append(parse_module(display, source))
            except SyntaxError as exc:
                parse_errors.append(
                    Finding(
                        rule_id=PARSE_ERROR_RULE_ID,
                        severity=Severity.ERROR,
                        path=display,
                        line=exc.lineno or 1,
                        message=f"file does not parse: {exc.msg}",
                    )
                )
        project = CheckProject(modules)
        return self.check_project(
            project,
            root=", ".join(str(root) for root in roots),
            parse_errors=parse_errors,
        )


def check_catalog() -> List[Dict[str, str]]:
    """The full rule catalog (ID, severity, title, rationale, family)."""
    from repro.checks.rules import all_check_rule_classes

    families = {
        "RC1": "determinism",
        "RC2": "cache-keys",
        "RC3": "workers",
        "RC4": "parity",
    }
    return [
        {
            "rule_id": cls.rule_id,
            "severity": cls.severity.label,
            "title": cls.title,
            "rationale": cls.rationale,
            "family": families.get(cls.rule_id[:3], "other"),
        }
        for cls in all_check_rule_classes()
    ]
