"""RC1xx — determinism rules over the simulation/conversion packages.

The differential contract (``tests/test_vector_engine_differential.py``)
and the content-addressed caches both assume that simulating or
converting the same inputs yields bit-identical outputs in any process
on any machine.  These rules ban the constructs that silently break
that assumption.  They apply only to modules under the determinism
scope — path components ``sim``, ``core``, ``cvp``, ``cvpsim`` — where
results are produced; CLIs, benchmarks and the observability layer may
legitimately read clocks.

Explicitly allowed (and therefore never flagged):

- ``random.Random(seed)`` instances — seeded RNG is how the SRRIP/TAGE
  models express architected pseudo-randomness reproducibly; only the
  process-global functions (``random.random()``...) are banned.
- ``time.perf_counter`` / ``time.monotonic`` / ``time.process_time`` —
  profiling clocks feed observability metrics, never simulated state.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.findings import Finding
from repro.checks.project import (
    CheckProject,
    SourceModule,
    call_name,
    dotted_name,
)
from repro.checks.rules import ModuleCheckRule, register

#: Path components that place a module in determinism scope.
DETERMINISM_SCOPE = frozenset({"sim", "core", "cvp", "cvpsim"})

#: Process-global ``random`` functions (share the unseeded global RNG).
_GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "seed",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "betavariate",
        "expovariate",
        "getrandbits",
        "triangular",
        "normalvariate",
    }
)

#: Wall-clock reads (value depends on when the code runs).
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

#: Filesystem enumeration with OS-dependent ordering.
_FS_ENUM_NAMES = frozenset(
    {"listdir", "scandir", "iterdir", "glob", "iglob", "rglob"}
)

#: Callables through which set iteration order becomes observable.
_ORDER_SENSITIVE_CONSUMERS = frozenset(
    {"sum", "list", "tuple", "enumerate", "zip", "iter", "next", "join"}
)


def in_determinism_scope(module: SourceModule) -> bool:
    """True when any path component of ``module`` is a scoped package."""
    return any(part in DETERMINISM_SCOPE for part in module.parts)


class _ScopedRule(ModuleCheckRule):
    """Base: skip modules outside the determinism scope."""

    def check(
        self, module: SourceModule, project: CheckProject
    ) -> Iterator[Finding]:
        if not in_determinism_scope(module):
            return
        yield from self.check_scoped(module)

    def check_scoped(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError


def _is_set_expression(node: ast.AST) -> bool:
    """True for set displays, set comprehensions, and ``set(...)`` calls."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register
class GlobalRandomRule(_ScopedRule):
    rule_id = "RC101"
    title = "No process-global random in simulation/conversion code"
    rationale = (
        "The module-level random functions share one unseeded global RNG; "
        "results then depend on import order and call history.  Use a "
        "random.Random(seed) instance owned by the component."
    )

    def check_scoped(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        yield self.finding(
                            module,
                            node,
                            f"'from random import {alias.name}' uses the "
                            "process-global RNG; import random.Random and "
                            "seed an instance instead",
                        )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name.startswith("random.")
                    and name.split(".", 1)[1] in _GLOBAL_RANDOM_FNS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"call to {name}() draws from the unseeded global "
                        "RNG; use a seeded random.Random instance",
                    )


@register
class WallClockRule(_ScopedRule):
    rule_id = "RC102"
    title = "No wall-clock reads in simulation/conversion code"
    rationale = (
        "time.time()/datetime.now() values leak non-reproducible state "
        "into results and cache payloads.  Use time.perf_counter for "
        "durations (allowed): it measures, it never becomes data."
    )

    def check_scoped(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in _WALL_CLOCK_CALLS:
                    yield self.finding(
                        module,
                        node,
                        f"call to {name}() reads the wall clock; use "
                        "time.perf_counter for durations or pass "
                        "timestamps in explicitly",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in ("time", "time_ns"):
                        yield self.finding(
                            module,
                            node,
                            f"'from time import {alias.name}' imports a "
                            "wall-clock read; use perf_counter",
                        )


@register
class IdKeyedMapRule(_ScopedRule):
    rule_id = "RC103"
    title = "No id()-keyed maps or id()-based membership"
    rationale = (
        "id() values are allocation addresses: unstable across runs, "
        "recycled within one.  Keying caches or memos on them makes "
        "results depend on the allocator."
    )

    _KEYED_METHODS = frozenset(
        {"get", "setdefault", "pop", "add", "discard", "remove"}
    )

    def check_scoped(self, module: SourceModule) -> Iterator[Finding]:
        parents = module.parent_map()
        for node in module.walk():
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                continue
            parent = parents.get(node)
            keyed = False
            if isinstance(parent, ast.Subscript) and parent.slice is node:
                keyed = True
            elif isinstance(parent, ast.Dict) and node in parent.keys:
                keyed = True
            elif (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Attribute)
                and parent.func.attr in self._KEYED_METHODS
                and parent.args
                and parent.args[0] is node
            ):
                keyed = True
            elif isinstance(parent, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops
            ):
                keyed = True
            if keyed:
                yield self.finding(
                    module,
                    node,
                    "id() used as a map key / membership probe; key on "
                    "stable content (a field tuple or digest) instead",
                )


@register
class BuiltinHashRule(_ScopedRule):
    rule_id = "RC104"
    title = "No builtin hash() in simulation/conversion code"
    rationale = (
        "hash() of str/bytes is salted by PYTHONHASHSEED, so values "
        "differ across worker processes.  Use hashlib for digests or "
        "key on the value itself."
    )

    def check_scoped(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield self.finding(
                    module,
                    node,
                    "builtin hash() is PYTHONHASHSEED-dependent for "
                    "str/bytes; use hashlib.sha256 or a stable key",
                )


@register
class SetIterationRule(_ScopedRule):
    rule_id = "RC105"
    title = "No order-sensitive iteration over set expressions"
    rationale = (
        "Set iteration order depends on hash salts and insertion "
        "history; iterating one into results (or float accumulation via "
        "sum()) is run-dependent.  sorted()/min()/max()/len() remain "
        "fine: they are order-insensitive."
    )

    def check_scoped(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            sites = []
            if isinstance(node, ast.For) and _is_set_expression(node.iter):
                sites.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)
            ):
                sites.extend(
                    gen.iter
                    for gen in node.generators
                    if _is_set_expression(gen.iter)
                )
            elif isinstance(node, ast.Call):
                consumer = call_name(node)
                if consumer in _ORDER_SENSITIVE_CONSUMERS:
                    sites.extend(
                        arg for arg in node.args if _is_set_expression(arg)
                    )
            for site in sites:
                yield self.finding(
                    module,
                    site,
                    "iteration over a set expression is order-unstable "
                    "(and float accumulation over one is value-unstable); "
                    "sort it first",
                )


@register
class UnsortedFsEnumRule(_ScopedRule):
    rule_id = "RC106"
    title = "Filesystem enumeration must be wrapped in sorted()"
    rationale = (
        "os.listdir/Path.glob order is filesystem-dependent; suites, "
        "fixtures and sweeps must process files in a deterministic "
        "order or results and cache keys drift across machines."
    )

    def check_scoped(self, module: SourceModule) -> Iterator[Finding]:
        parents = module.parent_map()
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name not in _FS_ENUM_NAMES:
                continue
            parent = parents.get(node)
            wrapped = (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id == "sorted"
            )
            if not wrapped:
                yield self.finding(
                    module,
                    node,
                    f"{name}() enumerates the filesystem in OS order; "
                    "wrap the call in sorted(...)",
                )
