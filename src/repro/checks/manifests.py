"""Pinned key-coverage manifests checked by the RC2xx rules.

``SIM_CONFIG_KEY_FIELDS`` records every :class:`~repro.sim.config.SimConfig`
field that has been *verified to reach the run-cache key* (via
:func:`repro.experiments.cache.config_fingerprint`, which serialises the
whole dataclass).  RC202 cross-checks the live dataclass against this
tuple in both directions:

- a SimConfig field missing here fails the build — adding a config knob
  forces the author to confirm, at commit time, that the knob reaches
  the cache key (and the engines; see RC402) before acknowledging it;
- a name listed here that no longer exists on SimConfig fails the
  build — the manifest can never go stale silently.

This is the commit-time tripwire for the PR 1 bug class: a config field
that influences results but not cache identity aliases distinct runs to
one cache entry.
"""

from __future__ import annotations

from typing import Tuple

#: Every SimConfig field acknowledged as cache-key-covered.  Append new
#: fields ONLY after verifying they reach
#: ``repro.experiments.cache.run_key`` (RC201 checks the derivation
#: itself stays full-coverage).
SIM_CONFIG_KEY_FIELDS: Tuple[str, ...] = (
    "name",
    "engine",
    "fetch_width",
    "dispatch_width",
    "exec_width",
    "retire_width",
    "rob_size",
    "prf_size",
    "frontend_depth",
    "mispredict_restart",
    "taken_bubble",
    "btb_miss_penalty",
    "direction_predictor",
    "btb_entries",
    "btb_ways",
    "ras_size",
    "indirect_predictor",
    "ideal_targets",
    "decoupled_frontend",
    "fdip_lookahead",
    "l1i",
    "l1d",
    "l2",
    "llc",
    "dram_latency",
    "l1d_prefetcher",
    "l2_prefetcher",
    "l1i_prefetcher",
    "alu_latency",
    "branch_latency",
    "warmup_fraction",
)
