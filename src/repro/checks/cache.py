"""Content-addressed cache for check reports (keeps the CI gate fast).

Checking is a pure function of the source bytes and the selected rules,
so reports are cached under the SHA-256 of exactly those inputs,
reusing the layout and atomic-write machinery of
:mod:`repro.experiments.cache`::

    <cache_dir>/checks/<key[:2]>/<key>.json

The key folds in every file's content digest (sorted by path, so
filesystem order cannot perturb it), :data:`CHECK_SCHEMA` for the
payload layout, and :data:`CHECK_RULESET_VERSION`, which must be bumped
whenever any rule's behaviour changes — stale reports then simply never
hit.  Baselines are applied *after* cache replay, so editing a baseline
never needs a cache flush.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.checks.engine import CheckReport
from repro.checks.findings import Finding
from repro.checks.project import CheckProject
from repro.experiments.cache import _atomic_write_json, default_cache_dir
from repro.obs.instruments import CacheCounters, InstrumentedCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.checks.engine import CheckRunner

#: Bump on any change to the serialised report payload.
CHECK_SCHEMA = 1

#: Bump whenever any rule's behaviour changes (new rules, changed
#: checks, changed messages) — cached reports from older rule sets must
#: miss.
#: 4: robustness scope covers ``service``; RC204 checks ``*Store``
#: classes and accepts delegation to them.
CHECK_RULESET_VERSION = 4


def check_key(
    file_digests: Sequence[tuple],
    rule_ids: Sequence[str],
) -> str:
    """Content hash identifying one check run.

    ``file_digests`` is ``[(path, sha256), ...]``; it is sorted here so
    callers cannot accidentally make the key enumeration-order
    dependent.
    """
    payload = {
        "schema": CHECK_SCHEMA,
        "ruleset": CHECK_RULESET_VERSION,
        "files": sorted([list(pair) for pair in file_digests]),
        "rules": sorted(rule_ids),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def report_to_dict(report: CheckReport) -> dict:
    """JSON-safe payload for one :class:`CheckReport`."""
    return {
        "root": report.root,
        "files": report.files,
        "rule_ids": list(report.rule_ids),
        "findings": [f.to_dict() for f in report.findings],
    }


def report_from_dict(payload: dict, from_cache: bool = False) -> CheckReport:
    return CheckReport(
        root=payload["root"],
        files=payload["files"],
        findings=[Finding.from_dict(entry) for entry in payload["findings"]],
        rule_ids=tuple(payload["rule_ids"]),
        from_cache=from_cache,
    )


class CheckCache(InstrumentedCache):
    """On-disk store of check reports, keyed by :func:`check_key`."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.counters = CacheCounters("checks")

    def _path(self, key: str) -> Path:
        return self.root / "checks" / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[CheckReport]:
        """The cached report for ``key``, or None (counted as hit/miss)."""
        try:
            payload = json.loads(self._path(key).read_text())
            if payload.get("schema") != CHECK_SCHEMA:
                raise ValueError("schema mismatch")
            report = report_from_dict(payload["report"], from_cache=True)
        except (OSError, ValueError, KeyError, TypeError):
            self.counters.miss()
            return None
        self.counters.hit()
        return report

    def store(self, key: str, report: CheckReport) -> None:
        payload = {"schema": CHECK_SCHEMA, "report": report_to_dict(report)}
        try:
            _atomic_write_json(self._path(key), payload)
        except OSError:
            self.counters.store_error()
            return
        self.counters.store()

    def describe(self) -> str:
        return (
            f"{self.counters.describe_hit_miss()} stores={self.stores} "
            f"dir={self.root}"
        )


def check_paths_cached(
    runner: "CheckRunner",
    roots: Sequence[Union[str, Path]],
    cache: Optional[CheckCache],
) -> CheckReport:
    """Check ``roots`` through ``cache`` (straight check when ``None``).

    The key needs every file's digest, so the sources are read either
    way; on a hit the parse and the rule passes are skipped, which is
    where the time goes.
    """
    if cache is None:
        return runner.check_paths(roots)
    digests = [
        (
            CheckProject.display_path(path),
            hashlib.sha256(path.read_bytes()).hexdigest(),
        )
        for path in CheckProject.iter_source_files(roots)
    ]
    key = check_key(digests, runner.rule_ids)
    cached = cache.load(key)
    if cached is not None:
        return cached
    report = runner.check_paths(roots)
    cache.store(key, report)
    return report
