"""``repro-check`` — AST-based invariant auditor for the repo's source.

Audits Python source trees against the RC rule catalog — determinism
(RC1xx), cache-key completeness (RC2xx), worker/pickle safety (RC3xx),
and scalar/vector engine parity (RC4xx)::

    repro-check src/repro                       # the CI gate
    repro-check src/repro --select RC4          # just the parity diff
    repro-check src/repro --format json
    repro-check src/repro --write-baseline checks-baseline.json

The exit code reflects the worst surviving finding: 0 (clean or info),
1 (warnings), 2 (errors) — so CI can gate on ``repro-check`` directly.

When ``checks-baseline.json`` exists in the current directory it is
applied automatically (like a linter config file); ``--no-baseline``
disables that, ``--baseline PATH`` points elsewhere.  Baseline entries
must carry a justification — see :mod:`repro.checks.baseline`.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import obs
from repro.obs import logutil

#: Applied automatically when present in the working directory.
DEFAULT_BASELINE = "checks-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description=(
            "Audit Python source against the repo's determinism, "
            "cache-key, worker-safety, and engine-parity invariants."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", help="source files or directories to check"
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule IDs/prefixes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule IDs/prefixes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--baseline",
        help=(
            "baseline JSON file; suppress the findings recorded in it "
            f"(default: ./{DEFAULT_BASELINE} when present)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="do not apply any baseline, not even the default one",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record every surviving finding into PATH and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "check-result cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="re-check every file even when cached results match",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    obs.add_obs_flags(parser)
    logutil.add_logging_flags(parser)
    return parser


def _split_patterns(values: Sequence[str]) -> List[str]:
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def _resolve_baseline_path(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE)
    return default if default.is_file() else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logutil.configure_from_args(args)
    obs.setup_cli("repro-check", args)

    from repro.checks.reporters import (
        render_check_catalog,
        render_json,
        render_text,
    )

    if args.list_rules:
        print(render_check_catalog())
        return 0
    if not args.paths:
        print("repro-check: no paths given", file=sys.stderr)
        return 2

    from repro.checks.baseline import (
        load_check_baseline,
        suppress_check_report,
        write_check_baseline,
    )
    from repro.checks.cache import CheckCache, check_paths_cached
    from repro.checks.engine import CheckRunner, CheckSummary
    from repro.checks.rules import resolve_check_rules

    try:
        rules = resolve_check_rules(
            select=_split_patterns(args.select) or None,
            ignore=_split_patterns(args.ignore) or None,
        )
    except ValueError as exc:
        print(f"repro-check: {exc}", file=sys.stderr)
        return 2

    runner = CheckRunner(rules=rules)
    cache = None if args.no_cache else CheckCache(args.cache_dir)

    baseline = None
    baseline_path = _resolve_baseline_path(args)
    if baseline_path is not None:
        try:
            baseline = load_check_baseline(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(
                f"repro-check: cannot read baseline: {exc}", file=sys.stderr
            )
            return 2

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        for path in missing:
            print(f"repro-check: {path}: no such path", file=sys.stderr)
        return 2

    try:
        report = check_paths_cached(runner, args.paths, cache)
    except OSError as exc:
        print(f"repro-check: {exc}", file=sys.stderr)
        return 2
    if baseline is not None:
        report = suppress_check_report(report, baseline)
    reports = [report]

    if args.write_baseline:
        count = write_check_baseline(args.write_baseline, reports)
        print(
            f"[baseline {args.write_baseline}: {count} finding(s) recorded]"
        )
        return 0

    if args.format == "json":
        print(render_json(reports))
    else:
        print(render_text(reports))
        if cache is not None:
            print(f"[check cache {cache.describe()}]")
    return CheckSummary(reports=reports).exit_code()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
