"""RC5xx — failure-handling rules over the fleet packages.

The hardened experiment fleet treats every failure as structured data:
tasks are retried under a policy, corrupt cache entries are quarantined
with a ``cache.corrupt`` event, pool losses emit ``pool.*`` events.
That contract dies quietly the first time someone writes ``except
Exception: pass`` on a recovery path — the failure still happens, but
nothing counts it, nothing reports it, and the chaos tests cannot see
it.  These rules apply to the robustness scope — path components
``experiments``, ``faults``, and ``service``, where recovery decisions
live:

- **RC501** requires every ``except`` handler to do at least one
  observable thing with the failure: re-raise, raise a typed error,
  emit a structured obs event, bump a counter (``.miss()``,
  ``.store_error()``, ``.quarantine()``, ``.inc()``...), capture the
  traceback (``format_exc``), or report to stderr.  A handler doing
  none of those swallows the failure invisibly.
- **RC502** bans bare ``except:`` outright — it catches
  ``KeyboardInterrupt`` and ``SystemExit``, turning Ctrl-C into an
  infinite retry loop.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.findings import Finding
from repro.checks.project import CheckProject, SourceModule
from repro.checks.rules import ModuleCheckRule, register

#: Path components that place a module in robustness scope.  The
#: service tier joined in ruleset 4: its HTTP handlers and queue worker
#: are long-running recovery paths where a swallowed exception turns
#: into a silently wedged job.
ROBUSTNESS_SCOPE = frozenset({"experiments", "faults", "service"})

#: Attribute-call names that count as "recording the failure": the
#: cache/journal counter protocol plus metric increments.
_RECORDING_ATTRS = frozenset(
    {
        "miss",
        "store_error",
        "quarantine",
        "inc",
        "warning",
        "error",
        "exception",
        "append",  # collecting the failure for a later report
    }
)


def _in_scope(module: SourceModule) -> bool:
    return any(part in ROBUSTNESS_SCOPE for part in module.parts)


def _call_handles_failure(call: ast.Call) -> bool:
    """Whether one call inside a handler makes the failure observable."""
    func = call.func
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    else:
        return False
    if "emit" in name or "quarantine" in name:
        return True
    if name == "format_exc":
        return True
    if name == "print":
        # Only stderr reporting counts; stdout prints are CLI output,
        # not failure reporting.
        for keyword in call.keywords:
            if keyword.arg == "file":
                return True
        return False
    return name in _RECORDING_ATTRS


def _handler_is_observable(handler: ast.ExceptHandler) -> bool:
    """Whether a handler re-raises, raises typed, or records the failure."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and _call_handles_failure(node):
            return True
    return False


class _ScopedRule(ModuleCheckRule):
    """Shared scope gate for the RC5xx family."""

    def check(
        self, module: SourceModule, project: CheckProject
    ) -> Iterator[Finding]:
        if not _in_scope(module):
            return
        yield from self.check_scoped(module)

    def check_scoped(self, module: SourceModule) -> Iterator[Finding]:
        raise NotImplementedError


@register
class SilentExceptRule(_ScopedRule):
    rule_id = "RC501"
    title = "Except handlers in fleet code must surface the failure"
    rationale = (
        "A swallowed exception on a recovery path hides real failures "
        "from the obs events, counters, and chaos tests that the "
        "hardened fleet is built around; every handler must re-raise, "
        "raise a typed error, or record what it caught."
    )

    def check_scoped(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.ExceptHandler):
                continue
            if _handler_is_observable(node):
                continue
            yield self.finding(
                module,
                node,
                "except handler swallows the failure: re-raise, raise a "
                "typed error, emit a structured obs event, or bump a "
                "failure counter",
            )


@register
class BareExceptRule(_ScopedRule):
    rule_id = "RC502"
    title = "No bare except in fleet code"
    rationale = (
        "bare `except:` catches KeyboardInterrupt and SystemExit, so a "
        "retry loop around it turns Ctrl-C into an unkillable sweep; "
        "catch Exception (or narrower) instead."
    )

    def check_scoped(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module,
                    node,
                    "bare except catches KeyboardInterrupt/SystemExit; "
                    "catch Exception or a narrower class",
                )
