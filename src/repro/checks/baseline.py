"""Check baselines: suppress acknowledged findings, surface new ones.

Same adoption mechanics as :mod:`repro.analysis.baseline` — a JSON file
of finding fingerprints — with one deliberate addition: every entry
carries a **justification** explaining why the finding is acceptable.
A checker whose suppressions are unexplained rots into a mute checker;
a baseline whose entries say *why* stays reviewable (and
:func:`load_check_baseline` rejects entries with an empty one).

Fingerprints (:meth:`repro.checks.findings.Finding.fingerprint`) omit
the line number, so reformatting the file around an acknowledged
finding does not resurrect it.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple, Union

from repro.checks.engine import CheckReport
from repro.checks.findings import Finding

CHECK_BASELINE_SCHEMA = 1


def write_check_baseline(
    path: Union[str, Path],
    reports: Iterable[CheckReport],
    justifications: Optional[Mapping[str, str]] = None,
) -> int:
    """Record every finding of ``reports``; returns the entry count.

    ``justifications`` maps fingerprints (or rule IDs, as a coarser
    fallback) to the reason the finding is acceptable; entries without
    one get the placeholder ``"TODO: justify"`` so review catches them.
    """
    justifications = dict(justifications or {})
    entries: Dict[str, Dict[str, str]] = {}
    for report in reports:
        for finding in report.findings:
            fingerprint = finding.fingerprint()
            entries[fingerprint] = {
                "finding": finding.render(),
                "justification": justifications.get(
                    fingerprint,
                    justifications.get(finding.rule_id, "TODO: justify"),
                ),
            }
    payload = {
        "schema": CHECK_BASELINE_SCHEMA,
        "findings": {fp: entries[fp] for fp in sorted(entries)},
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return len(entries)


def load_check_baseline(path: Union[str, Path]) -> Set[str]:
    """The suppressed fingerprints in a baseline file.

    Raises ``ValueError`` on schema mismatch or on any entry missing a
    non-empty justification — unexplained suppressions fail loudly.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != CHECK_BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path} has schema {payload.get('schema')!r}; "
            f"expected {CHECK_BASELINE_SCHEMA}"
        )
    findings = payload["findings"]
    for fingerprint, entry in findings.items():
        justification = (entry or {}).get("justification", "")
        if not str(justification).strip():
            raise ValueError(
                f"baseline {path} entry {fingerprint} has no "
                "justification; every suppression must say why"
            )
    return set(findings)


def apply_check_baseline(
    findings: Iterable[Finding], baseline: Set[str]
) -> Tuple[List[Finding], int]:
    """Split findings into (kept, suppressed-count)."""
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        if finding.fingerprint() in baseline:
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed


def suppress_check_report(
    report: CheckReport, baseline: Set[str]
) -> CheckReport:
    """A copy of ``report`` with baselined findings suppressed."""
    kept, suppressed = apply_check_baseline(report.findings, baseline)
    return CheckReport(
        root=report.root,
        files=report.files,
        findings=kept,
        rule_ids=report.rule_ids,
        from_cache=report.from_cache,
        suppressed=report.suppressed + suppressed,
    )
