"""RC2xx — cache-key completeness rules.

The run cache, the lint cache and the runner memo all assume their keys
cover *every* input that can change the output.  PR 1 shipped exactly
this bug: the experiment memo keyed on ``(name, l1i_prefetcher)``, so
two configs sharing a name aliased to one result.  These rules make the
class of bug fail the build:

- **RC201** verifies the run-key derivation
  (:func:`repro.experiments.cache.config_fingerprint` /
  :func:`~repro.experiments.cache.run_key`) provably covers every
  ``SimConfig`` field — either via ``dataclasses.asdict`` (full
  coverage by construction) or by explicit enumeration, cross-checked
  field by field.
- **RC202** pins the ``SimConfig`` field list against the
  :data:`~repro.checks.manifests.SIM_CONFIG_KEY_FIELDS` manifest, so a
  *new* field fails until its key coverage is acknowledged.
- **RC203** inspects the ``ExperimentRunner`` memo keys: any key that
  projects the config to an attribute (``config.name``...) instead of
  the full object is the PR 1 aliasing bug again.
- **RC204** requires every persistent cache class to schema-stamp its
  stored payloads and schema-check them on load, so layout changes
  read as misses instead of misdecodes.

All four locate their anchors structurally (a dataclass named
``SimConfig``, a function named ``config_fingerprint``...) and skip
silently when the anchor is outside the checked tree.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from repro.checks.findings import Finding
from repro.checks.project import (
    CheckProject,
    SourceModule,
    dataclass_field_names,
    dotted_name,
    string_constants,
)
from repro.checks.rules import ProjectCheckRule, register

#: Call names that serialise a whole dataclass (full key coverage).
_FULL_COVERAGE_CALLS = frozenset(
    {"asdict", "dataclasses.asdict", "fields", "dataclasses.fields"}
)

#: Persistence markers: a load/store pair touching any of these is an
#: on-disk cache and must schema-stamp its payloads.
_PERSISTENCE_CALLS = frozenset(
    {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
        "open",
        "loads",
        "dumps",
        "load",
        "dump",
        "_atomic_write_json",
        "atomic_write_json",
    }
)


def _sim_config_fields(
    project: CheckProject,
) -> Optional[Tuple[SourceModule, ast.ClassDef, List[str]]]:
    found = project.find_class("SimConfig")
    if found is None:
        return None
    module, node = found
    return module, node, dataclass_field_names(node)


def _function_calls(node: ast.AST) -> Set[str]:
    """Dotted names of every call under ``node``."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            name = dotted_name(sub.func)
            if name:
                out.add(name)
    return out


@register
class RunKeyCoverageRule(ProjectCheckRule):
    rule_id = "RC201"
    title = "Run-key derivation must cover every SimConfig field"
    rationale = (
        "config_fingerprint() feeds run_key(); if it enumerates fields "
        "explicitly and misses one, two configs differing only in that "
        "field share a cache entry."
    )

    def check(self, project: CheckProject) -> Iterator[Finding]:
        anchor = _sim_config_fields(project)
        fingerprint = project.find_function("config_fingerprint")
        if anchor is None or fingerprint is None:
            return
        _, _, config_fields = anchor
        fp_module, fp_node = fingerprint

        calls = _function_calls(fp_node)
        full_coverage = bool(
            calls
            & _FULL_COVERAGE_CALLS | {c for c in calls if c.endswith(".asdict")}
        )
        if not full_coverage:
            covered = set(string_constants(fp_node))
            covered |= {
                node.attr
                for node in ast.walk(fp_node)
                if isinstance(node, ast.Attribute)
            }
            missing = [f for f in config_fields if f not in covered]
            if missing:
                for name in missing:
                    yield self.finding(
                        fp_module,
                        fp_node,
                        f"config_fingerprint() never serialises SimConfig "
                        f"field {name!r}; runs differing only in it would "
                        "alias to one cache entry",
                    )
            elif not covered & set(config_fields):
                yield self.finding(
                    fp_module,
                    fp_node,
                    "config_fingerprint() neither calls dataclasses.asdict "
                    "nor enumerates SimConfig fields; key coverage cannot "
                    "be verified",
                )

        run_key = project.find_function("run_key")
        if run_key is not None:
            rk_module, rk_node = run_key
            rk_calls = _function_calls(rk_node)
            uses_fingerprint = "config_fingerprint" in rk_calls or any(
                c.endswith("config_fingerprint") or c.endswith("asdict")
                for c in rk_calls
            )
            if not uses_fingerprint:
                yield self.finding(
                    rk_module,
                    rk_node,
                    "run_key() does not derive its config component via "
                    "config_fingerprint()/asdict(); the key may not cover "
                    "every SimConfig field",
                )


@register
class ConfigKeyManifestRule(ProjectCheckRule):
    rule_id = "RC202"
    title = "SimConfig fields must match the pinned key manifest"
    rationale = (
        "SIM_CONFIG_KEY_FIELDS records which fields were verified to "
        "reach the cache key; a new field fails the build until its "
        "coverage is acknowledged, a removed field cannot linger."
    )

    def check(self, project: CheckProject) -> Iterator[Finding]:
        anchor = _sim_config_fields(project)
        if anchor is None:
            return
        cfg_module, cfg_node, config_fields = anchor
        found = project.find_assignment("SIM_CONFIG_KEY_FIELDS")
        if found is None:
            # Deleting the manifest must not dodge the rule.
            yield self.finding(
                cfg_module,
                cfg_node,
                "SimConfig is defined but no SIM_CONFIG_KEY_FIELDS "
                "manifest is in the checked tree; the key-coverage "
                "tripwire cannot run",
            )
            return
        manifest_module, manifest_node = found
        value = getattr(manifest_node, "value", None)
        manifest_fields: Sequence[str] = (
            tuple(string_constants(value)) if value is not None else ()
        )
        manifest_set = set(manifest_fields)
        for name in config_fields:
            if name not in manifest_set:
                yield self.finding(
                    cfg_module,
                    cfg_node,
                    f"SimConfig field {name!r} is not acknowledged in "
                    "SIM_CONFIG_KEY_FIELDS; verify it reaches run_key() "
                    "(and both engines, RC402) then add it to the "
                    "manifest",
                )
        field_set = set(config_fields)
        for name in manifest_fields:
            if name not in field_set:
                yield self.finding(
                    manifest_module,
                    manifest_node,
                    f"SIM_CONFIG_KEY_FIELDS entry {name!r} names no "
                    "current SimConfig field; remove the stale entry",
                )


@register
class MemoKeyAliasingRule(ProjectCheckRule):
    rule_id = "RC203"
    title = "Runner memo keys must carry the full config object"
    rationale = (
        "The PR 1 bug: memo keys built from config *projections* "
        "(config.name, config.l1i_prefetcher) alias configs that "
        "differ in any unprojected field."
    )

    _MEMO_ATTRS = frozenset({"_runs"})

    def _memo_key_tuples(
        self, func: ast.AST
    ) -> List[ast.Tuple]:
        """Tuple expressions that index the memo dict inside ``func``."""
        tuples: List[ast.Tuple] = []
        named_tuples = {}
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Tuple
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        named_tuples.setdefault(target.id, node.value)
        for node in ast.walk(func):
            if not isinstance(node, ast.Subscript):
                continue
            value = node.value
            if not (
                isinstance(value, ast.Attribute)
                and value.attr in self._MEMO_ATTRS
            ):
                continue
            index = node.slice
            if isinstance(index, ast.Tuple):
                tuples.append(index)
            elif isinstance(index, ast.Name) and index.id in named_tuples:
                tuples.append(named_tuples[index.id])
        return tuples

    def check(self, project: CheckProject) -> Iterator[Finding]:
        anchor = project.find_class("ExperimentRunner")
        if anchor is None:
            return
        module, cls_node = anchor
        seen: Set[int] = set()
        for func in cls_node.body:
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for key_tuple in self._memo_key_tuples(func):
                if id(key_tuple) in seen:
                    continue
                seen.add(id(key_tuple))
                has_full_config = False
                for element in key_tuple.elts:
                    if (
                        isinstance(element, ast.Name)
                        and element.id == "config"
                    ):
                        has_full_config = True
                    elif (
                        isinstance(element, ast.Attribute)
                        and isinstance(element.value, ast.Name)
                        and element.value.id == "config"
                    ):
                        yield self.finding(
                            module,
                            element,
                            f"memo key projects the config to "
                            f"'config.{element.attr}'; key on the full "
                            "config object so unprojected fields cannot "
                            "alias",
                        )
                if not has_full_config:
                    yield self.finding(
                        module,
                        key_tuple,
                        "memo key tuple omits the full config object; "
                        "configs differing in unkeyed fields would alias",
                    )


@register
class CacheSchemaStampRule(ProjectCheckRule):
    rule_id = "RC204"
    title = "Persistent caches must schema-stamp and schema-check"
    rationale = (
        "An on-disk payload read by a newer layout must miss, not "
        "misdecode: store() embeds a 'schema' field, load() verifies "
        "it before trusting the payload.  A cache may instead delegate "
        "persistence to a *Store class — which this rule then holds to "
        "the same contract."
    )

    def _delegates_to_store(self, node: ast.ClassDef) -> bool:
        """Whether the class hands persistence to a ``*Store`` instance.

        Delegation (``self._blobs = BlobStore(...)`` in ``__init__``,
        load/store forwarding to it) moves the stamping obligation to
        the store class, which this rule checks directly.
        """
        return any(
            call.rsplit(".", 1)[-1].endswith("Store")
            for call in _function_calls(node)
        )

    def check(self, project: CheckProject) -> Iterator[Finding]:
        for module in project.modules:
            for node in module.tree.body:
                if not (
                    isinstance(node, ast.ClassDef)
                    and node.name.endswith(("Cache", "Store"))
                ):
                    continue
                methods = {
                    stmt.name: stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                }
                load_fn = methods.get("load")
                store_fn = methods.get("store")
                if load_fn is None or store_fn is None:
                    continue
                calls = _function_calls(load_fn) | _function_calls(store_fn)
                persistent = any(
                    call.rsplit(".", 1)[-1] in _PERSISTENCE_CALLS
                    for call in calls
                )
                if not persistent:
                    continue
                if node.name.endswith("Cache") and self._delegates_to_store(
                    node
                ):
                    continue
                if "schema" not in string_constants(store_fn):
                    yield self.finding(
                        module,
                        store_fn,
                        f"{node.name}.store() writes payloads without a "
                        "'schema' stamp; layout changes would misdecode "
                        "instead of missing",
                    )
                if "schema" not in string_constants(load_fn):
                    yield self.finding(
                        module,
                        load_fn,
                        f"{node.name}.load() never checks the payload "
                        "'schema'; stale layouts would misdecode instead "
                        "of missing",
                    )
