"""``repro-check``: static analysis of the repo's own Python source.

Where :mod:`repro.analysis` (``repro-lint``) enforces the paper's
conversion invariants over *trace data*, this package enforces the
pipeline's correctness invariants over the *code itself*:

- **RC1xx determinism** — the simulator/converter packages must stay
  bit-reproducible across processes and machines: no global RNG, no
  wall-clock reads, no ``id()``-keyed maps, no ``PYTHONHASHSEED``-
  dependent ``hash()``, no iteration over unordered sets, no unsorted
  filesystem enumeration.
- **RC2xx cache-key completeness** — every field of the experiment
  configuration must provably reach the content-addressed cache keys
  (the class of bug PR 1 fixed: a ``(name, l1i_prefetcher)`` memo key
  aliasing distinct configs).
- **RC3xx worker/pickle safety** — functions and payloads crossing the
  :mod:`repro.experiments.parallel` process-pool boundary must be
  picklable and free of captured mutable state.
- **RC4xx engine parity** — the scalar and vector engines must update
  the same :class:`~repro.sim.stats.SimStats` counters and honour the
  same :class:`~repro.sim.config.SimConfig` knobs, statically, before
  the differential tests ever run.

The architecture mirrors :mod:`repro.analysis`: small rule classes with
stable IDs registered by decorator, ruff-style ``--select/--ignore``
prefix selection, severity-driven exit codes, baseline suppression with
per-finding justifications, and a content-addressed report cache.
"""

from repro.checks.engine import (  # noqa: F401
    CheckReport,
    CheckRunner,
    CheckSummary,
    check_catalog,
)
from repro.checks.findings import Finding, Severity  # noqa: F401
from repro.checks.project import CheckProject, SourceModule  # noqa: F401
from repro.checks.rules import (  # noqa: F401
    CheckRule,
    ModuleCheckRule,
    ProjectCheckRule,
    resolve_check_rules,
)
