"""Text and JSON rendering of check reports for the ``repro-check`` CLI."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.checks.cache import report_to_dict
from repro.checks.engine import CheckReport, CheckSummary
from repro.checks.findings import Severity


def render_text(reports: Sequence[CheckReport]) -> str:
    """GCC-style one-finding-per-line text report with a summary."""
    lines: List[str] = []
    for report in reports:
        for finding in report.findings:
            lines.append(finding.render())
        lines.append(report.describe())
    summary = CheckSummary(reports=list(reports))
    infos = sum(r.count(Severity.INFO) for r in reports)
    lines.append(
        f"[check {len(reports)} root(s): errors={summary.errors} "
        f"warnings={summary.warnings} infos={infos}]"
    )
    return "\n".join(lines)


def render_json(reports: Sequence[CheckReport]) -> str:
    """Machine-readable report (stable schema for CI consumption)."""
    summary = CheckSummary(reports=list(reports))
    payload = {
        "version": 1,
        "reports": [
            {
                **report_to_dict(report),
                "from_cache": report.from_cache,
                "suppressed": report.suppressed,
                "errors": report.errors,
                "warnings": report.warnings,
            }
            for report in reports
        ],
        "summary": {
            "roots": len(list(reports)),
            "errors": summary.errors,
            "warnings": summary.warnings,
            "exit_code": summary.exit_code(),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_check_catalog() -> str:
    """Human-readable rule listing for ``repro-check --list-rules``."""
    from repro.checks.engine import check_catalog

    lines = []
    for entry in check_catalog():
        lines.append(
            f"{entry['rule_id']}  {entry['severity']:<7}  "
            f"[{entry['family']}]  {entry['title']}"
        )
    return "\n".join(lines)
