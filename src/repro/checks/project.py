"""Source-tree loading: parse every module once, share the ASTs.

:class:`CheckProject` is the unit the checker operates on — a set of
parsed :class:`SourceModule` objects plus lookup helpers the project
rules use to find their anchor definitions (``SimConfig``,
``config_fingerprint``, the two engines) *structurally*, by class or
function name, rather than by hard-coded paths.  That keeps the rules
robust to refactors and lets the negative-control fixtures under
``tests/fixtures/checks/`` replay each violation in a miniature tree.

Files are enumerated in sorted order (an RC106 discipline the checker
itself must honour: report order and cache keys must not depend on
filesystem iteration order).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: Directories never scanned (generated or environment content).
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache"})


@dataclass
class SourceModule:
    """One parsed Python source file."""

    path: str
    tree: ast.Module
    source: str
    #: SHA-256 of the source bytes (feeds the report-cache key).
    digest: str
    #: Path components (``('src', 'repro', 'sim', 'engine.py')``) —
    #: scope rules match on these, not on the dotted module name.
    parts: Tuple[str, ...] = ()
    _parents: Optional[Dict[ast.AST, ast.AST]] = field(
        default=None, repr=False, compare=False
    )

    def parent_map(self) -> Dict[ast.AST, ast.AST]:
        """child-node -> parent-node map for this module (built once)."""
        if self._parents is None:
            parents: Dict[ast.AST, ast.AST] = {}
            for node in ast.walk(self.tree):
                for child in ast.iter_child_nodes(node):
                    parents[child] = node
            self._parents = parents
        return self._parents

    def walk(self) -> Iterator[ast.AST]:
        return ast.walk(self.tree)


def parse_module(path: str, source: str) -> SourceModule:
    """Parse one source string into a :class:`SourceModule`.

    Raises ``SyntaxError`` — the caller (the engine) converts parse
    failures into ``RC001`` findings so a broken file fails the check
    run instead of silently dropping out of every rule's view.
    """
    return SourceModule(
        path=path,
        tree=ast.parse(source, filename=path),
        source=source,
        digest=hashlib.sha256(source.encode("utf-8")).hexdigest(),
        parts=tuple(Path(path).parts),
    )


class CheckProject:
    """A set of parsed modules plus structural lookup helpers."""

    def __init__(self, modules: Sequence[SourceModule]):
        self.modules: List[SourceModule] = sorted(
            modules, key=lambda m: m.path
        )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def iter_source_files(
        cls, roots: Sequence[Union[str, Path]]
    ) -> List[Path]:
        """Every ``.py`` file under ``roots``, sorted, deduplicated."""
        seen: Dict[Path, None] = {}
        for root in roots:
            root = Path(root)
            if root.is_file():
                candidates = [root]
            else:
                candidates = sorted(root.rglob("*.py"))
            for candidate in candidates:
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    seen.setdefault(candidate, None)
        return sorted(seen)

    @staticmethod
    def display_path(path: Path) -> str:
        """CWD-relative rendering when possible.

        Keeps reports readable and — because
        :meth:`~repro.checks.findings.Finding.fingerprint` includes the
        path — keeps baseline fingerprints identical whether the tree
        was named relatively or absolutely.
        """
        try:
            return str(path.resolve().relative_to(Path.cwd()))
        except ValueError:
            return str(path)

    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "CheckProject":
        """Build a project from in-memory ``{path: source}`` (tests)."""
        return cls(
            [parse_module(path, text) for path, text in sources.items()]
        )

    # ------------------------------------------------------------------
    # structural lookups
    # ------------------------------------------------------------------

    def find_classes(
        self, name: str
    ) -> List[Tuple[SourceModule, ast.ClassDef]]:
        """Every top-level class definition named ``name``."""
        out = []
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == name:
                    out.append((module, node))
        return out

    def find_class(
        self, name: str
    ) -> Optional[Tuple[SourceModule, ast.ClassDef]]:
        """The first top-level class named ``name``, or None."""
        found = self.find_classes(name)
        return found[0] if found else None

    def find_function(
        self, name: str
    ) -> Optional[Tuple[SourceModule, ast.FunctionDef]]:
        """The first top-level function named ``name``, or None."""
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, ast.FunctionDef) and node.name == name:
                    return module, node
        return None

    def find_assignment(
        self, name: str
    ) -> Optional[Tuple[SourceModule, ast.AST]]:
        """The first module-level assignment binding ``name``, or None."""
        for module in self.modules:
            for node in module.tree.body:
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Name) and target.id == name:
                            return module, node
                elif isinstance(node, ast.AnnAssign):
                    target = node.target
                    if isinstance(target, ast.Name) and target.id == name:
                        return module, node
        return None


# ----------------------------------------------------------------------
# small AST helpers shared by the rule modules
# ----------------------------------------------------------------------


def call_name(node: ast.Call) -> str:
    """The called name — ``f`` for ``f(...)`` and ``o.f(...)`` alike."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def dotted_name(node: ast.AST) -> str:
    """``a.b.c`` for nested Attribute/Name chains ('' when dynamic)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def dataclass_field_names(cls_node: ast.ClassDef) -> List[str]:
    """Annotated field names of a (data)class body, in source order."""
    fields = []
    for stmt in cls_node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            name = stmt.target.id
            if not name.startswith("_"):
                fields.append(name)
    return fields


def string_constants(node: ast.AST) -> List[str]:
    """Every string-literal constant anywhere under ``node``."""
    return [
        sub.value
        for sub in ast.walk(node)
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
    ]
