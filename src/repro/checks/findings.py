"""Structured findings emitted by the source-check rules.

A :class:`Finding` pins one violation to a (file, line) location, the
way :class:`~repro.analysis.diagnostics.Diagnostic` pins trace findings
to (trace, record index, PC).  The shared
:class:`~repro.analysis.diagnostics.Severity` ordering drives the CLI
exit code; :meth:`Finding.fingerprint` is the identity baselines use to
suppress acknowledged findings — it deliberately excludes the *line*
number, so baselined findings survive unrelated edits above them as
long as the file and message are stable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict

from repro.analysis.diagnostics import Severity

__all__ = ["Finding", "Severity"]


@dataclass(frozen=True)
class Finding:
    """One violation of one rule at one source location.

    Attributes:
        rule_id: The rule that fired (``RC101``...).
        severity: How bad the finding is (may differ from the rule's
            default severity).
        path: Path of the offending file, as given to the checker
            (kept relative when the scanned root was relative, so
            reports and baselines are machine-independent).
        line: 1-based source line of the offending node.
        message: Human-readable description of the violation.
    """

    rule_id: str
    severity: Severity
    path: str
    line: int
    message: str

    def fingerprint(self) -> str:
        """Stable identity for baseline suppression (line-independent)."""
        raw = f"{self.rule_id}|{self.path}|{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.label,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        return cls(
            rule_id=payload["rule_id"],
            severity=Severity.from_label(payload["severity"]),
            path=payload["path"],
            line=payload["line"],
            message=payload["message"],
        )

    def render(self) -> str:
        """One-line text form: ``path:line: RCxxx error: msg``."""
        return (
            f"{self.path}:{self.line}: "
            f"{self.rule_id} {self.severity.label}: {self.message}"
        )
