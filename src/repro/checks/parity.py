"""RC4xx — scalar/vector engine parity rules.

``VectorEngine`` reimplements ``Engine``'s cycle loop as batched sweeps;
``tests/test_vector_engine_differential.py`` proves the two produce
identical numbers *for the counters both engines update*.  A counter
update deleted from one side — or a config field only one side reads —
is invisible to the differential harness whenever the golden expectations
regenerate alongside.  These rules diff the two implementations
statically:

- **RC401** compares which ``SimStats`` counter fields each side
  updates.  Scalar updates flow through the recorder methods
  (``stats.count_branch()``...), so the rule first derives, from the
  ``SimStats`` class body itself, which fields each recorder touches,
  then credits a recorder call with all of them.
- **RC402** compares which ``SimConfig`` fields each side reads: a knob
  honoured by one engine and ignored by the other makes "same config,
  different engine" silently non-comparable.
- **RC403** requires ``SimStats.to_dict()`` to export every counter
  field, so a new counter cannot be invisible in results and reports
  (and, because RC401 keys off the field list, cannot dodge parity).
- **RC404** extends parity *below* the engines to the batched component
  twins: a method named ``<stem>_batch``/``<stem>_run`` whose stem
  resolves into sibling scalar methods (``prefetch_data_run`` →
  ``prefetch_data``; ``predict_update_batch`` → ``predict`` + ``update``)
  must touch every counter-like ``self`` attribute — and make every
  ``SimStats`` recorder call — that its scalar counterparts do.  The
  engine-level RC401 diff cannot see these: both engines import the
  component module, so it lands on neither side.

Side membership is derived structurally, not from hard-coded paths.
``VectorEngine`` subclasses ``Engine``, so code splits three ways:

- *compared* — the ``Engine`` methods ``VectorEngine`` overrides (the
  scalar implementations) versus the whole ``VectorEngine`` body;
- *exclusive modules* — modules imported by only one engine module (the
  scalar cache hierarchy vs. the flat hierarchy) join that side;
- *shared* — inherited ``Engine`` methods, module-level helpers, and
  modules both sides import run identically for both engines, so they
  are excluded from both sides (as is the ``SimStats`` module itself,
  which trivially mentions every field).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.findings import Finding
from repro.checks.project import (
    CheckProject,
    SourceModule,
    call_name,
    dataclass_field_names,
    dotted_name,
    string_constants,
)
from repro.checks.rules import ProjectCheckRule, register


def _counter_fields(stats_cls: ast.ClassDef) -> List[str]:
    """Annotated non-bool fields of SimStats (the reported counters)."""
    counters = []
    for stmt in stats_cls.body:
        if not (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and not stmt.target.id.startswith("_")
        ):
            continue
        annotation = stmt.annotation
        if isinstance(annotation, ast.Name) and annotation.id == "bool":
            continue
        counters.append(stmt.target.id)
    return counters


def _recorder_map(
    stats_cls: ast.ClassDef, counter_fields: List[str]
) -> Dict[str, Set[str]]:
    """method name -> counter fields that method writes (``self.X``)."""
    fields = set(counter_fields)
    recorders: Dict[str, Set[str]] = {}
    for stmt in stats_cls.body:
        if not isinstance(stmt, ast.FunctionDef):
            continue
        touched = {
            node.attr
            for node in ast.walk(stmt)
            if isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in fields
        }
        if touched:
            recorders[stmt.name] = touched
    return recorders


def _import_suffixes(module: SourceModule) -> List[Tuple[str, ...]]:
    """Path suffixes for every module imported by ``module``.

    ``from repro.sim.flathier import FlatHierarchy`` yields
    ``('repro', 'sim', 'flathier.py')``; relative imports resolve
    against the importing module's own directory.
    """
    suffixes: List[Tuple[str, ...]] = []
    package = module.parts[:-1]
    for node in module.walk():
        if isinstance(node, ast.Import):
            for alias in node.names:
                suffixes.append(tuple(alias.name.split(".")))
        elif isinstance(node, ast.ImportFrom):
            dotted = tuple(node.module.split(".")) if node.module else ()
            if node.level:
                base = package[: len(package) - (node.level - 1)]
                suffixes.append(tuple(base) + dotted)
            else:
                suffixes.append(dotted)
    return [s[:-1] + (s[-1] + ".py",) for s in suffixes if s]


def _resolve_imports(
    module: SourceModule, project: CheckProject
) -> Set[str]:
    """Paths of project modules that ``module`` imports."""
    resolved: Set[str] = set()
    by_suffix = {m.parts: m for m in project.modules}
    for suffix in _import_suffixes(module):
        package_suffix = suffix[:-1] + (
            suffix[-1][: -len(".py")],
            "__init__.py",
        )
        for candidate_parts, candidate in by_suffix.items():
            if (
                candidate_parts[-len(suffix):] == suffix
                or candidate_parts[-len(package_suffix):] == package_suffix
            ):
                resolved.add(candidate.path)
    return resolved


#: One comparable code region: a module plus the subtree to scan.
Region = Tuple[SourceModule, ast.AST]


@dataclass
class EngineSides:
    """The two comparable sides plus their anchor modules."""

    scalar_module: SourceModule
    vector_module: SourceModule
    scalar_regions: List[Region]
    vector_regions: List[Region]


def _engine_sides(project: CheckProject) -> Optional[EngineSides]:
    """Comparable regions of the two engines, or None if either is absent."""
    scalar = project.find_class("Engine")
    vector = project.find_class("VectorEngine")
    if scalar is None or vector is None:
        return None
    mod_a, cls_a = scalar
    mod_b, cls_b = vector
    stats = project.find_class("SimStats")
    stats_path = stats[0].path if stats is not None else None

    methods_a = {
        stmt.name: stmt
        for stmt in cls_a.body
        if isinstance(stmt, ast.FunctionDef)
    }
    methods_b = {
        stmt.name
        for stmt in cls_b.body
        if isinstance(stmt, ast.FunctionDef)
    }
    overridden = sorted(set(methods_a) & methods_b)
    regions_a: List[Region] = [(mod_a, methods_a[name]) for name in overridden]
    regions_b: List[Region] = [(mod_b, cls_b)]

    imports_a = _resolve_imports(mod_a, project)
    imports_b = _resolve_imports(mod_b, project)
    shared = imports_a & imports_b
    excluded = shared | {mod_a.path, mod_b.path}
    if stats_path is not None:
        excluded = excluded | {stats_path}

    by_path = {m.path: m for m in project.modules}
    regions_a += [
        (by_path[p], by_path[p].tree) for p in sorted(imports_a - excluded)
    ]
    regions_b += [
        (by_path[p], by_path[p].tree) for p in sorted(imports_b - excluded)
    ]
    return EngineSides(mod_a, mod_b, regions_a, regions_b)


def _mentions_field(
    side: List[Region],
    field_name: str,
    recorders: Dict[str, Set[str]],
) -> bool:
    """True when any side region updates ``field_name`` directly or via
    a recorder-method call."""
    implied = {m for m, touched in recorders.items() if field_name in touched}
    for _, region in side:
        for node in ast.walk(region):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr == field_name:
                return True
            if node.attr in implied:
                return True
    return False


@register
class StatsWriteParityRule(ProjectCheckRule):
    rule_id = "RC401"
    title = "Both engines must update every SimStats counter"
    rationale = (
        "A counter update deleted from one engine is invisible to "
        "regenerated golden expectations; the two implementations then "
        "report different physics for 'the same' run."
    )

    def check(self, project: CheckProject) -> Iterator[Finding]:
        stats = project.find_class("SimStats")
        sides = _engine_sides(project)
        if stats is None or sides is None:
            return
        _, stats_cls = stats
        counters = _counter_fields(stats_cls)
        recorders = _recorder_map(stats_cls, counters)
        for field_name in counters:
            in_a = _mentions_field(sides.scalar_regions, field_name, recorders)
            in_b = _mentions_field(sides.vector_regions, field_name, recorders)
            if in_a and not in_b:
                yield self.finding(
                    sides.vector_module,
                    None,
                    f"vector engine side never updates "
                    f"SimStats.{field_name}; the scalar engine does — "
                    "the engines disagree on reported counters",
                )
            elif in_b and not in_a:
                yield self.finding(
                    sides.scalar_module,
                    None,
                    f"scalar engine side never updates "
                    f"SimStats.{field_name}; the vector engine does — "
                    "the engines disagree on reported counters",
                )


@register
class ConfigReadParityRule(ProjectCheckRule):
    rule_id = "RC402"
    title = "Both engines must read the same SimConfig fields"
    rationale = (
        "A config knob honoured by one engine and ignored by the other "
        "makes cross-engine comparisons of 'the same config' silently "
        "meaningless."
    )

    def _config_reads(
        self, side: List[Region], config_fields: Set[str]
    ) -> Set[str]:
        reads: Set[str] = set()
        for _, region in side:
            for node in ast.walk(region):
                if not (
                    isinstance(node, ast.Attribute)
                    and node.attr in config_fields
                ):
                    continue
                receiver = dotted_name(node.value)
                if receiver == "cfg" or receiver.endswith("config"):
                    reads.add(node.attr)
        return reads

    def check(self, project: CheckProject) -> Iterator[Finding]:
        config = project.find_class("SimConfig")
        sides = _engine_sides(project)
        if config is None or sides is None:
            return
        _, config_cls = config
        fields = set(dataclass_field_names(config_cls))
        reads_a = self._config_reads(sides.scalar_regions, fields)
        reads_b = self._config_reads(sides.vector_regions, fields)
        for field_name in sorted(reads_a - reads_b):
            yield self.finding(
                sides.vector_module,
                None,
                f"vector engine side never reads "
                f"config.{field_name}; the scalar engine does — the "
                "knob silently has no effect on one engine",
            )
        for field_name in sorted(reads_b - reads_a):
            yield self.finding(
                sides.scalar_module,
                None,
                f"scalar engine side never reads "
                f"config.{field_name}; the vector engine does — the "
                "knob silently has no effect on one engine",
            )


@register
class StatsExportRule(ProjectCheckRule):
    rule_id = "RC403"
    title = "SimStats.to_dict must export every counter field"
    rationale = (
        "A counter missing from to_dict() is invisible in results, "
        "reports, and the RC401 parity diff; new counters must be "
        "wired through before they can silently drift."
    )

    def check(self, project: CheckProject) -> Iterator[Finding]:
        stats = project.find_class("SimStats")
        if stats is None:
            return
        module, stats_cls = stats
        to_dict = next(
            (
                stmt
                for stmt in stats_cls.body
                if isinstance(stmt, ast.FunctionDef)
                and stmt.name == "to_dict"
            ),
            None,
        )
        if to_dict is None:
            yield self.finding(
                module,
                stats_cls,
                "SimStats has no to_dict(); counters cannot be "
                "exported to results and reports",
            )
            return
        exported = set(string_constants(to_dict))
        for field_name in _counter_fields(stats_cls):
            if field_name not in exported:
                yield self.finding(
                    module,
                    to_dict,
                    f"SimStats.to_dict() never exports "
                    f"{field_name!r}; the counter is invisible in "
                    "results and parity checks",
                )


def _partition_stem(stem: str, siblings: Set[str]) -> Optional[List[str]]:
    """Greedy left-to-right partition of ``stem`` into sibling method
    names, longest match first.

    ``predict_update`` with siblings ``{predict, update}`` yields
    ``['predict', 'update']``; ``prefetch_data`` with a sibling named
    exactly that yields the one-element list.  ``None`` when any token
    run fails to resolve — the method is then not a batched twin and
    RC404 leaves it alone.
    """
    tokens = stem.split("_")
    parts: List[str] = []
    i = 0
    while i < len(tokens):
        for j in range(len(tokens), i, -1):
            candidate = "_".join(tokens[i:j])
            if candidate in siblings:
                parts.append(candidate)
                i = j
                break
        else:
            return None
    return parts


def _augassigned_self_attrs(cls_node: ast.ClassDef) -> Set[str]:
    """``self`` attributes any method of the class ``+=``-updates —
    the structural signature of a counter."""
    return {
        node.target.attr
        for node in ast.walk(cls_node)
        if isinstance(node, ast.AugAssign)
        and isinstance(node.target, ast.Attribute)
        and isinstance(node.target.value, ast.Name)
        and node.target.value.id == "self"
    }


def _counter_mentions(fn: ast.FunctionDef, interesting: Set[str]) -> Set[str]:
    """Counter attributes and recorder names ``fn`` mentions.

    A bare attribute read counts: the batched twin may fold a counter
    into a local and add it once, and that still 'touches' the counter
    the way RC401 credits mentions.
    """
    return {
        node.attr
        for node in ast.walk(fn)
        if isinstance(node, ast.Attribute) and node.attr in interesting
    }


@register
class BatchTwinParityRule(ProjectCheckRule):
    rule_id = "RC404"
    title = "Batched twins must update the counters their scalar counterparts do"
    rationale = (
        "A batched component method that drops a counter update made "
        "by its per-call counterpart diverges the engines' reported "
        "physics whenever the batch fast path runs — and the "
        "engine-level parity diff cannot see it, because component "
        "modules are imported by both engines and so sit on neither side."
    )

    def check(self, project: CheckProject) -> Iterator[Finding]:
        stats = project.find_class("SimStats")
        recorder_names: Set[str] = set()
        if stats is not None:
            _, stats_cls = stats
            recorder_names = set(
                _recorder_map(stats_cls, _counter_fields(stats_cls))
            )
        for module in project.modules:
            for cls_node in module.tree.body:
                if not isinstance(cls_node, ast.ClassDef):
                    continue
                methods = {
                    stmt.name: stmt
                    for stmt in cls_node.body
                    if isinstance(stmt, ast.FunctionDef)
                }
                interesting = _augassigned_self_attrs(cls_node) | recorder_names
                if not interesting:
                    continue
                for name, twin in sorted(methods.items()):
                    if not name.endswith(("_batch", "_run")):
                        continue
                    siblings = set(methods) - {name}
                    parts = _partition_stem(name[: name.rfind("_")], siblings)
                    if not parts:
                        continue
                    required: Set[str] = set()
                    for counterpart in parts:
                        required |= _counter_mentions(
                            methods[counterpart], interesting
                        )
                    touched = _counter_mentions(twin, interesting)
                    # A twin that delegates per-item work to a sibling
                    # method inherits that sibling's counter updates.
                    delegates = {
                        call_name(node)
                        for node in ast.walk(twin)
                        if isinstance(node, ast.Call)
                    } & siblings
                    for delegate in delegates:
                        touched |= _counter_mentions(
                            methods[delegate], interesting
                        )
                    missing = sorted(required - touched)
                    if missing:
                        yield self.finding(
                            module,
                            twin,
                            f"batched twin {cls_node.name}.{name}() never "
                            f"updates {', '.join(missing)}; its scalar "
                            f"counterpart{'s' if len(parts) > 1 else ''} "
                            f"({', '.join(parts)}) "
                            f"{'do' if len(parts) > 1 else 'does'} — the "
                            "batch fast path under-reports",
                        )
