"""RC3xx — worker-pool and pickle-safety rules.

:func:`repro.experiments.parallel.run_tasks` ships callables and task
payloads across a :class:`~concurrent.futures.ProcessPoolExecutor`
boundary.  Everything crossing it is pickled, and worker processes do
not share parent memory — two facts that fail at runtime, on specific
platforms, long after the code that broke them merged.  These rules
fail them at check time instead:

- **RC301** requires the *callable* handed to ``submit()``/``map()`` to
  be a module-level function: lambdas and nested functions (closures)
  do not pickle under the default protocol.
- **RC302** flags module-level mutable containers in any module that
  drives a process pool — state mutated in a worker never reaches the
  parent (and under ``spawn`` never reaches the worker either), so
  such globals are silent divergence unless deliberately per-process
  (baseline with a justification when they are).
- **RC303** flags obviously unpicklable *arguments* in submit calls:
  lambdas, generator expressions, and open file handles.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.checks.findings import Finding, Severity
from repro.checks.project import CheckProject, SourceModule, dotted_name
from repro.checks.rules import ModuleCheckRule, register

#: Names whose presence marks a module as pool-driving for RC302.
_POOL_MARKERS = ("ProcessPoolExecutor", "multiprocessing")

#: Constructors producing module-level mutable containers.
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _submit_calls(module: SourceModule) -> Iterator[ast.Call]:
    """Every ``<pool>.submit(...)`` / ``<pool>.map(...)`` call.

    ``submit`` is specific enough to match on the attribute alone;
    ``map`` only counts when the receiver looks like a pool/executor,
    so ``Improvement.map(...)``-style helpers stay out of scope.
    """
    for node in module.walk():
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
        ):
            continue
        attr = node.func.attr
        if attr == "submit":
            yield node
        elif attr == "map":
            receiver = dotted_name(node.func.value).lower()
            if "pool" in receiver or "executor" in receiver:
                yield node


def _nested_function_names(module: SourceModule) -> Set[str]:
    """Names of functions defined inside other functions (closures)."""
    nested: Set[str] = set()
    for node in module.walk():
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for sub in ast.walk(node):
                if sub is node:
                    continue
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    nested.add(sub.name)
    return nested


def _module_uses_pool(module: SourceModule) -> bool:
    return any(marker in module.source for marker in _POOL_MARKERS)


@register
class PoolCallableRule(ModuleCheckRule):
    rule_id = "RC301"
    title = "Pool-submitted callables must be module-level functions"
    rationale = (
        "submit() pickles the callable by qualified name; lambdas and "
        "closures fail to pickle, aborting the whole batch at runtime "
        "on the first task."
    )

    def check(
        self, module: SourceModule, project: CheckProject
    ) -> Iterator[Finding]:
        nested = _nested_function_names(module)
        for call in _submit_calls(module):
            if not call.args:
                continue
            callee = call.args[0]
            if isinstance(callee, ast.Lambda):
                yield self.finding(
                    module,
                    callee,
                    "lambda submitted to a process pool cannot be "
                    "pickled; hoist it to a module-level function",
                )
            elif isinstance(callee, ast.Name) and callee.id in nested:
                yield self.finding(
                    module,
                    callee,
                    f"nested function '{callee.id}' submitted to a "
                    "process pool cannot be pickled; hoist it to module "
                    "level",
                )


@register
class WorkerGlobalStateRule(ModuleCheckRule):
    rule_id = "RC302"
    severity = Severity.WARNING
    title = "No module-level mutable state in pool-driving modules"
    rationale = (
        "Worker processes do not share parent memory: a module-level "
        "dict/list mutated across the pool boundary silently diverges. "
        "Deliberate per-process memoisation must be baselined with a "
        "justification."
    )

    def _mutable_value(self, value: Optional[ast.AST]) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in _MUTABLE_FACTORIES
        return False

    def check(
        self, module: SourceModule, project: CheckProject
    ) -> Iterator[Finding]:
        if not _module_uses_pool(module):
            return
        for node in module.tree.body:
            targets: List[ast.expr]
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], node.value
            else:
                continue
            if not self._mutable_value(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    yield self.finding(
                        module,
                        node,
                        f"module-level mutable '{target.id}' in a "
                        "pool-driving module; worker mutations never "
                        "reach the parent — make it per-process state "
                        "explicitly or baseline with a justification",
                    )


@register
class PoolArgumentRule(ModuleCheckRule):
    rule_id = "RC303"
    title = "Pool-submitted arguments must be picklable"
    rationale = (
        "Task payloads cross the process boundary pickled; lambdas, "
        "generator expressions and open file handles raise at submit "
        "time or, worse, inside the worker."
    )

    def _open_handles(self, module: SourceModule) -> Dict[str, ast.AST]:
        """Local names bound to ``open(...)`` results."""
        handles: Dict[str, ast.AST] = {}
        for node in module.walk():
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                value = node.value
                targets = node.targets
            elif isinstance(node, ast.withitem):
                value = node.context_expr
                targets = (
                    [node.optional_vars] if node.optional_vars else []
                )
            else:
                continue
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "open"
            ):
                for target in targets:
                    if isinstance(target, ast.Name):
                        handles[target.id] = node
        return handles

    def check(
        self, module: SourceModule, project: CheckProject
    ) -> Iterator[Finding]:
        handles = self._open_handles(module)
        for call in _submit_calls(module):
            for arg in call.args[1:]:
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        module,
                        arg,
                        "lambda passed as a pool task argument cannot "
                        "be pickled",
                    )
                elif isinstance(arg, ast.GeneratorExp):
                    yield self.finding(
                        module,
                        arg,
                        "generator expression passed as a pool task "
                        "argument cannot be pickled; materialise a list",
                    )
                elif (
                    isinstance(arg, ast.Call)
                    and isinstance(arg.func, ast.Name)
                    and arg.func.id == "open"
                ):
                    yield self.finding(
                        module,
                        arg,
                        "open file handle passed as a pool task "
                        "argument cannot be pickled; pass the path",
                    )
                elif isinstance(arg, ast.Name) and arg.id in handles:
                    yield self.finding(
                        module,
                        arg,
                        f"'{arg.id}' is an open file handle; it cannot "
                        "cross the pool boundary — pass the path",
                    )
