"""``repro-sim`` — run the timing model over a ChampSim trace file.

Usage::

    repro-sim trace.champsimtrace.gz --config main --rules patched
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro import obs
from repro.champsim.branch_info import BranchRules
from repro.obs import logutil
from repro.sim.config import SimConfig
from repro.sim.simulator import Simulator


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim", description="ChampSim-like interval timing model."
    )
    parser.add_argument("trace", help="ChampSim trace file (.gz/.xz ok)")
    parser.add_argument(
        "--config",
        default="main",
        choices=["main", "ipc1"],
        help="simulator preset (paper Section 4 'main' or the IPC-1 setup)",
    )
    parser.add_argument(
        "--rules",
        default="original",
        choices=["original", "patched"],
        help="ChampSim branch-deduction rules (patched for branch-regs traces)",
    )
    parser.add_argument(
        "--engine",
        default="scalar",
        choices=["scalar", "vector"],
        help="engine implementation (vector is the bit-identical columnar "
        "batch engine; scalar is the per-instruction reference)",
    )
    parser.add_argument(
        "--l1i-prefetcher",
        default="",
        help="instruction prefetcher name (IPC-1 submissions) or empty",
    )
    parser.add_argument(
        "--warmup",
        type=float,
        default=None,
        help="override warm-up fraction (0..1)",
    )
    obs.add_obs_flags(parser)
    logutil.add_logging_flags(parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logutil.configure_from_args(args)
    obs.setup_cli("repro-sim", args)
    if args.config == "ipc1":
        config = SimConfig.ipc1(l1i_prefetcher=args.l1i_prefetcher)
    else:
        config = SimConfig.main()
        if args.l1i_prefetcher:
            config = SimConfig.main(l1i_prefetcher=args.l1i_prefetcher)
    from dataclasses import replace

    if args.warmup is not None:
        config = replace(config, warmup_fraction=args.warmup)
    if args.engine != config.engine:
        config = replace(config, engine=args.engine)
    rules = BranchRules.PATCHED if args.rules == "patched" else BranchRules.ORIGINAL
    stats = Simulator(config).run(args.trace, rules)
    print(stats.summary())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
