"""The columnar batch engine: the scalar interval model, vectorized.

:class:`VectorEngine` computes exactly the statistics of
:class:`~repro.sim.engine.Engine` — the differential test tier
(``tests/test_vector_engine_differential.py``) pins bit-identical
:class:`~repro.sim.stats.SimStats` on every golden fixture, every synth
profile, and hypothesis-generated streams — while restructuring the work
for batch throughput (see ``docs/vector_engine.md``):

- the decoded stream is **columnarized** once into
  :class:`~repro.sim.decoded.DecodedColumns`: numpy computes the
  cacheline ids and the ``new_line`` fetch-break mask in bulk, and every
  field the sweep touches becomes a parallel Python list, so the hot
  loop never reads a dataclass attribute;
- the sweep iterates the columns with ``zip`` and keeps all pipeline
  state flat: the register scoreboard is a dense list indexed by
  register id (the scalar engine's dict), the ROB is a preallocated
  ring (the scalar engine's deque), and the cache hierarchy is the
  :class:`~repro.sim.flathier.FlatHierarchy` mirror — with the L1
  ready-hit paths (the overwhelmingly common outcome) additionally
  inlined into the sweep itself, so a hit costs dict lookups instead of
  a method-call chain;
- **segment breaks** — branch redirects and cache misses — fall out of
  the same recurrences as the scalar engine because the sequential
  carries (``fetch_cycle``, ``redirect_at``, ``dispatch_cycle``,
  ``last_retire``) are computed in the identical order with identical
  inputs; stateful components (direction predictor, BTB, RAS, ITTAGE,
  prefetchers) are invoked at exactly the scalar engine's call points
  so their internal state evolves identically;
- statistics are **batch-folded**: instruction counts close-form, branch
  and cache counters accumulate in sweep-local integers, all flushed at
  the warm-up boundary and at the end of the run.

The sweep runs in two phases split at the warm-up boundary, which hoists
the per-instruction ``index == warmup`` check and the ``stats.enabled``
test out of the loop entirely.  When observability is enabled the inline
cache paths are bypassed in favour of the proxied method calls, so
per-component time attribution stays exact (matching the scalar
engine's behaviour of only paying for attribution when it is on).
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Dict, Optional, Sequence, Union

from repro.champsim.branch_info import BranchRules, BranchType
from repro.sim.decoded import (
    DecodedColumns,
    DecodedInstr,
    columnarize,
    decode_trace,
)
from repro.sim.branch.batch import BranchTallies, resolve_branch_plan
from repro.sim.engine import (
    Engine,
    _TimedCalls,
    emit_engine_obs,
    wrap_branch_components,
)
from repro.sim.config import SimConfig
from repro.sim.flathier import SRC_L1, FlatHierarchy
from repro.sim.prefetch.plan import (
    DataPlan,
    FetchPlan,
    plan_data_stream,
    plan_fetch_stream,
)
from repro.sim.stats import SimStats

_BT_NOT_BRANCH = BranchType.NOT_BRANCH
_BT_COND = BranchType.CONDITIONAL
_BT_RETURN = BranchType.RETURN
_BT_INDIRECT = BranchType.INDIRECT
_BT_DIRECT_CALL = BranchType.DIRECT_CALL
_BT_INDIRECT_CALL = BranchType.INDIRECT_CALL

#: ``issue_load`` compaction bounds, mirrored from the scalar engine.
_ISSUE_LOAD_LIMIT = 8192
_ISSUE_LOAD_HORIZON = 64


class VectorEngine(Engine):
    """Single-run columnar engine; construct fresh per simulation.

    Drop-in for :class:`~repro.sim.engine.Engine`: same constructor,
    same :meth:`run` contract (raw or pre-decoded streams, shared
    decode cache), same observability attribution, bit-identical
    statistics.  :meth:`run` additionally accepts an already-built
    :class:`~repro.sim.decoded.DecodedColumns` so long-lived callers
    (:class:`~repro.sim.simulator.Simulator`) can reuse columnarisation
    across runs the way the decode cache reuses decodes.
    """

    def _build_hierarchy(
        self, config: SimConfig, stats: SimStats
    ) -> FlatHierarchy:
        return FlatHierarchy(config, stats)

    # ------------------------------------------------------------------

    def run(
        self,
        decoded: Union[Sequence[DecodedInstr], DecodedColumns],
        rules: BranchRules = BranchRules.ORIGINAL,
    ) -> SimStats:
        """Simulate the whole trace; return the (post-warm-up) statistics."""
        from repro.obs import state as obs_state

        component_time: Optional[Dict[str, float]] = None
        obs_enabled = obs_state.enabled()
        if obs_enabled:
            component_time = {
                "columnarize": 0.0,
                "cache": 0.0,
                "branch": 0.0,
                "prefetch": 0.0,
            }

        if isinstance(decoded, DecodedColumns):
            columns = decoded
        else:
            if decoded and not isinstance(decoded[0], DecodedInstr):
                decoded = decode_trace(decoded, rules, cache=self.decode_cache)
            if component_time is not None:
                start = perf_counter()
                columns = columnarize(decoded)
                component_time["columnarize"] += perf_counter() - start
            else:
                columns = columnarize(decoded)

        config = self.config
        stats = self.stats
        n = columns.n
        warmup = int(n * config.warmup_fraction)
        stats.enabled = warmup == 0

        hierarchy = self._real_hierarchy = self.hierarchy
        hierarchy.counting = stats.enabled
        direction = self.direction
        btb = self.btb
        ras = self.ras
        ittage = self.ittage
        l1i_pf = self.l1i_prefetcher
        if component_time is not None:
            hierarchy = _TimedCalls(
                hierarchy,
                component_time,
                {
                    "access_instruction_fast": "cache",
                    "access_data_fast": "cache",
                    "prefetch_instruction": "prefetch",
                },
            )
            direction, btb, ras, ittage, l1i_pf = wrap_branch_components(
                component_time, direction, btb, ras, ittage, l1i_pf
            )

        # ---------------------------------------------- sweep-wide state
        self._columns = columns
        self._hierarchy_view = hierarchy
        self._direction = direction
        self._btb = btb
        self._ras = ras
        self._ittage = ittage
        self._l1i_pf = l1i_pf

        self._fetch_cycle = 0
        self._fetched_in_group = 0
        self._redirect_at = 0
        self._dispatch_cycle = 0
        self._dispatched_in_cycle = 0
        self._last_retire = 0
        self._retired_in_cycle = 0
        self._fdip_cursor = 0
        self._fdip_lines_ahead = 0
        self._fdip_last_line = -1
        self._last_branch_ip: Optional[int] = None
        self._last_branch_type = _BT_NOT_BRANCH
        self._last_branch_target: Optional[int] = None

        rob_size = config.rob_size
        self._rob_buf = [0] * rob_size
        self._rob_head = 0
        self._rob_tail = 0
        self._rob_count = 0
        self._reg_ready = [0] * (columns.max_reg + 1)
        self._issue_load: Dict[int, int] = {}
        self._prf_free = config.prf_size
        self._prf_pending: deque = deque()

        # ------------------------------------------- component batch plans
        self._branch_codes: Optional[list] = None
        self._plan_tallies: Optional[BranchTallies] = None
        self._dplan: Optional[DataPlan] = None
        self._iplan: Optional[FetchPlan] = None
        self._bplan_cursor = 0
        self._dplan_cursor = 0
        self._iplan_cursor = 0
        if self._batch_components and not obs_enabled and n:
            self._resolve_plans(columns, warmup)

        warmup_base_cycle = 0
        if warmup:
            self._sweep(0, min(warmup, n), counting=False)
        if warmup < n:
            hierarchy_real = self._real_hierarchy
            hierarchy_real.flush_stats()
            hierarchy_real.counting = True
            stats.enabled = True
            warmup_base_cycle = self._last_retire
            self._sweep(warmup, n, counting=True)
            stats.instructions += n - warmup

        self._real_hierarchy.flush_stats()
        stats.cycles = max(1, self._last_retire - warmup_base_cycle)

        if component_time is not None:
            emit_engine_obs(component_time, n, stats.cycles)
        return stats

    # ------------------------------------------------------------------

    def _resolve_plans(self, columns: DecodedColumns, warmup: int) -> None:
        """Resolve (or fetch memoized) component plans for this run.

        Batched component models (see ``docs/vector_engine.md``) replay
        each component over its event stream *once, ahead of the timing
        sweep*: branches through
        :func:`~repro.sim.branch.batch.resolve_branch_plan`, stream-pure
        prefetchers through the request planners in
        :mod:`repro.sim.prefetch.plan`.  The sweep then consumes
        precomputed redirect codes and request runs instead of calling
        the components per event — bit-identical by the batched-model
        contract, and memoizable on the columns because the event
        streams are a pure function of the (immutable) columns and the
        component configuration.

        On a plan-cache hit the components are never touched: the run
        needs only the plan.  On a miss, the planning pass leaves each
        component in exactly the state a scalar run would have.
        """
        cfg_branch_key, dpf_key, ipf_key = columns.plan_keys(self.config)
        plan_cache = columns.plan_cache
        bplan = plan_cache.get(cfg_branch_key)
        if bplan is None:
            idxs, ips, types, takens, targets = columns.branch_view()
            bplan = resolve_branch_plan(
                idxs,
                ips,
                types,
                takens,
                targets,
                self.direction,
                self.btb,
                self.ras,
                self.ittage,
                self.config.ideal_targets,
                warmup,
            )
            plan_cache[cfg_branch_key] = bplan
        self._branch_codes, self._plan_tallies = bplan

        l1d_pf = self.hierarchy.l1d_prefetcher
        if l1d_pf is not None and l1d_pf.stream_pure:
            dplan = plan_cache.get(dpf_key)
            if dplan is None:
                ev_ips, ev_addrs = columns.access_events()
                dplan = plan_data_stream(l1d_pf, ev_ips, ev_addrs)
                plan_cache[dpf_key] = dplan
            self._dplan = dplan

        l1i_pf = self.l1i_prefetcher
        if l1i_pf is not None and l1i_pf.stream_pure:
            iplan = plan_cache.get(ipf_key)
            if iplan is None:
                iplan = plan_fetch_stream(l1i_pf, columns.fetch_events())
                plan_cache[ipf_key] = iplan
            self._iplan = iplan

    # ------------------------------------------------------------------

    def _sweep(self, start: int, stop: int, counting: bool) -> None:
        """Run instructions ``[start, stop)`` through the interval model.

        All sequential carries live in locals; ``self`` is only touched
        on entry and exit.  The recurrence structure and every component
        call site mirror :meth:`Engine.run` exactly — see that method
        for the architectural commentary — with statistics accumulated
        in batch instead of per call, and the L1 ready-hit cache paths
        inlined (bit-identical to
        :meth:`~repro.sim.flathier.FlatHierarchy.demand_fast`, which
        still handles every other outcome).
        """
        columns = self._columns
        ips = columns.ips
        lines = columns.lines
        branch_types = columns.branch_types
        branch_takens = columns.branch_takens
        targets = columns.targets
        src_mems = columns.src_mems
        dst_mems = columns.dst_mems
        config = self.config

        flat = self._real_hierarchy
        hierarchy = self._hierarchy_view
        # Inline cache paths only when no obs proxy sits between the
        # sweep and the hierarchy (attribution must stay exact).
        inline_cache = hierarchy is flat
        access_instruction_fast = hierarchy.access_instruction_fast
        access_data_fast = hierarchy.access_data_fast
        prefetch_instruction = hierarchy.prefetch_instruction
        demand_fast = flat.demand_fast
        l1i = flat.l1i
        l1i_sets = l1i.sets
        l1i_ready_get = l1i.ready.get
        l1i_num_sets = l1i.num_sets
        l1d = flat.l1d
        l1d_sets = l1d.sets
        l1d_ready_get = l1d.ready.get
        l1d_num_sets = l1d.num_sets
        l1d_latency = l1d.latency
        l1d_pf = flat.l1d_prefetcher
        l1d_pf_hook = l1d_pf.on_access if l1d_pf is not None else None
        l2_pf = flat.l2_prefetcher
        l2_pf_hook = l2_pf.on_access if l2_pf is not None else None

        # Batched component plans (resolved by :meth:`_resolve_plans`;
        # all ``None`` on the scalar component path).  Cursors persist
        # across the warm-up and counting sweep phases via ``self``.
        bcodes = self._branch_codes
        dplan = self._dplan
        iplan = self._iplan
        bj = self._bplan_cursor
        aj = self._dplan_cursor
        fj = self._iplan_cursor
        prefetch_data_run = flat.prefetch_data_run
        prefetch_instruction_run = flat.prefetch_instruction_run

        direction = self._direction
        direction_predict = direction.predict
        direction_update = direction.update
        btb_lookup = self._btb.lookup
        btb_install = self._btb.install
        ras_pop = self._ras.pop
        ras_push = self._ras.push
        ittage = self._ittage
        if ittage is not None:
            ittage_predict = ittage.predict
            ittage_update = ittage.update
        l1i_pf = self._l1i_pf
        # With the fetch plan active the branch context embedded in it
        # already covers the prefetcher; otherwise a live instruction
        # prefetcher still needs the sweep to track it.
        track_ctx = l1i_pf is not None and iplan is None

        fetch_width = config.fetch_width
        dispatch_width = config.dispatch_width
        exec_width = config.exec_width
        retire_width = config.retire_width
        rob_size = config.rob_size
        frontend_depth = config.frontend_depth
        restart = config.mispredict_restart
        btb_miss_penalty = config.btb_miss_penalty
        l1i_hit = l1i.latency
        alu_latency = config.alu_latency
        branch_latency = config.branch_latency
        ideal_targets = config.ideal_targets
        fdip = config.fdip_lookahead if config.decoupled_frontend else 0
        prf_size = config.prf_size

        fetch_cycle = self._fetch_cycle
        fetched_in_group = self._fetched_in_group
        redirect_at = self._redirect_at
        dispatch_cycle = self._dispatch_cycle
        dispatched_in_cycle = self._dispatched_in_cycle
        last_retire = self._last_retire
        retired_in_cycle = self._retired_in_cycle
        fdip_cursor = self._fdip_cursor
        fdip_lines_ahead = self._fdip_lines_ahead
        fdip_last_line = self._fdip_last_line
        last_branch_ip = self._last_branch_ip
        last_branch_type = self._last_branch_type
        last_branch_target = self._last_branch_target
        rob_buf = self._rob_buf
        rob_head = self._rob_head
        rob_tail = self._rob_tail
        rob_count = self._rob_count
        reg_ready = self._reg_ready
        issue_load = self._issue_load
        issue_load_get = issue_load.get
        prf_free = self._prf_free
        prf_pending = self._prf_pending

        n = columns.n
        bt_not_branch = _BT_NOT_BRANCH
        bt_cond = _BT_COND
        bt_return = _BT_RETURN
        bt_indirect = _BT_INDIRECT
        bt_direct_call = _BT_DIRECT_CALL
        bt_indirect_call = _BT_INDIRECT_CALL

        # Batched statistics (folded into SimStats / FlatHierarchy on exit).
        b_branches = 0
        b_taken = 0
        b_direction = 0
        b_target = 0
        b_mispredicted = 0
        by_type: Dict[BranchType, int] = {}
        tgt_by_type: Dict[BranchType, int] = {}
        acc_l1i = miss_l1i = 0
        acc_l1d = miss_l1d = 0

        il_size = len(issue_load)

        if start == 0 and stop == n:
            kinds_col = columns.kinds
            new_line_col = columns.new_line
            src_regs_col = columns.src_regs
            dst_regs_col = columns.dst_regs
        else:
            kinds_col = columns.kinds[start:stop]
            new_line_col = columns.new_line[start:stop]
            src_regs_col = columns.src_regs[start:stop]
            dst_regs_col = columns.dst_regs[start:stop]

        index = start
        for kind, new_line, srcs, dsts in zip(
            kinds_col, new_line_col, src_regs_col, dst_regs_col
        ):
            # ----------------------------------------------------- fetch
            if (
                new_line
                or fetched_in_group >= fetch_width
                or redirect_at > fetch_cycle
            ):
                fetch_cycle += 1
                if redirect_at > fetch_cycle:
                    fetch_cycle = redirect_at
                fetched_in_group = 0
                if new_line:
                    line = lines[index]
                    if inline_cache:
                        set_state = l1i_sets.get(
                            (line >> 6) % l1i_num_sets
                        )
                        if set_state is not None and line in set_state:
                            l1i.clock = clk = l1i.clock + 1
                            set_state[line] = clk
                            ready = l1i_ready_get(line, 0)
                            if ready > fetch_cycle:
                                if counting:
                                    acc_l1i += 1
                                    miss_l1i += 1
                                wait = ready - fetch_cycle
                                latency = (
                                    wait if wait > l1i_hit else l1i_hit
                                )
                                source = 1
                            else:
                                if counting:
                                    acc_l1i += 1
                                latency = l1i_hit
                                source = 0
                        else:
                            latency, source = demand_fast(
                                l1i, line, fetch_cycle
                            )
                    else:
                        latency, source = access_instruction_fast(
                            line, fetch_cycle
                        )
                    extra = latency - l1i_hit
                    if extra > 0:
                        fetch_cycle += extra
                    if iplan is not None:
                        reqs = iplan[fj]
                        fj += 1
                        if reqs is not None:
                            prefetch_instruction_run(reqs, fetch_cycle)
                    elif l1i_pf is not None:
                        l1i_pf.on_fetch(
                            line,
                            source == 0,
                            hierarchy,
                            fetch_cycle,
                            branch_ip=last_branch_ip,
                            branch_type=last_branch_type,
                            branch_target=last_branch_target,
                        )
                        last_branch_ip = None
                        last_branch_type = bt_not_branch
                        last_branch_target = None
                    if fdip:
                        # Runahead: keep `fdip` distinct lines prefetched
                        # ahead of the fetch point.
                        fdip_lines_ahead -= 1
                        if fdip_cursor <= index:
                            fdip_cursor = index + 1
                            fdip_lines_ahead = 0
                            fdip_last_line = line
                        while fdip_lines_ahead < fdip and fdip_cursor < n:
                            next_line = lines[fdip_cursor]
                            if next_line != fdip_last_line:
                                if inline_cache:
                                    # Already-resident lines are a no-op
                                    # in prefetch_instruction; skip the
                                    # call for them.
                                    ps = l1i_sets.get(
                                        (next_line >> 6) % l1i_num_sets
                                    )
                                    if ps is None or next_line not in ps:
                                        prefetch_instruction(
                                            next_line, fetch_cycle
                                        )
                                else:
                                    prefetch_instruction(
                                        next_line, fetch_cycle
                                    )
                                fdip_last_line = next_line
                                fdip_lines_ahead += 1
                            fdip_cursor += 1
            fetch_time = fetch_cycle
            fetched_in_group += 1

            # -------------------------------------------------- dispatch
            earliest = fetch_time + frontend_depth
            if rob_count >= rob_size:
                slot_free = rob_buf[rob_head]
                rob_head += 1
                if rob_head == rob_size:
                    rob_head = 0
                rob_count -= 1
                if slot_free > earliest:
                    earliest = slot_free
            if prf_size and dsts:
                needed = len(dsts)
                # Reclaim registers whose holders have retired by now.
                while prf_pending and prf_pending[0][0] <= earliest:
                    prf_free += prf_pending.popleft()[1]
                while prf_free < needed and prf_pending:
                    when, count = prf_pending.popleft()
                    prf_free += count
                    if when > earliest:
                        earliest = when
                prf_free -= needed
            if earliest > dispatch_cycle:
                dispatch_cycle = earliest
                dispatched_in_cycle = 1
            else:
                dispatched_in_cycle += 1
                if dispatched_in_cycle > dispatch_width:
                    dispatch_cycle += 1
                    dispatched_in_cycle = 1

            # ----------------------------------------------------- issue
            ready = dispatch_cycle
            for reg in srcs:
                t = reg_ready[reg]
                if t > ready:
                    ready = t
            issue = ready
            load = issue_load_get(issue, 0)
            while load >= exec_width:
                issue += 1
                load = issue_load_get(issue, 0)
            issue_load[issue] = load + 1
            if load == 0:
                # Stored counts are always >= 1, so a zero ``get`` means
                # the key was absent and this store grew the dict.
                il_size += 1
                if il_size > _ISSUE_LOAD_LIMIT:
                    horizon = issue - _ISSUE_LOAD_HORIZON
                    issue_load = {
                        c: k for c, k in issue_load.items() if c >= horizon
                    }
                    issue_load_get = issue_load.get
                    il_size = len(issue_load)

            # ------------------------------------------ complete / branch
            if kind == 0:
                complete = issue + alu_latency
            else:
                ip = ips[index]
                if kind & 3:
                    if kind & 1:
                        addrs = src_mems[index]
                        writes = False
                        latency = 0
                    else:
                        addrs = dst_mems[index]
                        writes = True
                        latency = alu_latency
                    for addr in addrs:
                        if inline_cache:
                            aline = addr & -64
                            set_state = l1d_sets.get(
                                (aline >> 6) % l1d_num_sets
                            )
                            if (
                                set_state is not None
                                and aline in set_state
                            ):
                                l1d.clock = clk = l1d.clock + 1
                                set_state[aline] = clk
                                ready = l1d_ready_get(aline, 0)
                                if ready > issue:
                                    if counting:
                                        acc_l1d += 1
                                        miss_l1d += 1
                                    wait = ready - issue
                                    lat = (
                                        wait
                                        if wait > l1d_latency
                                        else l1d_latency
                                    )
                                    src = 1
                                else:
                                    if counting:
                                        acc_l1d += 1
                                    lat = l1d_latency
                                    src = 0
                            else:
                                lat, src = demand_fast(l1d, aline, issue)
                            if dplan is not None:
                                reqs = dplan[aj]
                                aj += 1
                                if reqs is not None:
                                    prefetch_data_run(reqs, issue)
                            elif l1d_pf_hook is not None:
                                l1d_pf_hook(ip, addr, src == 0, flat, issue)
                            if l2_pf_hook is not None and src != 0:
                                l2_pf_hook(ip, addr, src == 2, flat, issue)
                        else:
                            lat, src = access_data_fast(
                                ip, addr, issue, writes
                            )
                        if not writes and lat > latency:
                            latency = lat
                    complete = issue + latency
                else:
                    complete = issue + branch_latency

                if kind & 4:
                    if bcodes is not None:
                        # Batched branch plan: redirect decision and
                        # tallies precomputed by resolve_branch_plan.
                        code = bcodes[bj]
                        bj += 1
                        if code == 1:
                            redirect_at = complete + restart
                        elif code:
                            # Decode-time re-steer (BTB miss, taken).
                            redirect_at = fetch_time + btb_miss_penalty
                        if track_ctx:
                            last_branch_ip = ip
                            last_branch_type = branch_types[index]
                            last_branch_target = (
                                targets[index]
                                if branch_takens[index]
                                else None
                            )
                    else:
                        branch_type = branch_types[index]
                        taken = branch_takens[index]
                        actual_target = targets[index]

                        if branch_type is bt_cond:
                            pred_taken = direction_predict(ip)
                            direction_update(ip, taken)
                            direction_wrong = pred_taken != taken
                        else:
                            pred_taken = True
                            direction_wrong = False

                        target_wrong = False
                        btb_hit = True
                        if ideal_targets:
                            pass  # perfect targets: only direction redirects
                        else:
                            entry = btb_lookup(ip)
                            btb_hit = entry is not None
                            if branch_type is bt_return:
                                pred_target = ras_pop()
                            elif (
                                branch_type is bt_indirect
                                or branch_type is bt_indirect_call
                            ):
                                pred_target = None
                                if ittage is not None:
                                    pred_target = ittage_predict(ip)
                                if pred_target is None and entry is not None:
                                    pred_target = entry[0]
                            else:
                                pred_target = (
                                    entry[0] if entry is not None else None
                                )
                            if (
                                branch_type is bt_direct_call
                                or branch_type is bt_indirect_call
                            ):
                                ras_push(ip + 4)
                            if taken:
                                btb_install(ip, actual_target, branch_type)
                                if ittage is not None and (
                                    branch_type is bt_indirect
                                    or branch_type is bt_indirect_call
                                ):
                                    ittage_update(ip, actual_target)
                                if pred_taken:
                                    target_wrong = (
                                        pred_target is None
                                        or pred_target != actual_target
                                    )

                        if counting:
                            b_branches += 1
                            by_type[branch_type] = (
                                by_type.get(branch_type, 0) + 1
                            )
                            if taken:
                                b_taken += 1
                            if direction_wrong:
                                b_direction += 1
                            if target_wrong:
                                b_target += 1
                                tgt_by_type[branch_type] = (
                                    tgt_by_type.get(branch_type, 0) + 1
                                )
                            if direction_wrong or target_wrong:
                                b_mispredicted += 1

                        if direction_wrong or target_wrong:
                            redirect_at = complete + restart
                        elif taken and not ideal_targets and not btb_hit:
                            # Decode-time re-steer: target computable, but the
                            # front-end had no BTB entry to follow at fetch.
                            redirect_at = fetch_time + btb_miss_penalty

                        if l1i_pf is not None:
                            last_branch_ip = ip
                            last_branch_type = branch_type
                            last_branch_target = (
                                actual_target if taken else None
                            )

            for reg in dsts:
                reg_ready[reg] = complete

            # ---------------------------------------------------- retire
            if complete > last_retire:
                last_retire = complete
                retired_in_cycle = 1
            else:
                retired_in_cycle += 1
                if retired_in_cycle > retire_width:
                    last_retire += 1
                    retired_in_cycle = 1
            rob_buf[rob_tail] = last_retire
            rob_tail += 1
            if rob_tail == rob_size:
                rob_tail = 0
            rob_count += 1
            if prf_size and dsts:
                prf_pending.append((last_retire, len(dsts)))
            index += 1

        # ------------------------------------------------ state hand-back
        self._fetch_cycle = fetch_cycle
        self._fetched_in_group = fetched_in_group
        self._redirect_at = redirect_at
        self._dispatch_cycle = dispatch_cycle
        self._dispatched_in_cycle = dispatched_in_cycle
        self._last_retire = last_retire
        self._retired_in_cycle = retired_in_cycle
        self._fdip_cursor = fdip_cursor
        self._fdip_lines_ahead = fdip_lines_ahead
        self._fdip_last_line = fdip_last_line
        self._last_branch_ip = last_branch_ip
        self._last_branch_type = last_branch_type
        self._last_branch_target = last_branch_target
        self._rob_head = rob_head
        self._rob_tail = rob_tail
        self._rob_count = rob_count
        self._issue_load = issue_load
        self._prf_free = prf_free
        self._bplan_cursor = bj
        self._dplan_cursor = aj
        self._iplan_cursor = fj

        if acc_l1i:
            flat.acc_l1i += acc_l1i
            flat.miss_l1i += miss_l1i
        if acc_l1d:
            flat.acc_l1d += acc_l1d
            flat.miss_l1d += miss_l1d
        if counting and self._plan_tallies is not None:
            # Fold the branch plan's precomputed (already warm-up-gated)
            # tallies into the sweep-local counters exactly once, so the
            # single SimStats fold below covers both component paths.
            (
                t_branches,
                t_taken,
                t_direction,
                t_target,
                t_mispredicted,
                t_by_type,
                t_tgt_by_type,
            ) = self._plan_tallies
            self._plan_tallies = None
            b_branches += t_branches
            b_taken += t_taken
            b_direction += t_direction
            b_target += t_target
            b_mispredicted += t_mispredicted
            for branch_type, count in t_by_type.items():
                by_type[branch_type] = by_type.get(branch_type, 0) + count
            for branch_type, count in t_tgt_by_type.items():
                tgt_by_type[branch_type] = (
                    tgt_by_type.get(branch_type, 0) + count
                )
        if counting and b_branches:
            stats = self.stats
            stats.branches += b_branches
            stats.taken_branches += b_taken
            stats.direction_mispredicts += b_direction
            stats.target_mispredicts += b_target
            stats.mispredicted_branches += b_mispredicted
            stats_by_type = stats.branches_by_type
            for branch_type, count in by_type.items():
                stats_by_type[branch_type] = (
                    stats_by_type.get(branch_type, 0) + count
                )
            stats_tgt = stats.target_misses_by_type
            for branch_type, count in tgt_by_type.items():
                stats_tgt[branch_type] = stats_tgt.get(branch_type, 0) + count
