"""Top-level simulation API.

::

    from repro.sim import Simulator, SimConfig

    stats = Simulator(SimConfig.main()).run(instrs, rules)

``instrs`` may be raw :class:`~repro.champsim.trace.ChampSimInstr`
records, already-decoded instructions, or a path to a ChampSim trace
file.  ``rules`` selects ChampSim's branch-deduction rule set — use the
:attr:`~repro.core.convert.Converter.required_branch_rules` the converter
reports for the trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.champsim.branch_info import BranchRules
from repro.champsim.trace import ChampSimInstr, read_champsim_trace
from repro.sim.config import SimConfig
from repro.sim.decoded import DecodeCache, DecodedInstr, decode_trace
from repro.sim.engine import Engine
from repro.sim.stats import SimStats

TraceLike = Union[str, Path, Sequence[ChampSimInstr], Sequence[DecodedInstr]]


def _as_decoded(
    trace: TraceLike,
    rules: BranchRules,
    cache: "Optional[DecodeCache]" = None,
) -> List[DecodedInstr]:
    if isinstance(trace, (str, Path)):
        return decode_trace(read_champsim_trace(trace), rules, cache=cache)
    trace = list(trace)
    if trace and isinstance(trace[0], DecodedInstr):
        return trace  # type: ignore[return-value]
    return decode_trace(trace, rules, cache=cache)  # type: ignore[arg-type]


class Simulator:
    """Run the interval model over ChampSim traces.

    The simulator is long-lived while each :class:`Engine` is per-run;
    it owns the :class:`~repro.sim.decoded.DecodeCache` shared across
    runs, so re-simulating a trace (sweeps, warm-up+measure loops,
    benchmarking) skips branch-type deduction for every instruction
    already seen.  Pass ``decode_cache=None`` to opt out.
    """

    def __init__(
        self,
        config: SimConfig,
        decode_cache: "Union[Optional[DecodeCache], str]" = "fresh",
    ):
        self.config = config
        if decode_cache == "fresh":
            decode_cache = DecodeCache()
        elif decode_cache is not None and not isinstance(decode_cache, DecodeCache):
            raise TypeError("decode_cache must be a DecodeCache, None, or 'fresh'")
        self.decode_cache = decode_cache

    def run(
        self,
        trace: TraceLike,
        rules: BranchRules = BranchRules.ORIGINAL,
    ) -> SimStats:
        """Simulate one trace with a fresh engine; return its statistics."""
        from repro import obs

        cache = self.decode_cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        with obs.span("sim.decode", rules=rules.name):
            decoded = _as_decoded(trace, rules, cache=cache)
        if cache is not None and obs.enabled():
            family = obs.counter(
                "repro_sim_decode_cache_events_total",
                "Decode-cache hits/misses during trace pre-decode.",
            )
            family.labels(op="hit").inc(cache.hits - hits_before)
            family.labels(op="miss").inc(cache.misses - misses_before)
        engine = Engine(self.config, decode_cache=cache)
        with obs.span("sim.engine", instructions=len(decoded)):
            return engine.run(decoded)


def simulate(
    trace: TraceLike,
    config: SimConfig = None,
    rules: BranchRules = BranchRules.ORIGINAL,
) -> SimStats:
    """One-call simulation with the paper's main configuration by default."""
    if config is None:
        config = SimConfig.main()
    return Simulator(config).run(trace, rules)
