"""Top-level simulation API.

::

    from repro.sim import Simulator, SimConfig

    stats = Simulator(SimConfig.main()).run(instrs, rules)

``instrs`` may be raw :class:`~repro.champsim.trace.ChampSimInstr`
records, already-decoded instructions, or a path to a ChampSim trace
file.  ``rules`` selects ChampSim's branch-deduction rule set — use the
:attr:`~repro.core.convert.Converter.required_branch_rules` the converter
reports for the trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

from repro.champsim.branch_info import BranchRules
from repro.champsim.trace import ChampSimInstr, read_champsim_trace
from repro.sim.config import SimConfig
from repro.sim.decoded import (
    DecodeCache,
    DecodedColumns,
    DecodedInstr,
    columnarize,
    decode_trace,
)
from repro.sim.engine import ComponentPool, Engine
from repro.sim.stats import SimStats

TraceLike = Union[str, Path, Sequence[ChampSimInstr], Sequence[DecodedInstr]]

#: Engine implementations selectable via ``SimConfig.engine`` or the
#: ``Simulator(engine=...)`` override.  Values are import paths resolved
#: lazily so the scalar-only path never imports the vector machinery.
ENGINE_NAMES = ("scalar", "vector")


def make_engine(
    config: SimConfig,
    decode_cache: "Optional[DecodeCache]" = None,
    engine: Optional[str] = None,
    component_pool: "Optional[ComponentPool]" = None,
    batch_components: bool = True,
) -> Engine:
    """Build the engine implementation selected by ``engine``.

    ``engine=None`` defers to ``config.engine``; unknown names raise
    ``ValueError`` listing the known implementations.  ``component_pool``
    recycles a previous engine's components when type and config match
    (see :class:`~repro.sim.engine.ComponentPool`); ``batch_components``
    forces the scalar per-call component path when ``False`` (the
    vector engine's batched component plans are on by default).
    """
    name = config.engine if engine is None else engine
    if name == "scalar":
        return Engine(
            config,
            decode_cache=decode_cache,
            component_pool=component_pool,
            batch_components=batch_components,
        )
    if name == "vector":
        from repro.sim.vector_engine import VectorEngine

        return VectorEngine(
            config,
            decode_cache=decode_cache,
            component_pool=component_pool,
            batch_components=batch_components,
        )
    raise ValueError(
        f"unknown engine {name!r}; known: {list(ENGINE_NAMES)}"
    )


def _as_decoded(
    trace: TraceLike,
    rules: BranchRules,
    cache: "Optional[DecodeCache]" = None,
) -> List[DecodedInstr]:
    if isinstance(trace, (str, Path)):
        return decode_trace(read_champsim_trace(trace), rules, cache=cache)
    trace = list(trace)
    if trace and isinstance(trace[0], DecodedInstr):
        return trace  # type: ignore[return-value]
    return decode_trace(trace, rules, cache=cache)  # type: ignore[arg-type]


class Simulator:
    """Run the interval model over ChampSim traces.

    The simulator is long-lived while each :class:`Engine` is per-run;
    it owns the :class:`~repro.sim.decoded.DecodeCache` shared across
    runs, so re-simulating a trace (sweeps, warm-up+measure loops,
    benchmarking) skips branch-type deduction for every instruction
    already seen.  Pass ``decode_cache=None`` to opt out.

    ``engine`` overrides ``config.engine`` ("scalar" or "vector"); the
    vector engine is bit-identical to the scalar reference (pinned by
    ``tests/test_vector_engine_differential.py``) and additionally memoizes
    the columnar view of the last trace, so repeated runs over one
    unmutated trace object skip columnarisation the way the decode cache
    skips decoding.
    """

    def __init__(
        self,
        config: SimConfig,
        decode_cache: "Union[Optional[DecodeCache], str]" = "fresh",
        engine: Optional[str] = None,
        batch_components: bool = True,
    ) -> None:
        self.config = config
        self.batch_components = batch_components
        if decode_cache == "fresh":
            decode_cache = DecodeCache()
        elif decode_cache is not None and not isinstance(decode_cache, DecodeCache):
            raise TypeError("decode_cache must be a DecodeCache, None, or 'fresh'")
        self.decode_cache = decode_cache
        if engine is None:
            engine = config.engine
        if engine not in ENGINE_NAMES:
            raise ValueError(
                f"unknown engine {engine!r}; known: {list(ENGINE_NAMES)}"
            )
        self.engine = engine
        #: Single-slot ``(trace, rules, columns)`` memo for the vector path.
        self._columns_memo: Optional[
            Tuple[TraceLike, BranchRules, DecodedColumns]
        ] = None
        #: Components captured from the last finished vector engine; the
        #: next run adopts (and resets) them instead of reconstructing.
        #: The scalar path stays cold-construction so reference timings
        #: keep their meaning.
        self._component_pool: Optional[ComponentPool] = None

    def run(
        self,
        trace: TraceLike,
        rules: BranchRules = BranchRules.ORIGINAL,
    ) -> SimStats:
        """Simulate one trace with a fresh engine; return its statistics."""
        from repro import obs

        engine = make_engine(self.config, decode_cache=self.decode_cache,
                             engine=self.engine,
                             component_pool=self._component_pool,
                             batch_components=self.batch_components)
        payload: Union[List[DecodedInstr], DecodedColumns]
        if self.engine == "vector":
            columns = self._columns_memo_lookup(trace, rules)
            if columns is None:
                decoded = self._decode(trace, rules)
                with obs.span("sim.columnarize", instructions=len(decoded)):
                    columns = columnarize(decoded)
                self._columns_memo = (trace, rules, columns)
            payload = columns
        else:
            payload = self._decode(trace, rules)
        with obs.span("sim.engine", instructions=len(payload)):
            # The vector engine's run() accepts DecodedColumns on top of
            # the base Engine signature; self.engine gates which form is
            # built, so the pairing is always valid.
            stats = engine.run(payload)  # type: ignore[arg-type]
        if self.engine == "vector":
            self._component_pool = engine.export_pool()
        return stats

    def _decode(self, trace: TraceLike, rules: BranchRules) -> List[DecodedInstr]:
        from repro import obs

        cache = self.decode_cache
        hits_before = cache.hits if cache is not None else 0
        misses_before = cache.misses if cache is not None else 0
        with obs.span("sim.decode", rules=rules.name):
            decoded = _as_decoded(trace, rules, cache=cache)
        if cache is not None and obs.enabled():
            family = obs.counter(
                "repro_sim_decode_cache_events_total",
                "Decode-cache hits/misses during trace pre-decode.",
            )
            family.labels(op="hit").inc(cache.hits - hits_before)
            family.labels(op="miss").inc(cache.misses - misses_before)
        return decoded

    def _columns_memo_lookup(
        self, trace: TraceLike, rules: BranchRules
    ) -> Optional[DecodedColumns]:
        """Return the last run's columns when the caller re-submits the same
        trace object (or path) under the same rules.

        A memo hit skips re-decoding entirely — the columnar view already
        embeds the decode — which is the vector path's analogue of the
        decode cache's warm hit.  The memo trusts that the caller has not
        mutated the trace object (or rewritten the file) between runs, the
        same contract :class:`~repro.sim.decoded.DecodeCache` places on
        its shared :class:`~repro.sim.decoded.DecodedInstr` entries.
        """
        memo = self._columns_memo
        if memo is None:
            return None
        memo_trace, memo_rules, columns = memo
        same_trace = memo_trace is trace or (
            isinstance(trace, (str, Path))
            and type(memo_trace) is type(trace)
            and memo_trace == trace
        )
        if same_trace and memo_rules is rules:
            return columns
        return None


def simulate(
    trace: TraceLike,
    config: SimConfig = None,
    rules: BranchRules = BranchRules.ORIGINAL,
) -> SimStats:
    """One-call simulation with the paper's main configuration by default."""
    if config is None:
        config = SimConfig.main()
    return Simulator(config).run(trace, rules)
