"""Top-level simulation API.

::

    from repro.sim import Simulator, SimConfig

    stats = Simulator(SimConfig.main()).run(instrs, rules)

``instrs`` may be raw :class:`~repro.champsim.trace.ChampSimInstr`
records, already-decoded instructions, or a path to a ChampSim trace
file.  ``rules`` selects ChampSim's branch-deduction rule set — use the
:attr:`~repro.core.convert.Converter.required_branch_rules` the converter
reports for the trace.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

from repro.champsim.branch_info import BranchRules
from repro.champsim.trace import ChampSimInstr, read_champsim_trace
from repro.sim.config import SimConfig
from repro.sim.decoded import DecodedInstr, decode_trace
from repro.sim.engine import Engine
from repro.sim.stats import SimStats

TraceLike = Union[str, Path, Sequence[ChampSimInstr], Sequence[DecodedInstr]]


def _as_decoded(trace: TraceLike, rules: BranchRules) -> List[DecodedInstr]:
    if isinstance(trace, (str, Path)):
        return decode_trace(read_champsim_trace(trace), rules)
    trace = list(trace)
    if trace and isinstance(trace[0], DecodedInstr):
        return trace  # type: ignore[return-value]
    return decode_trace(trace, rules)  # type: ignore[arg-type]


class Simulator:
    """Run the interval model over ChampSim traces."""

    def __init__(self, config: SimConfig):
        self.config = config

    def run(
        self,
        trace: TraceLike,
        rules: BranchRules = BranchRules.ORIGINAL,
    ) -> SimStats:
        """Simulate one trace with a fresh engine; return its statistics."""
        decoded = _as_decoded(trace, rules)
        engine = Engine(self.config)
        return engine.run(decoded)


def simulate(
    trace: TraceLike,
    config: SimConfig = None,
    rules: BranchRules = BranchRules.ORIGINAL,
) -> SimStats:
    """One-call simulation with the paper's main configuration by default."""
    if config is None:
        config = SimConfig.main()
    return Simulator(config).run(trace, rules)
