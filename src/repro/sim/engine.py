"""The interval-model out-of-order engine.

One in-order pass over the decoded trace computes, per instruction, its
fetch, dispatch, issue, completion and retire cycles under:

- fetch grouping (one cacheline per cycle, ``fetch_width`` instructions),
  L1I access latency, FDIP runahead prefetching, branch prediction at
  fetch, and redirects at branch *resolution* for mispredictions (plus a
  shorter decode-time re-steer for BTB misses on taken branches);
- dispatch width, ROB occupancy (an instruction dispatches only when the
  instruction ``rob_size`` older has retired), register dataflow
  readiness, execute bandwidth, cache-latency completion for loads;
- in-order retirement at ``retire_width``.

This is the standard fast-model alternative to cycle-driven simulation:
it expresses every first-order effect the paper measures (see DESIGN.md
§5) at a few microseconds per instruction in pure Python.
"""

from __future__ import annotations

from collections import deque
from time import perf_counter
from typing import Any, Dict, Optional, Sequence

from repro.champsim.branch_info import BranchRules, BranchType
from repro.sim.branch import (
    BTB,
    ITTAGE,
    ReturnAddressStack,
    make_direction_predictor,
)
from repro.sim.cache.cache import LINE_SIZE
from repro.sim.cache.hierarchy import CacheHierarchy
from repro.sim.config import SimConfig
from repro.sim.decoded import DecodeCache, DecodedInstr, decode_trace
from repro.sim.prefetch import make_data_prefetcher, make_instruction_prefetcher
from repro.sim.stats import SimStats

_LINE_MASK = ~(LINE_SIZE - 1)

_CALL_TYPES = (BranchType.DIRECT_CALL, BranchType.INDIRECT_CALL)
_INDIRECT_TYPES = (BranchType.INDIRECT, BranchType.INDIRECT_CALL)


class _TimedCalls:
    """Attribute-forwarding proxy that wall-times selected methods.

    Installed over the engine's components only when observability is
    enabled — the disabled hot loop never sees a proxy — charging each
    listed method's time to a component bucket (``keys`` maps method
    name to bucket).
    """

    __slots__ = ("_obj", "_times", "_keys")

    def __init__(self, obj: Any, times: Dict[str, float], keys: Dict[str, str]) -> None:
        self._obj = obj
        self._times = times
        self._keys = keys

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._obj, name)
        key = self._keys.get(name)
        if key is None:
            return attr
        times = self._times
        bucket = key

        def timed(*args: Any, **kwargs: Any) -> Any:
            start = perf_counter()
            try:
                return attr(*args, **kwargs)
            finally:
                times[bucket] += perf_counter() - start

        return timed


def wrap_branch_components(
    component_time: Dict[str, float],
    direction: Any,
    btb: Any,
    ras: Any,
    ittage: Any,
    l1i_pf: Any,
) -> tuple:
    """Install :class:`_TimedCalls` over the branch/prefetch components.

    Shared between the scalar and vector engines so both attribute the
    same methods to the same ``sim.<component>`` buckets.
    """
    direction = _TimedCalls(
        direction, component_time, {"predict": "branch", "update": "branch"}
    )
    btb = _TimedCalls(
        btb, component_time, {"lookup": "branch", "install": "branch"}
    )
    ras = _TimedCalls(ras, component_time, {"pop": "branch", "push": "branch"})
    if ittage is not None:
        ittage = _TimedCalls(
            ittage, component_time, {"predict": "branch", "update": "branch"}
        )
    if l1i_pf is not None:
        l1i_pf = _TimedCalls(l1i_pf, component_time, {"on_fetch": "prefetch"})
    return direction, btb, ras, ittage, l1i_pf


def emit_engine_obs(component_time: Dict[str, float], n: int, cycles: int) -> None:
    """Emit the per-component spans and engine counters for one run."""
    from repro import obs

    start = perf_counter()
    for component, seconds in component_time.items():
        if seconds > 0.0:
            obs.emit_child_span(
                f"sim.{component}",
                start,
                seconds,
                {"instructions": n},
            )
    obs.counter(
        "repro_sim_instructions_total",
        "Instructions simulated (incl. warm-up).",
    ).inc(n)
    obs.counter(
        "repro_sim_cycles_total", "Post-warm-up cycles simulated."
    ).inc(cycles)


class ComponentPool:
    """Constructed components captured from a finished engine for reuse.

    Component construction (TAGE's flat tables, the cache level dicts,
    the prefetcher tables) costs real time per run, and the simulator
    drives many runs of the same configuration over one trace.  A pool
    captures the finished engine's component objects; the next engine
    built for the *same* engine type and configuration adopts them,
    resetting each to construction-time state against its fresh
    :class:`~repro.sim.stats.SimStats` — every component's ``reset``
    contract makes the adopted run bit-identical to a cold one.
    """

    __slots__ = (
        "engine_type",
        "config",
        "hierarchy",
        "l1i_prefetcher",
        "direction",
        "btb",
        "ras",
        "ittage",
    )

    def __init__(
        self,
        engine_type: type,
        config: SimConfig,
        hierarchy: Any,
        l1i_prefetcher: Any,
        direction: Any,
        btb: Any,
        ras: Any,
        ittage: Any,
    ) -> None:
        self.engine_type = engine_type
        self.config = config
        self.hierarchy = hierarchy
        self.l1i_prefetcher = l1i_prefetcher
        self.direction = direction
        self.btb = btb
        self.ras = ras
        self.ittage = ittage


class Engine:
    """Single-run engine; construct fresh per simulation.

    ``decode_cache`` (usually supplied by the long-lived
    :class:`~repro.sim.simulator.Simulator`) lets :meth:`run` accept raw
    :class:`~repro.champsim.trace.ChampSimInstr` sequences and decode
    them through the shared pre-decode memo, so warm-up+measure loops
    over one trace stop re-decoding the same hot instructions.

    ``component_pool`` (also simulator-supplied) recycles the previous
    run's component objects when the engine type and configuration
    match, skipping reconstruction; see :class:`ComponentPool`.
    ``batch_components`` lets callers force the scalar per-call
    component path in engines that support batched component plans (the
    vector engine); the scalar engine ignores it.
    """

    def __init__(
        self,
        config: SimConfig,
        decode_cache: "Optional[DecodeCache]" = None,
        component_pool: "Optional[ComponentPool]" = None,
        batch_components: bool = True,
    ) -> None:
        self.config = config
        self.decode_cache = decode_cache
        self._batch_components = batch_components
        self.stats = SimStats()
        pool = component_pool
        if (
            pool is not None
            and pool.engine_type is type(self)
            and pool.config == config
        ):
            hierarchy = self.hierarchy = pool.hierarchy
            hierarchy.reset(self.stats)
            if hierarchy.l1d_prefetcher is not None:
                hierarchy.l1d_prefetcher.reset()
            if hierarchy.l2_prefetcher is not None:
                hierarchy.l2_prefetcher.reset()
            self.l1i_prefetcher = pool.l1i_prefetcher
            if self.l1i_prefetcher is not None:
                self.l1i_prefetcher.reset()
            self.direction = pool.direction
            self.direction.reset()
            self.btb = pool.btb
            self.btb.reset()
            self.ras = pool.ras
            self.ras.reset()
            self.ittage = pool.ittage
            if self.ittage is not None:
                self.ittage.reset()
            return
        self.hierarchy = self._build_hierarchy(config, self.stats)
        self.hierarchy.l1d_prefetcher = make_data_prefetcher(
            config.l1d_prefetcher, "l1d"
        )
        self.hierarchy.l2_prefetcher = make_data_prefetcher(config.l2_prefetcher, "l2")
        self.l1i_prefetcher = make_instruction_prefetcher(config.l1i_prefetcher)
        self.direction = make_direction_predictor(config.direction_predictor)
        self.btb = BTB(config.btb_entries, config.btb_ways)
        self.ras = ReturnAddressStack(config.ras_size)
        self.ittage = ITTAGE() if config.indirect_predictor == "ittage" else None

    def export_pool(self) -> ComponentPool:
        """Capture this engine's components for adoption by the next run."""
        return ComponentPool(
            type(self),
            self.config,
            self.hierarchy,
            self.l1i_prefetcher,
            self.direction,
            self.btb,
            self.ras,
            self.ittage,
        )

    def _build_hierarchy(
        self, config: SimConfig, stats: SimStats
    ) -> CacheHierarchy:
        """Hierarchy factory hook; the vector engine swaps in its
        flattened mirror here."""
        return CacheHierarchy(config, stats)

    # ------------------------------------------------------------------

    def run(
        self,
        decoded: Sequence[DecodedInstr],
        rules: BranchRules = BranchRules.ORIGINAL,
    ) -> SimStats:
        """Simulate the whole trace; return the (post-warm-up) statistics.

        ``decoded`` may also be a sequence of raw
        :class:`~repro.champsim.trace.ChampSimInstr` records; they are
        decoded here under ``rules``, through :attr:`decode_cache` when
        one is attached.
        """
        if decoded and not isinstance(decoded[0], DecodedInstr):
            decoded = decode_trace(decoded, rules, cache=self.decode_cache)
        config = self.config
        stats = self.stats
        hierarchy = self.hierarchy
        direction = self.direction
        btb = self.btb
        ras = self.ras
        ittage = self.ittage
        l1i_pf = self.l1i_prefetcher

        from repro.obs import state as obs_state

        component_time: Optional[Dict[str, float]] = None
        if obs_state.enabled():
            # Exact per-component attribution: proxy the engine's
            # components so cache accesses, predictor work, and prefetch
            # issue are each timed.  Only the enabled path pays for it.
            component_time = {"cache": 0.0, "branch": 0.0, "prefetch": 0.0}
            hierarchy = _TimedCalls(
                hierarchy,
                component_time,
                {
                    "access_instruction": "cache",
                    "access_data": "cache",
                    "prefetch_instruction": "prefetch",
                },
            )
            direction, btb, ras, ittage, l1i_pf = wrap_branch_components(
                component_time, direction, btb, ras, ittage, l1i_pf
            )

        n = len(decoded)
        warmup = int(n * config.warmup_fraction)
        stats.enabled = warmup == 0

        fetch_width = config.fetch_width
        dispatch_width = config.dispatch_width
        exec_width = config.exec_width
        retire_width = config.retire_width
        rob_size = config.rob_size
        frontend_depth = config.frontend_depth
        restart = config.mispredict_restart
        btb_miss_penalty = config.btb_miss_penalty
        l1i_hit = hierarchy.l1i.latency
        alu_latency = config.alu_latency
        branch_latency = config.branch_latency
        ideal_targets = config.ideal_targets
        fdip = config.fdip_lookahead if config.decoupled_frontend else 0

        reg_ready: Dict[int, int] = {}
        rob_retires: deque = deque()
        issue_load: Dict[int, int] = {}

        # Finite physical register file (0 = unlimited): every in-flight
        # destination holds a physical register from dispatch to retire.
        # The heap of (retire_time, count) frees registers lazily.
        prf_size = config.prf_size
        prf_free = prf_size
        prf_pending: deque = deque()  # (retire_time, regs) in retire order

        fetch_cycle = 0
        group_line = -1
        fetched_in_group = 0
        redirect_at = 0

        dispatch_cycle = 0
        dispatched_in_cycle = 0

        last_retire = 0
        retired_in_cycle = 0

        warmup_base_cycle = 0

        # FDIP runahead cursor over the decoded stream.
        fdip_cursor = 0
        fdip_lines_ahead = 0
        fdip_last_line = -1

        # Branch context handed to the L1I prefetcher at the next group.
        last_branch_ip: Optional[int] = None
        last_branch_type = BranchType.NOT_BRANCH
        last_branch_target: Optional[int] = None

        for index in range(n):
            d = decoded[index]
            if index == warmup:
                stats.enabled = True
                warmup_base_cycle = last_retire

            # ----------------------------------------------------- fetch
            ip = d.ip
            line = ip & _LINE_MASK
            new_group = (
                line != group_line
                or fetched_in_group >= fetch_width
                or redirect_at > fetch_cycle
            )
            if new_group:
                fetch_cycle = max(fetch_cycle + 1, redirect_at)
                new_line = line != group_line
                group_line = line
                fetched_in_group = 0
                if new_line:
                    result = hierarchy.access_instruction(ip, fetch_cycle)
                    extra = result.latency - l1i_hit
                    if extra > 0:
                        fetch_cycle += extra
                    if l1i_pf is not None:
                        l1i_pf.on_fetch(
                            line,
                            result.l1_hit,
                            hierarchy,
                            fetch_cycle,
                            branch_ip=last_branch_ip,
                            branch_type=last_branch_type,
                            branch_target=last_branch_target,
                        )
                        last_branch_ip = None
                        last_branch_type = BranchType.NOT_BRANCH
                        last_branch_target = None
                    if fdip:
                        # Runahead: keep `fdip` distinct lines prefetched
                        # ahead of the fetch point.
                        fdip_lines_ahead -= 1
                        if fdip_cursor <= index:
                            fdip_cursor = index + 1
                            fdip_lines_ahead = 0
                            fdip_last_line = line
                        while fdip_lines_ahead < fdip and fdip_cursor < n:
                            next_line = decoded[fdip_cursor].ip & _LINE_MASK
                            if next_line != fdip_last_line:
                                hierarchy.prefetch_instruction(
                                    next_line, fetch_cycle
                                )
                                fdip_last_line = next_line
                                fdip_lines_ahead += 1
                            fdip_cursor += 1
            fetch_time = fetch_cycle
            fetched_in_group += 1

            # -------------------------------------------------- dispatch
            earliest = fetch_time + frontend_depth
            if len(rob_retires) >= rob_size:
                slot_free = rob_retires.popleft()
                if slot_free > earliest:
                    earliest = slot_free
            if prf_size and d.dst_regs:
                needed = len(d.dst_regs)
                # Reclaim registers whose holders have retired by now.
                while prf_pending and prf_pending[0][0] <= earliest:
                    prf_free += prf_pending.popleft()[1]
                while prf_free < needed and prf_pending:
                    when, count = prf_pending.popleft()
                    prf_free += count
                    if when > earliest:
                        earliest = when
                prf_free -= needed
            if earliest > dispatch_cycle:
                dispatch_cycle = earliest
                dispatched_in_cycle = 1
            else:
                dispatched_in_cycle += 1
                if dispatched_in_cycle > dispatch_width:
                    dispatch_cycle += 1
                    dispatched_in_cycle = 1
            dispatch_time = dispatch_cycle

            # ----------------------------------------------------- issue
            ready = dispatch_time
            for reg in d.src_regs:
                t = reg_ready.get(reg, 0)
                if t > ready:
                    ready = t
            issue = ready
            while issue_load.get(issue, 0) >= exec_width:
                issue += 1
            issue_load[issue] = issue_load.get(issue, 0) + 1
            if len(issue_load) > 8192:
                horizon = issue - 64
                issue_load = {c: k for c, k in issue_load.items() if c >= horizon}

            # -------------------------------------------------- complete
            if d.src_mem:
                latency = 0
                for addr in d.src_mem:
                    result = hierarchy.access_data(ip, addr, issue, is_write=False)
                    if result.latency > latency:
                        latency = result.latency
                complete = issue + latency
            elif d.dst_mem:
                for addr in d.dst_mem:
                    hierarchy.access_data(ip, addr, issue, is_write=True)
                complete = issue + alu_latency
            elif d.is_branch:
                complete = issue + branch_latency
            else:
                complete = issue + alu_latency

            for reg in d.dst_regs:
                reg_ready[reg] = complete

            # ---------------------------------------------------- branch
            if d.is_branch:
                branch_type = d.branch_type
                taken = d.branch_taken
                actual_target = d.target

                if branch_type is BranchType.CONDITIONAL:
                    pred_taken = direction.predict(ip)
                    direction.update(ip, taken)
                    direction_wrong = pred_taken != taken
                else:
                    pred_taken = True
                    direction_wrong = False

                target_wrong = False
                btb_hit = True
                if ideal_targets:
                    pass  # perfect targets: only direction can redirect
                else:
                    entry = btb.lookup(ip)
                    btb_hit = entry is not None
                    if branch_type is BranchType.RETURN:
                        pred_target = ras.pop()
                    elif branch_type in _INDIRECT_TYPES:
                        pred_target = None
                        if ittage is not None:
                            pred_target = ittage.predict(ip)
                        if pred_target is None and entry is not None:
                            pred_target = entry[0]
                    else:
                        pred_target = entry[0] if entry is not None else None
                    if branch_type in _CALL_TYPES:
                        ras.push(ip + 4)
                    if taken:
                        btb.install(ip, actual_target, branch_type)
                        if ittage is not None and branch_type in _INDIRECT_TYPES:
                            ittage.update(ip, actual_target)
                        if pred_taken:
                            target_wrong = (
                                pred_target is None or pred_target != actual_target
                            )

                stats.count_branch(branch_type, taken, direction_wrong, target_wrong)

                if direction_wrong or target_wrong:
                    redirect_at = complete + restart
                elif taken and not ideal_targets and not btb_hit:
                    # Decode-time re-steer: target computable, but the
                    # front-end had no BTB entry to follow at fetch.
                    redirect_at = fetch_time + btb_miss_penalty

                last_branch_ip = ip
                last_branch_type = branch_type
                last_branch_target = actual_target if taken else None

            # ---------------------------------------------------- retire
            if complete > last_retire:
                last_retire = complete
                retired_in_cycle = 1
            else:
                retired_in_cycle += 1
                if retired_in_cycle > retire_width:
                    last_retire += 1
                    retired_in_cycle = 1
            rob_retires.append(last_retire)
            if prf_size and d.dst_regs:
                prf_pending.append((last_retire, len(d.dst_regs)))

            stats.count_instruction()

        stats.cycles = max(1, last_retire - warmup_base_cycle)

        if component_time is not None:
            emit_engine_obs(component_time, n, stats.cycles)
        return stats
