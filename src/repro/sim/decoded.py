"""Decode ChampSim trace instructions for the timing model.

ChampSim traces carry neither branch types nor branch targets: the type
is deduced from register usage (:mod:`repro.champsim.branch_info`) and
the target of a taken branch is the IP of the *next* instruction in the
trace.  :func:`decode_trace` performs both derivations in one pass.

Dynamic traces replay the same static instructions millions of times, so
:class:`DecodeCache` memoizes the finished :class:`DecodedInstr` per
unique record: warm-up plus measurement loops (and repeated
:class:`~repro.sim.simulator.Simulator` runs over one trace) deduce each
hot instruction's branch type once instead of once per dynamic instance.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.champsim.branch_info import BranchRules, BranchType, deduce_branch_type
from repro.champsim.trace import ChampSimInstr
from repro.sim.config import SimConfig

try:  # numpy accelerates columnarisation; the fallback is pure python
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None


@dataclass
class DecodedInstr:
    """One instruction, ready for the engine.

    ``target`` is the architectural next-IP of a taken branch (0 for
    everything else); ``is_load``/``is_store`` follow ChampSim's rule
    (memory sources → load, memory destinations → store).
    """

    ip: int
    branch_type: BranchType
    branch_taken: bool
    target: int
    src_regs: Tuple[int, ...]
    dst_regs: Tuple[int, ...]
    src_mem: Tuple[int, ...]
    dst_mem: Tuple[int, ...]

    @property
    def is_branch(self) -> bool:
        return self.branch_type is not BranchType.NOT_BRANCH

    @property
    def is_load(self) -> bool:
        return bool(self.src_mem)

    @property
    def is_store(self) -> bool:
        return bool(self.dst_mem)


#: Default bound on :class:`DecodeCache`.  One entry per unique dynamic
#: record; branches and register-only instructions repeat exactly, so a
#: trace's working set is its static-instruction count (thousands), far
#: below this.
DECODE_CACHE_SIZE = 1 << 16


class DecodeCache:
    """LRU memo of :class:`DecodedInstr` objects, reusable across runs.

    The key is the instruction's PC plus every other field of its 64-byte
    ChampSim record (the fields are bijective with the record's raw
    bytes, so this is "PC + raw bytes" without paying to re-encode them),
    plus the attached next-IP target and the branch-rule set.  Cached
    entries are shared: the engine treats :class:`DecodedInstr` as
    read-only, and the differential tests pin that repeated cached runs
    produce identical statistics.
    """

    __slots__ = ("maxsize", "hits", "misses", "_entries")

    def __init__(self, maxsize: int = DECODE_CACHE_SIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[tuple, DecodedInstr]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def decode(
        self, instr: ChampSimInstr, target: int, rules: BranchRules
    ) -> DecodedInstr:
        """Return the (possibly shared) decode of one dynamic record."""
        key = (
            rules,
            instr.ip,
            instr.is_branch,
            instr.branch_taken,
            instr.src_regs,
            instr.dst_regs,
            instr.src_mem,
            instr.dst_mem,
            target,
        )
        entries = self._entries
        cached = entries.get(key)
        if cached is not None:
            self.hits += 1
            entries.move_to_end(key)
            return cached
        self.misses += 1
        decoded = DecodedInstr(
            ip=instr.ip,
            branch_type=deduce_branch_type(instr, rules),
            branch_taken=bool(instr.is_branch and instr.branch_taken),
            target=target,
            src_regs=instr.src_regs,
            dst_regs=instr.dst_regs,
            src_mem=instr.src_mem,
            dst_mem=instr.dst_mem,
        )
        entries[key] = decoded
        if len(entries) > self.maxsize:
            entries.popitem(last=False)
        return decoded


#: Kind bits in :attr:`DecodedColumns.kinds` (0 = plain ALU op).
KIND_SRC_MEM = 1
KIND_DST_MEM = 2
KIND_BRANCH = 4

#: Cacheline granularity of the fetch stage (mirrors the cache model).
_LINE_BITS = 6
_LINE_MASK = ~((1 << _LINE_BITS) - 1)


class DecodedColumns:
    """Column-oriented view of a decoded trace for the vector engine.

    The structure-of-arrays counterpart to a ``List[DecodedInstr]``: one
    parallel column per field the engine touches, so the hot loop reads
    plain Python lists instead of dataclass attributes, plus a
    numpy-precomputed ``new_line`` break mask (``line[i] != line[i-1]``,
    the fetch stage's serialization points).  Event columns (branch
    outcome, target, memory operand tuples) are only indexed when the
    event occurs; :attr:`decoded` keeps the original instruction objects
    reachable for callers that need the row view back.
    """

    __slots__ = (
        "decoded",
        "n",
        "ips",
        "lines",
        "new_line",
        "kinds",
        "src_regs",
        "dst_regs",
        "branch_types",
        "branch_takens",
        "targets",
        "src_mems",
        "dst_mems",
        "max_reg",
        "plan_cache",
        "_branch_view",
        "_access_events",
        "_fetch_events",
    )

    def __init__(self, decoded: Sequence[DecodedInstr]) -> None:
        self.decoded = (
            decoded if isinstance(decoded, list) else list(decoded)
        )
        decoded = self.decoded
        self.n = n = len(decoded)
        not_branch = BranchType.NOT_BRANCH
        self.ips = ips = [d.ip for d in decoded]
        self.kinds = [
            (KIND_SRC_MEM if d.src_mem else 0)
            | (KIND_DST_MEM if d.dst_mem else 0)
            | (KIND_BRANCH if d.branch_type is not not_branch else 0)
            for d in decoded
        ]
        self.src_regs = [d.src_regs for d in decoded]
        self.dst_regs = [d.dst_regs for d in decoded]
        self.branch_types = [d.branch_type for d in decoded]
        self.branch_takens = [d.branch_taken for d in decoded]
        self.targets = [d.target for d in decoded]
        self.src_mems = [d.src_mem for d in decoded]
        self.dst_mems = [d.dst_mem for d in decoded]
        if _np is not None and n:
            line_array = _np.array(ips, dtype=_np.uint64) >> _LINE_BITS
            breaks = _np.empty(n, dtype=bool)
            breaks[0] = True
            _np.not_equal(line_array[1:], line_array[:-1], out=breaks[1:])
            self.lines = (line_array << _LINE_BITS).tolist()
            self.new_line = breaks.tolist()
        else:
            self.lines = [ip & _LINE_MASK for ip in ips]
            self.new_line = [
                i == 0 or self.lines[i] != self.lines[i - 1] for i in range(n)
            ]
        max_reg = 0
        for regs in self.src_regs:
            for reg in regs:
                if reg > max_reg:
                    max_reg = reg
        for regs in self.dst_regs:
            for reg in regs:
                if reg > max_reg:
                    max_reg = reg
        self.max_reg = max_reg
        #: Memoized component plans, keyed by the tuples from
        #: :meth:`plan_keys`.  The columns are immutable once built, so a
        #: plan resolved for one run is bit-identically valid for every
        #: later run over the same columns with the same component config.
        self.plan_cache: dict = {}
        self._branch_view: Optional[
            Tuple[
                List[int],
                List[int],
                List[BranchType],
                List[bool],
                List[int],
            ]
        ] = None
        self._access_events: Optional[Tuple[List[int], List[int]]] = None
        self._fetch_events: Optional[
            List[Tuple[int, Optional[int], BranchType, Optional[int]]]
        ] = None

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # derived event streams for batched component plans
    # ------------------------------------------------------------------

    def branch_view(
        self,
    ) -> Tuple[List[int], List[int], List[BranchType], List[bool], List[int]]:
        """Columns restricted to branches: (indices, ips, types, takens,
        targets), in program order.  Cached after the first call."""
        view = self._branch_view
        if view is None:
            idxs = [
                i for i, kind in enumerate(self.kinds) if kind & KIND_BRANCH
            ]
            ips = self.ips
            types = self.branch_types
            takens = self.branch_takens
            targets = self.targets
            view = self._branch_view = (
                idxs,
                [ips[i] for i in idxs],
                [types[i] for i in idxs],
                [takens[i] for i in idxs],
                [targets[i] for i in idxs],
            )
        return view

    def access_events(self) -> Tuple[List[int], List[int]]:
        """The demand data-access stream as parallel (ip, addr) columns.

        One event per address the engine's data path walks: for a memory
        instruction, the source-memory operands when present, else the
        destination-memory operands — mirroring the engine's load-first
        rule.  Cached after the first call.
        """
        events = self._access_events
        if events is None:
            ev_ips: List[int] = []
            ev_addrs: List[int] = []
            ips = self.ips
            src_mems = self.src_mems
            dst_mems = self.dst_mems
            for i, kind in enumerate(self.kinds):
                if kind & 3:
                    addrs = src_mems[i] if kind & 1 else dst_mems[i]
                    ip = ips[i]
                    for addr in addrs:
                        ev_ips.append(ip)
                        ev_addrs.append(addr)
            events = self._access_events = (ev_ips, ev_addrs)
        return events

    def fetch_events(
        self,
    ) -> List[Tuple[int, Optional[int], BranchType, Optional[int]]]:
        """The demand fetch stream as (line, branch_ip, branch_type,
        branch_target) events, one per ``new_line`` break.

        Branch context follows the engine's cleared-at-consume rule: a
        fetch event carries the most recent branch *completed before it*
        since the previous fetch event (branches resolve after their own
        line's fetch), and consuming the context clears it.  The target
        is attached only for taken branches.  Cached after the first
        call.
        """
        events = self._fetch_events
        if events is None:
            events = []
            append = events.append
            not_branch = BranchType.NOT_BRANCH
            branch_ip: Optional[int] = None
            branch_type = not_branch
            branch_target: Optional[int] = None
            lines = self.lines
            new_line = self.new_line
            ips = self.ips
            branch_types = self.branch_types
            branch_takens = self.branch_takens
            targets = self.targets
            for i, kind in enumerate(self.kinds):
                if new_line[i]:
                    append((lines[i], branch_ip, branch_type, branch_target))
                    branch_ip = None
                    branch_type = not_branch
                    branch_target = None
                if kind & KIND_BRANCH:
                    branch_ip = ips[i]
                    branch_type = branch_types[i]
                    branch_target = targets[i] if branch_takens[i] else None
            self._fetch_events = events
        return events

    def plan_keys(
        self, config: SimConfig
    ) -> Tuple[tuple, tuple, tuple]:
        """Cache keys for the branch / data-prefetch / instruction-
        prefetch plans under ``config``.

        Each key covers exactly the configuration fields that shape the
        corresponding plan (component construction parameters plus, for
        branches, the warm-up boundary that gates tallies).
        """
        branch_key = (
            "branch",
            config.direction_predictor,
            config.btb_entries,
            config.btb_ways,
            config.ras_size,
            config.indirect_predictor,
            config.ideal_targets,
            config.warmup_fraction,
        )
        dpf_key = ("dpf", config.l1d_prefetcher)
        ipf_key = ("ipf", config.l1i_prefetcher)
        return branch_key, dpf_key, ipf_key


def columnarize(
    decoded: Sequence[DecodedInstr],
) -> DecodedColumns:
    """Build the structure-of-arrays view of ``decoded``."""
    return DecodedColumns(decoded)


def decode_trace(
    instrs: Sequence[ChampSimInstr],
    rules: BranchRules = BranchRules.ORIGINAL,
    cache: Optional[DecodeCache] = None,
) -> List[DecodedInstr]:
    """Deduce branch types and attach next-IP targets.

    The last instruction of a taken-branch-terminated trace has no next
    IP; its target falls back to its own IP (it cannot influence timing).

    With a :class:`DecodeCache`, repeated static instructions reuse one
    shared :class:`DecodedInstr` instead of re-deducing their branch
    type — the output is element-wise equal to the uncached decode.
    """
    decoded: List[DecodedInstr] = []
    append = decoded.append
    n = len(instrs)
    for index, instr in enumerate(instrs):
        taken = bool(instr.is_branch and instr.branch_taken)
        target = 0
        if taken:
            target = instrs[index + 1].ip if index + 1 < n else instr.ip
        if cache is not None:
            append(cache.decode(instr, target, rules))
            continue
        append(
            DecodedInstr(
                ip=instr.ip,
                branch_type=deduce_branch_type(instr, rules),
                branch_taken=taken,
                target=target,
                src_regs=instr.src_regs,
                dst_regs=instr.dst_regs,
                src_mem=instr.src_mem,
                dst_mem=instr.dst_mem,
            )
        )
    return decoded
