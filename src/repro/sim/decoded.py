"""Decode ChampSim trace instructions for the timing model.

ChampSim traces carry neither branch types nor branch targets: the type
is deduced from register usage (:mod:`repro.champsim.branch_info`) and
the target of a taken branch is the IP of the *next* instruction in the
trace.  :func:`decode_trace` performs both derivations in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.champsim.branch_info import BranchRules, BranchType, deduce_branch_type
from repro.champsim.trace import ChampSimInstr


@dataclass
class DecodedInstr:
    """One instruction, ready for the engine.

    ``target`` is the architectural next-IP of a taken branch (0 for
    everything else); ``is_load``/``is_store`` follow ChampSim's rule
    (memory sources → load, memory destinations → store).
    """

    ip: int
    branch_type: BranchType
    branch_taken: bool
    target: int
    src_regs: Tuple[int, ...]
    dst_regs: Tuple[int, ...]
    src_mem: Tuple[int, ...]
    dst_mem: Tuple[int, ...]

    @property
    def is_branch(self) -> bool:
        return self.branch_type is not BranchType.NOT_BRANCH

    @property
    def is_load(self) -> bool:
        return bool(self.src_mem)

    @property
    def is_store(self) -> bool:
        return bool(self.dst_mem)


def decode_trace(
    instrs: Sequence[ChampSimInstr],
    rules: BranchRules = BranchRules.ORIGINAL,
) -> List[DecodedInstr]:
    """Deduce branch types and attach next-IP targets.

    The last instruction of a taken-branch-terminated trace has no next
    IP; its target falls back to its own IP (it cannot influence timing).
    """
    decoded: List[DecodedInstr] = []
    for index, instr in enumerate(instrs):
        branch_type = deduce_branch_type(instr, rules)
        taken = bool(instr.is_branch and instr.branch_taken)
        target = 0
        if taken:
            if index + 1 < len(instrs):
                target = instrs[index + 1].ip
            else:
                target = instr.ip
        decoded.append(
            DecodedInstr(
                ip=instr.ip,
                branch_type=branch_type,
                branch_taken=taken,
                target=target,
                src_regs=instr.src_regs,
                dst_regs=instr.dst_regs,
                src_mem=instr.src_mem,
                dst_mem=instr.dst_mem,
            )
        )
    return decoded
