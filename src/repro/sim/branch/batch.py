"""Whole-trace branch resolution for the batched vector engine.

The engine's branch block is *timing-independent*: the direction
predictor, BTB, RAS and ITTAGE receive only ``(ip, taken, target,
branch_type)`` — never a cycle count — and the trace supplies the actual
outcomes, so the entire branch subsequence of a run can be resolved in
one precompute pass before the timing sweep.  The sweep then consumes a
per-branch *code* stream:

- ``0`` — no redirect;
- ``1`` — misprediction (direction or target): redirect at
  ``complete + mispredict_restart``;
- ``2`` — BTB miss on a taken branch: decode-time re-steer at
  ``fetch_time + btb_miss_penalty``.

The four components are mutually state-disjoint, so each one's full
subsequence is processed in its own batched call (its *internal*
per-branch call order — lookup before conditional install, pop before
push, predict before conditional update — is preserved exactly), which
keeps every table, stack, and RNG bit-identical to the scalar engine's
interleaved per-branch calls.

Alongside the codes, the pass pre-tallies the post-warm-up branch
statistics the sweep folds into ``SimStats`` (it never touches stats
itself — the engine owns that fold).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.champsim.branch_info import BranchType
from repro.sim.branch.base import DirectionPredictor
from repro.sim.branch.btb import BTB
from repro.sim.branch.ittage import ITTAGE
from repro.sim.branch.ras import ReturnAddressStack

_BT_COND = BranchType.CONDITIONAL
_BT_RETURN = BranchType.RETURN
_INDIRECT_TYPES = (BranchType.INDIRECT, BranchType.INDIRECT_CALL)

#: ``(branches, taken, direction_wrong, target_wrong, mispredicted,
#: by_type, target_misses_by_type)`` — post-warm-up tallies.
BranchTallies = Tuple[
    int, int, int, int, int, Dict[BranchType, int], Dict[BranchType, int]
]

#: ``(codes, tallies)`` — one code per branch, plus the stat tallies.
BranchPlan = Tuple[List[int], BranchTallies]


def resolve_branch_plan(
    indices: Sequence[int],
    ips: Sequence[int],
    branch_types: Sequence[BranchType],
    takens: Sequence[bool],
    targets: Sequence[int],
    direction: DirectionPredictor,
    btb: BTB,
    ras: ReturnAddressStack,
    ittage: Optional[ITTAGE],
    ideal_targets: bool,
    warmup: int,
) -> BranchPlan:
    """Resolve every branch of a run against fresh component state.

    ``indices`` are the branches' global instruction indices (for the
    warm-up gate); the remaining columns are the branch subsequence of
    :class:`~repro.sim.decoded.DecodedColumns`.  The components are
    mutated exactly as the scalar engine would mutate them.
    """
    n = len(ips)
    cond_ips: List[int] = []
    cond_takens: List[bool] = []
    for i in range(n):
        if branch_types[i] is _BT_COND:
            cond_ips.append(ips[i])
            cond_takens.append(takens[i])
    dir_preds = direction.predict_update_batch(cond_ips, cond_takens)

    entries: Optional[List[Optional[Tuple[int, BranchType]]]] = None
    ras_preds: List[Optional[int]] = []
    itt_preds: List[Optional[int]] = []
    if not ideal_targets:
        entries = btb.lookup_install_batch(ips, takens, targets, branch_types)
        ras_preds = ras.pop_push_batch(branch_types, ips)
        if ittage is not None:
            ind = [i for i in range(n) if branch_types[i] in _INDIRECT_TYPES]
            itt_preds = ittage.predict_update_batch(
                [ips[i] for i in ind],
                [takens[i] for i in ind],
                [targets[i] for i in ind],
            )

    codes = [0] * n
    b_branches = 0
    b_taken = 0
    b_direction = 0
    b_target = 0
    b_mispredicted = 0
    by_type: Dict[BranchType, int] = {}
    tgt_by_type: Dict[BranchType, int] = {}

    ci = 0  # cursor over the conditional subsequence
    ki = 0  # cursor over the indirect subsequence
    for i in range(n):
        branch_type = branch_types[i]
        taken = takens[i]

        if branch_type is _BT_COND:
            pred_taken = dir_preds[ci]
            ci += 1
            direction_wrong = pred_taken != taken
        else:
            pred_taken = True
            direction_wrong = False

        target_wrong = False
        btb_hit = True
        if entries is not None:
            entry = entries[i]
            btb_hit = entry is not None
            if branch_type is _BT_RETURN:
                pred_target = ras_preds[i]
            elif branch_type in _INDIRECT_TYPES:
                pred_target = None
                if ittage is not None:
                    pred_target = itt_preds[ki]
                    ki += 1
                if pred_target is None and entry is not None:
                    pred_target = entry[0]
            else:
                pred_target = entry[0] if entry is not None else None
            if taken and pred_taken:
                target_wrong = pred_target is None or pred_target != targets[i]

        if direction_wrong or target_wrong:
            codes[i] = 1
        elif taken and not ideal_targets and not btb_hit:
            codes[i] = 2

        if indices[i] >= warmup:
            b_branches += 1
            by_type[branch_type] = by_type.get(branch_type, 0) + 1
            if taken:
                b_taken += 1
            if direction_wrong:
                b_direction += 1
            if target_wrong:
                b_target += 1
                tgt_by_type[branch_type] = tgt_by_type.get(branch_type, 0) + 1
            if direction_wrong or target_wrong:
                b_mispredicted += 1

    return codes, (
        b_branches,
        b_taken,
        b_direction,
        b_target,
        b_mispredicted,
        by_type,
        tgt_by_type,
    )
