"""Direction-predictor interface."""

from __future__ import annotations

import abc
from typing import List, Sequence


class DirectionPredictor(abc.ABC):
    """Predict taken/not-taken for conditional branches.

    The engine calls :meth:`predict` at fetch and :meth:`update` at
    resolve with the actual outcome (trace-driven, so resolve order is
    program order).

    The batched engine instead calls :meth:`predict_update_batch` once
    per conditional-branch subsequence; the contract (see
    ``docs/vector_engine.md``) is that it must be bit-identical to the
    serial ``predict``/``update`` pair per branch — same table state,
    same history, same RNG draws — so the scalar and vector engines stay
    interchangeable.  :meth:`reset` restores construction-time state so
    a pooled predictor can be reused across runs without reallocating
    its tables.
    """

    @abc.abstractmethod
    def predict(self, ip: int) -> bool:
        """Return the predicted direction for the branch at ``ip``."""

    @abc.abstractmethod
    def update(self, ip: int, taken: bool) -> None:
        """Train with the actual outcome."""

    def predict_update_batch(
        self, ips: Sequence[int], takens: Sequence[bool]
    ) -> List[bool]:
        """Predict-and-train a branch subsequence in one call.

        Default implementation loops the scalar pair, so any predictor
        is batchable; stateful subclasses override with a fused loop
        that hoists table/history lookups out of the per-branch path.
        """
        predict = self.predict
        update = self.update
        preds = [False] * len(ips)
        for i, ip in enumerate(ips):
            preds[i] = predict(ip)
            update(ip, takens[i])
        return preds

    def reset(self) -> None:
        """Restore construction-time state (stateless default: no-op).

        Stateful predictors must override so the component pool can
        reuse them across runs bit-identically.
        """
