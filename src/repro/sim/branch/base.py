"""Direction-predictor interface."""

from __future__ import annotations

import abc


class DirectionPredictor(abc.ABC):
    """Predict taken/not-taken for conditional branches.

    The engine calls :meth:`predict` at fetch and :meth:`update` at
    resolve with the actual outcome (trace-driven, so resolve order is
    program order).
    """

    @abc.abstractmethod
    def predict(self, ip: int) -> bool:
        """Return the predicted direction for the branch at ``ip``."""

    @abc.abstractmethod
    def update(self, ip: int, taken: bool) -> None:
        """Train with the actual outcome."""
