"""Return address stack.

The structure at the heart of the paper's ``call-stack`` improvement
(Section 3.2.1): with the original converter, indirect calls that read
and write X30 are typed as *returns*, so they pop the RAS instead of
pushing it — mispredicting their own target and desynchronising the
stack for every genuine return above them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.champsim.branch_info import BranchType

_RETURN = BranchType.RETURN
_CALLS = (BranchType.DIRECT_CALL, BranchType.INDIRECT_CALL)


class ReturnAddressStack:
    """Bounded LIFO of predicted return addresses."""

    def __init__(self, size: int = 64) -> None:
        self._size = size
        self._stack: List[int] = []

    def __len__(self) -> int:
        return len(self._stack)

    def push(self, return_address: int) -> None:
        """Record the return address of a fetched call."""
        if len(self._stack) >= self._size:
            # Overflow discards the oldest entry (deep recursion).
            self._stack.pop(0)
        self._stack.append(return_address)

    def pop(self) -> Optional[int]:
        """Predicted target of a fetched return (None when empty)."""
        if not self._stack:
            return None
        return self._stack.pop()

    def pop_push_batch(
        self, branch_types: Sequence[BranchType], ips: Sequence[int]
    ) -> List[Optional[int]]:
        """Pop returns and push calls for a whole branch subsequence.

        Returns the pop result at RETURN positions (``None`` elsewhere
        and on underflow), matching the scalar engine's per-branch
        ``pop``/``push`` order bit-identically.
        """
        stack = self._stack
        size = self._size
        preds: List[Optional[int]] = [None] * len(branch_types)
        for i, branch_type in enumerate(branch_types):
            if branch_type is _RETURN:
                if stack:
                    preds[i] = stack.pop()
            elif branch_type in _CALLS:
                if len(stack) >= size:
                    stack.pop(0)
                stack.append(ips[i] + 4)
        return preds

    def clear(self) -> None:
        self._stack.clear()

    def reset(self) -> None:
        """Restore construction-time state (component-pool reuse)."""
        self._stack.clear()
