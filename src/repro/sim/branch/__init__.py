"""Branch prediction structures.

Direction predictors (:func:`make_direction_predictor` registry):

- ``bimodal`` — per-PC 2-bit counters;
- ``gshare`` — global-history-xor-PC 2-bit counters (stands in for the
  IPC-1 contest's hashed perceptron);
- ``tage`` — a TAGE-style tagged geometric-history predictor;
- ``tage-sc-l`` — TAGE plus the loop predictor and statistical corrector
  (the paper's 64KB TAGE-SC-L, at reduced size);
- ``always-taken`` — degenerate baseline for tests.

Target predictors: :class:`~repro.sim.branch.btb.BTB` (16K entries in the
paper's setup), :class:`~repro.sim.branch.ras.ReturnAddressStack`, and the
ITTAGE-style :class:`~repro.sim.branch.ittage.ITTAGE` indirect predictor.
"""

from repro.sim.branch.base import DirectionPredictor
from repro.sim.branch.bimodal import Bimodal, AlwaysTaken
from repro.sim.branch.gshare import GShare
from repro.sim.branch.tage import Tage
from repro.sim.branch.tage_scl import TageSCL, LoopPredictor, StatisticalCorrector
from repro.sim.branch.btb import BTB
from repro.sim.branch.ras import ReturnAddressStack
from repro.sim.branch.ittage import ITTAGE


def make_direction_predictor(name: str) -> DirectionPredictor:
    """Build a direction predictor from its registry name."""
    registry = {
        "bimodal": Bimodal,
        "gshare": GShare,
        "tage": Tage,
        "tage-sc-l": TageSCL,
        "always-taken": AlwaysTaken,
    }
    if name not in registry:
        raise ValueError(
            f"unknown direction predictor {name!r}; known: {sorted(registry)}"
        )
    return registry[name]()


__all__ = [
    "DirectionPredictor",
    "TageSCL",
    "LoopPredictor",
    "StatisticalCorrector",
    "Bimodal",
    "AlwaysTaken",
    "GShare",
    "Tage",
    "BTB",
    "ReturnAddressStack",
    "ITTAGE",
    "make_direction_predictor",
]
