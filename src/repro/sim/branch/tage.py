"""TAGE-style direction predictor.

A faithful-in-structure, reduced-in-size TAGE (Seznec): a bimodal base
table plus N partially-tagged components indexed with geometrically
increasing global-history lengths.  Prediction comes from the longest
matching component; allocation on mispredict targets the next-longer
component; useful counters arbitrate replacement.  This stands in for the
paper's 64KB TAGE-SC-L (the statistical corrector and loop predictor are
omitted — they trim the mispredict tail but do not change which branches
are fundamentally hard).

Storage is array-backed: each tagged component is four parallel flat
``int`` lists (tag, signed counter, useful, valid) mirroring the
structure-of-arrays layout of :mod:`repro.sim.decoded`.  Presence is the
``valid`` flag; every read is valid-gated and allocation writes all four
fields, so :meth:`Tage.reset` only has to clear the valid columns.

:meth:`Tage.predict_update_batch` is the batched predict-then-reconcile
path (see ``docs/vector_engine.md``): it processes a whole branch
subsequence in one call while preserving the serial history-update
semantics bit-identically.  Instead of re-folding the 256-bit global
history from scratch per lookup (the scalar path's dominant cost), it
maintains each table's folded history incrementally as a circular shift
register — the same trick hardware TAGE uses — which
``tests/test_component_batch.py`` pins against :meth:`_folded_history`
with hypothesis.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.sim.branch.base import DirectionPredictor

_HISTORY_MASK = (1 << 256) - 1


class Tage(DirectionPredictor):
    """TAGE with a bimodal base and ``num_tables`` tagged components."""

    def __init__(
        self,
        num_tables: int = 5,
        table_bits: int = 11,
        tag_bits: int = 9,
        min_history: int = 4,
        max_history: int = 128,
        seed: int = 0xC0FFEE,
    ) -> None:
        self._num_tables = num_tables
        self._table_mask = (1 << table_bits) - 1
        self._tag_mask = (1 << tag_bits) - 1
        size = 1 << table_bits
        # Parallel flat columns per tagged component; ``_valid`` gates
        # every read, so an invalid row's other columns are dead state.
        self._tags: List[List[int]] = [[0] * size for _ in range(num_tables)]
        self._ctrs: List[List[int]] = [[0] * size for _ in range(num_tables)]
        self._useful: List[List[int]] = [[0] * size for _ in range(num_tables)]
        self._valid: List[List[int]] = [[0] * size for _ in range(num_tables)]
        # Geometric history lengths.
        ratio = (max_history / min_history) ** (1.0 / max(1, num_tables - 1))
        self._hist_lens = [
            int(round(min_history * ratio**i)) for i in range(num_tables)
        ]
        self._base = [2] * (1 << 13)  # bimodal fallback, 2-bit counters
        self._base_mask = (1 << 13) - 1
        self._history = 0
        self._seed = seed
        self._rng = random.Random(seed)
        # Cached lookup for the predict→update pair of the same branch.
        self._last: Optional[Tuple[int, int, int, bool, bool]] = None

    def reset(self) -> None:
        """Restore construction-time state (for component pooling)."""
        zeros = [0] * (self._table_mask + 1)
        for valid in self._valid:
            valid[:] = zeros
        self._base[:] = [2] * len(self._base)
        self._history = 0
        self._rng = random.Random(self._seed)
        self._last = None

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------

    def _folded_history(self, length: int, bits: int) -> int:
        hist = self._history & ((1 << length) - 1)
        folded = 0
        while hist:
            folded ^= hist & ((1 << bits) - 1)
            hist >>= bits
        return folded

    def _index(self, ip: int, table: int) -> int:
        length = self._hist_lens[table]
        fold = self._folded_history(length, 11)
        return ((ip >> 2) ^ (ip >> 7) ^ fold ^ (table * 0x9E37)) & self._table_mask

    def _tag(self, ip: int, table: int) -> int:
        length = self._hist_lens[table]
        fold = self._folded_history(length, 9)
        return ((ip >> 2) ^ (fold << 1) ^ (table * 0x1F3)) & self._tag_mask

    # ------------------------------------------------------------------
    # predict / update
    # ------------------------------------------------------------------

    def _lookup(self, ip: int) -> Tuple[int, int, bool, bool]:
        """Find provider and alternate; return their predictions.

        Returns ``(provider_table, alt_table, provider_pred, alt_pred)``
        with ``-1`` table indices meaning the bimodal base.
        """
        provider = -1
        alt = -1
        provider_idx = 0
        alt_idx = 0
        for table in range(self._num_tables - 1, -1, -1):
            idx = self._index(ip, table)
            if self._valid[table][idx] and self._tags[table][idx] == self._tag(
                ip, table
            ):
                if provider < 0:
                    provider = table
                    provider_idx = idx
                else:
                    alt = table
                    alt_idx = idx
                    break
        base_pred = self._base[(ip >> 2) & self._base_mask] >= 2
        provider_pred = base_pred
        alt_pred = base_pred
        if provider >= 0:
            provider_pred = self._ctrs[provider][provider_idx] >= 0
            if alt >= 0:
                alt_pred = self._ctrs[alt][alt_idx] >= 0
        return provider, alt, provider_pred, alt_pred

    def predict(self, ip: int) -> bool:
        provider, alt, provider_pred, alt_pred = self._lookup(ip)
        self._last = (ip, provider, alt, provider_pred, alt_pred)
        return provider_pred

    def update(self, ip: int, taken: bool) -> None:
        if self._last is None or self._last[0] != ip:
            # Update without a paired predict: redo the lookup.
            provider, alt, provider_pred, alt_pred = self._lookup(ip)
        else:
            _, provider, alt, provider_pred, alt_pred = self._last
        self._last = None

        mispredicted = provider_pred != taken

        # Train the provider (or the base).
        if provider >= 0:
            idx = self._index(ip, provider)
            ctrs = self._ctrs[provider]
            if taken:
                ctrs[idx] = min(3, ctrs[idx] + 1)
            else:
                ctrs[idx] = max(-4, ctrs[idx] - 1)
            if provider_pred != alt_pred:
                useful = self._useful[provider]
                if provider_pred == taken:
                    useful[idx] = min(3, useful[idx] + 1)
                else:
                    useful[idx] = max(0, useful[idx] - 1)
        else:
            bidx = (ip >> 2) & self._base_mask
            counter = self._base[bidx]
            if taken:
                self._base[bidx] = min(3, counter + 1)
            else:
                self._base[bidx] = max(0, counter - 1)

        # Allocate a longer-history entry on misprediction.
        if mispredicted:
            start = provider + 1
            allocated = False
            for table in range(start, self._num_tables):
                idx = self._index(ip, table)
                if not self._valid[table][idx] or self._useful[table][idx] == 0:
                    self._valid[table][idx] = 1
                    self._tags[table][idx] = self._tag(ip, table)
                    self._ctrs[table][idx] = 0 if taken else -1
                    self._useful[table][idx] = 0
                    allocated = True
                    break
            if not allocated and self._rng.random() < 0.25:
                # Age useful counters so the predictor does not lock up.
                for table in range(start, self._num_tables):
                    idx = self._index(ip, table)
                    if self._valid[table][idx] and self._useful[table][idx] > 0:
                        self._useful[table][idx] -= 1

        self._history = ((self._history << 1) | int(taken)) & _HISTORY_MASK

    # ------------------------------------------------------------------
    # batched path
    # ------------------------------------------------------------------

    def predict_update_batch(
        self, ips: Sequence[int], takens: Sequence[bool]
    ) -> List[bool]:
        """Predict-and-train a whole branch subsequence, bit-identically.

        Equivalent to ``[predict(ip); update(ip, taken)]`` per branch —
        same table reads and writes, same RNG draws, same history
        evolution — but the per-table folded histories are maintained
        incrementally: inserting outcome bit ``t`` into a length-``L``
        history rotates its ``b``-bit fold left by one and XORs in ``t``
        and the evicted bit at position ``L mod b``.
        """
        n = len(ips)
        preds = [False] * n
        num_tables = self._num_tables
        table_mask = self._table_mask
        tag_mask = self._tag_mask
        hist_lens = self._hist_lens
        tags_t = self._tags
        ctrs_t = self._ctrs
        useful_t = self._useful
        valid_t = self._valid
        base = self._base
        base_mask = self._base_mask
        rng_random = self._rng.random
        history = self._history
        table_range = range(num_tables)
        scan_range = range(num_tables - 1, -1, -1)
        idx_keys = [t * 0x9E37 for t in table_range]
        tag_keys = [t * 0x1F3 for t in table_range]
        # Incremental circular-shift folds, seeded from the scalar fold.
        f11 = [self._folded_history(length, 11) for length in hist_lens]
        f9 = [self._folded_history(length, 9) for length in hist_lens]
        out_shift11 = [length % 11 for length in hist_lens]
        out_shift9 = [length % 9 for length in hist_lens]
        mask11 = (1 << 11) - 1
        mask9 = (1 << 9) - 1

        for i in range(n):
            ip = ips[i]
            taken = takens[i]
            ip2 = ip >> 2
            idx_base = ip2 ^ (ip >> 7)
            # --- lookup (longest history first) ---
            provider = -1
            provider_idx = 0
            alt_found = False
            alt_pred = False
            for table in scan_range:
                idx = (idx_base ^ f11[table] ^ idx_keys[table]) & table_mask
                if valid_t[table][idx] and tags_t[table][idx] == (
                    (ip2 ^ (f9[table] << 1) ^ tag_keys[table]) & tag_mask
                ):
                    if provider < 0:
                        provider = table
                        provider_idx = idx
                    else:
                        alt_found = True
                        alt_pred = ctrs_t[table][idx] >= 0
                        break
            if provider >= 0:
                provider_pred = ctrs_t[provider][provider_idx] >= 0
                if not alt_found:
                    alt_pred = base[ip2 & base_mask] >= 2
            else:
                provider_pred = alt_pred = base[ip2 & base_mask] >= 2
            preds[i] = provider_pred

            # --- update (mirrors the scalar path exactly) ---
            if provider >= 0:
                ctrs = ctrs_t[provider]
                c = ctrs[provider_idx]
                if taken:
                    if c < 3:
                        ctrs[provider_idx] = c + 1
                elif c > -4:
                    ctrs[provider_idx] = c - 1
                if provider_pred != alt_pred:
                    useful = useful_t[provider]
                    u = useful[provider_idx]
                    if provider_pred == taken:
                        if u < 3:
                            useful[provider_idx] = u + 1
                    elif u > 0:
                        useful[provider_idx] = u - 1
            else:
                bidx = ip2 & base_mask
                c = base[bidx]
                if taken:
                    if c < 3:
                        base[bidx] = c + 1
                elif c > 0:
                    base[bidx] = c - 1

            if provider_pred != taken:
                allocated = False
                for table in range(provider + 1, num_tables):
                    idx = (idx_base ^ f11[table] ^ idx_keys[table]) & table_mask
                    if not valid_t[table][idx] or useful_t[table][idx] == 0:
                        valid_t[table][idx] = 1
                        tags_t[table][idx] = (
                            ip2 ^ (f9[table] << 1) ^ tag_keys[table]
                        ) & tag_mask
                        ctrs_t[table][idx] = 0 if taken else -1
                        useful_t[table][idx] = 0
                        allocated = True
                        break
                if not allocated and rng_random() < 0.25:
                    for table in range(provider + 1, num_tables):
                        idx = (idx_base ^ f11[table] ^ idx_keys[table]) & table_mask
                        if valid_t[table][idx] and useful_t[table][idx] > 0:
                            useful_t[table][idx] -= 1

            # --- advance history and the incremental folds ---
            tbit = 1 if taken else 0
            for table in table_range:
                outbit = (history >> (hist_lens[table] - 1)) & 1
                f = f11[table]
                f = ((f << 1) | (f >> 10)) & mask11
                f11[table] = f ^ tbit ^ (outbit << out_shift11[table])
                f = f9[table]
                f = ((f << 1) | (f >> 8)) & mask9
                f9[table] = f ^ tbit ^ (outbit << out_shift9[table])
            history = ((history << 1) | tbit) & _HISTORY_MASK

        self._history = history
        self._last = None
        return preds
