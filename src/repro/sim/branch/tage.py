"""TAGE-style direction predictor.

A faithful-in-structure, reduced-in-size TAGE (Seznec): a bimodal base
table plus N partially-tagged components indexed with geometrically
increasing global-history lengths.  Prediction comes from the longest
matching component; allocation on mispredict targets the next-longer
component; useful counters arbitrate replacement.  This stands in for the
paper's 64KB TAGE-SC-L (the statistical corrector and loop predictor are
omitted — they trim the mispredict tail but do not change which branches
are fundamentally hard).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.sim.branch.base import DirectionPredictor


@dataclass
class _Entry:
    tag: int = 0
    counter: int = 0  # signed 3-bit: -4..3, >=0 predicts taken
    useful: int = 0


class Tage(DirectionPredictor):
    """TAGE with a bimodal base and ``num_tables`` tagged components."""

    def __init__(
        self,
        num_tables: int = 5,
        table_bits: int = 11,
        tag_bits: int = 9,
        min_history: int = 4,
        max_history: int = 128,
        seed: int = 0xC0FFEE,
    ) -> None:
        self._num_tables = num_tables
        self._table_mask = (1 << table_bits) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._tables: List[List[Optional[_Entry]]] = [
            [None] * (1 << table_bits) for _ in range(num_tables)
        ]
        # Geometric history lengths.
        ratio = (max_history / min_history) ** (1.0 / max(1, num_tables - 1))
        self._hist_lens = [
            int(round(min_history * ratio**i)) for i in range(num_tables)
        ]
        self._base = [2] * (1 << 13)  # bimodal fallback, 2-bit counters
        self._base_mask = (1 << 13) - 1
        self._history = 0
        self._rng = random.Random(seed)
        # Cached lookup for the predict→update pair of the same branch.
        self._last: Optional[Tuple[int, Optional[int], Optional[int], bool, bool]] = None

    # ------------------------------------------------------------------
    # hashing
    # ------------------------------------------------------------------

    def _folded_history(self, length: int, bits: int) -> int:
        hist = self._history & ((1 << length) - 1)
        folded = 0
        while hist:
            folded ^= hist & ((1 << bits) - 1)
            hist >>= bits
        return folded

    def _index(self, ip: int, table: int) -> int:
        length = self._hist_lens[table]
        fold = self._folded_history(length, 11)
        return ((ip >> 2) ^ (ip >> 7) ^ fold ^ (table * 0x9E37)) & self._table_mask

    def _tag(self, ip: int, table: int) -> int:
        length = self._hist_lens[table]
        fold = self._folded_history(length, 9)
        return ((ip >> 2) ^ (fold << 1) ^ (table * 0x1F3)) & self._tag_mask

    # ------------------------------------------------------------------
    # predict / update
    # ------------------------------------------------------------------

    def _lookup(self, ip: int) -> Tuple[Optional[int], Optional[int], bool, bool]:
        """Find provider and alternate; return their predictions.

        Returns ``(provider_table, alt_table, provider_pred, alt_pred)``
        with ``None`` table indices meaning the bimodal base.
        """
        provider = None
        alt = None
        for table in range(self._num_tables - 1, -1, -1):
            entry = self._tables[table][self._index(ip, table)]
            if entry is not None and entry.tag == self._tag(ip, table):
                if provider is None:
                    provider = table
                else:
                    alt = table
                    break
        base_pred = self._base[(ip >> 2) & self._base_mask] >= 2
        provider_pred = base_pred
        alt_pred = base_pred
        if provider is not None:
            entry = self._tables[provider][self._index(ip, provider)]
            assert entry is not None
            provider_pred = entry.counter >= 0
            if alt is not None:
                alt_entry = self._tables[alt][self._index(ip, alt)]
                assert alt_entry is not None
                alt_pred = alt_entry.counter >= 0
        return provider, alt, provider_pred, alt_pred

    def predict(self, ip: int) -> bool:
        provider, alt, provider_pred, alt_pred = self._lookup(ip)
        self._last = (ip, provider, alt, provider_pred, alt_pred)
        return provider_pred

    def update(self, ip: int, taken: bool) -> None:
        if self._last is None or self._last[0] != ip:
            # Update without a paired predict: redo the lookup.
            provider, alt, provider_pred, alt_pred = self._lookup(ip)
        else:
            _, provider, alt, provider_pred, alt_pred = self._last
        self._last = None

        mispredicted = provider_pred != taken

        # Train the provider (or the base).
        if provider is not None:
            idx = self._index(ip, provider)
            entry = self._tables[provider][idx]
            assert entry is not None
            if taken:
                entry.counter = min(3, entry.counter + 1)
            else:
                entry.counter = max(-4, entry.counter - 1)
            if provider_pred != alt_pred:
                if provider_pred == taken:
                    entry.useful = min(3, entry.useful + 1)
                else:
                    entry.useful = max(0, entry.useful - 1)
        else:
            bidx = (ip >> 2) & self._base_mask
            counter = self._base[bidx]
            if taken:
                self._base[bidx] = min(3, counter + 1)
            else:
                self._base[bidx] = max(0, counter - 1)

        # Allocate a longer-history entry on misprediction.
        if mispredicted:
            start = (provider + 1) if provider is not None else 0
            allocated = False
            for table in range(start, self._num_tables):
                idx = self._index(ip, table)
                entry = self._tables[table][idx]
                if entry is None or entry.useful == 0:
                    self._tables[table][idx] = _Entry(
                        tag=self._tag(ip, table),
                        counter=0 if taken else -1,
                        useful=0,
                    )
                    allocated = True
                    break
            if not allocated and self._rng.random() < 0.25:
                # Age useful counters so the predictor does not lock up.
                for table in range(start, self._num_tables):
                    idx = self._index(ip, table)
                    entry = self._tables[table][idx]
                    if entry is not None and entry.useful > 0:
                        entry.useful -= 1

        self._history = ((self._history << 1) | int(taken)) & ((1 << 256) - 1)
