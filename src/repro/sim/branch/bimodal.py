"""Bimodal (per-PC 2-bit counter) direction predictor, plus a degenerate
always-taken baseline used by tests."""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.branch.base import DirectionPredictor


class Bimodal(DirectionPredictor):
    """Classic table of saturating 2-bit counters indexed by PC."""

    def __init__(self, table_bits: int = 14) -> None:
        self._mask = (1 << table_bits) - 1
        self._table: List[int] = [2] * (1 << table_bits)  # weakly taken

    def _index(self, ip: int) -> int:
        return (ip >> 2) & self._mask

    def predict(self, ip: int) -> bool:
        return self._table[self._index(ip)] >= 2

    def update(self, ip: int, taken: bool) -> None:
        idx = self._index(ip)
        counter = self._table[idx]
        if taken:
            if counter < 3:
                self._table[idx] = counter + 1
        elif counter > 0:
            self._table[idx] = counter - 1

    def predict_update_batch(
        self, ips: Sequence[int], takens: Sequence[bool]
    ) -> List[bool]:
        table = self._table
        mask = self._mask
        preds = [False] * len(ips)
        for i, ip in enumerate(ips):
            idx = (ip >> 2) & mask
            counter = table[idx]
            preds[i] = counter >= 2
            if takens[i]:
                if counter < 3:
                    table[idx] = counter + 1
            elif counter > 0:
                table[idx] = counter - 1
        return preds

    def reset(self) -> None:
        self._table[:] = [2] * len(self._table)


class AlwaysTaken(DirectionPredictor):
    """Predicts taken unconditionally (testing baseline)."""

    def predict(self, ip: int) -> bool:
        return True

    def update(self, ip: int, taken: bool) -> None:
        pass

    def predict_update_batch(
        self, ips: Sequence[int], takens: Sequence[bool]
    ) -> List[bool]:
        return [True] * len(ips)
