"""Set-associative branch target buffer."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

from repro.champsim.branch_info import BranchType


class BTB:
    """A set-associative BTB storing target and branch type.

    The paper's Section 4 setup uses 16K entries.  Lookup returns
    ``(target, branch_type)`` or ``None``; a miss on a taken branch costs
    the front-end a re-steer (and counts as a target misprediction,
    matching ChampSim's accounting).
    """

    def __init__(self, entries: int = 16384, ways: int = 8) -> None:
        if entries % ways:
            raise ValueError("entries must be a multiple of ways")
        self._num_sets = entries // ways
        self._ways = ways
        self._sets: Dict[int, OrderedDict] = {}

    def _set_index(self, ip: int) -> int:
        return (ip >> 2) % self._num_sets

    def lookup(self, ip: int) -> Optional[Tuple[int, BranchType]]:
        """Return the stored ``(target, type)`` for ``ip``, if present."""
        way_set = self._sets.get(self._set_index(ip))
        if way_set is None:
            return None
        entry = way_set.get(ip)
        if entry is None:
            return None
        way_set.move_to_end(ip)  # LRU touch
        return entry

    def install(self, ip: int, target: int, branch_type: BranchType) -> None:
        """Insert/update the entry for ``ip`` (LRU replacement)."""
        index = self._set_index(ip)
        way_set = self._sets.setdefault(index, OrderedDict())
        if ip in way_set:
            way_set[ip] = (target, branch_type)
            way_set.move_to_end(ip)
            return
        if len(way_set) >= self._ways:
            way_set.popitem(last=False)
        way_set[ip] = (target, branch_type)

    def lookup_install_batch(
        self,
        ips: Sequence[int],
        takens: Sequence[bool],
        targets: Sequence[int],
        branch_types: Sequence[BranchType],
    ) -> List[Optional[Tuple[int, BranchType]]]:
        """Per-branch lookup, then install for taken branches.

        One call per branch subsequence; interleaves exactly the scalar
        engine's ``lookup`` → (taken?) ``install`` pair per branch so
        LRU order and evictions evolve bit-identically.
        """
        sets = self._sets
        num_sets = self._num_sets
        ways = self._ways
        entries: List[Optional[Tuple[int, BranchType]]] = [None] * len(ips)
        for i, ip in enumerate(ips):
            index = (ip >> 2) % num_sets
            way_set = sets.get(index)
            if way_set is not None:
                entry = way_set.get(ip)
                if entry is not None:
                    way_set.move_to_end(ip)
                    entries[i] = entry
            if takens[i]:
                if way_set is None:
                    way_set = sets[index] = OrderedDict()
                if ip in way_set:
                    way_set[ip] = (targets[i], branch_types[i])
                    way_set.move_to_end(ip)
                else:
                    if len(way_set) >= ways:
                        way_set.popitem(last=False)
                    way_set[ip] = (targets[i], branch_types[i])
        return entries

    def reset(self) -> None:
        """Drop all entries (for component pooling)."""
        self._sets.clear()
