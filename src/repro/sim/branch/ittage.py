"""ITTAGE-style indirect target predictor.

Tagged tables indexed by PC and geometrically increasing path history,
each entry holding a full target and a confidence counter; the longest
matching component provides the prediction, with allocation on target
misses — the structure of Seznec's 64KB ITTAGE, reduced in size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class _Entry:
    tag: int
    target: int
    confidence: int = 1


class ITTAGE:
    """Indirect target prediction from PC + path history."""

    def __init__(
        self,
        num_tables: int = 4,
        table_bits: int = 10,
        tag_bits: int = 10,
        min_history: int = 4,
        max_history: int = 64,
    ) -> None:
        self._num_tables = num_tables
        self._table_mask = (1 << table_bits) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._tables: List[List[Optional[_Entry]]] = [
            [None] * (1 << table_bits) for _ in range(num_tables)
        ]
        ratio = (max_history / min_history) ** (1.0 / max(1, num_tables - 1))
        self._hist_lens = [
            int(round(min_history * ratio**i)) for i in range(num_tables)
        ]
        self._path = 0
        #: Base table: last-target per PC.
        self._base: dict = {}

    def _fold(self, length: int, bits: int) -> int:
        hist = self._path & ((1 << length) - 1)
        folded = 0
        while hist:
            folded ^= hist & ((1 << bits) - 1)
            hist >>= bits
        return folded

    def _index(self, ip: int, table: int) -> int:
        fold = self._fold(self._hist_lens[table], 10)
        return ((ip >> 2) ^ fold ^ (table * 0x9E3)) & self._table_mask

    def _tag(self, ip: int, table: int) -> int:
        fold = self._fold(self._hist_lens[table], 9)
        return ((ip >> 3) ^ (fold << 1) ^ table) & self._tag_mask

    def predict(self, ip: int) -> Optional[int]:
        """Predicted target for the indirect branch at ``ip``."""
        for table in range(self._num_tables - 1, -1, -1):
            entry = self._tables[table][self._index(ip, table)]
            if entry is not None and entry.tag == self._tag(ip, table):
                return entry.target
        return self._base.get(ip)

    def update(self, ip: int, target: int) -> None:
        """Train with the actual target and advance path history."""
        provider = None
        for table in range(self._num_tables - 1, -1, -1):
            entry = self._tables[table][self._index(ip, table)]
            if entry is not None and entry.tag == self._tag(ip, table):
                provider = (table, entry)
                break

        if provider is not None:
            table, entry = provider
            if entry.target == target:
                entry.confidence = min(3, entry.confidence + 1)
            else:
                if entry.confidence > 0:
                    entry.confidence -= 1
                else:
                    entry.target = target
                # Allocate in a longer table for the new correlation.
                for higher in range(table + 1, self._num_tables):
                    idx = self._index(ip, higher)
                    slot = self._tables[higher][idx]
                    if slot is None or slot.confidence == 0:
                        self._tables[higher][idx] = _Entry(
                            tag=self._tag(ip, higher), target=target
                        )
                        break
        else:
            predicted = self._base.get(ip)
            if predicted is not None and predicted != target:
                idx = self._index(ip, 0)
                slot = self._tables[0][idx]
                if slot is None or slot.confidence == 0:
                    self._tables[0][idx] = _Entry(tag=self._tag(ip, 0), target=target)
            self._base[ip] = target

        self._path = ((self._path << 2) ^ (target >> 2)) & ((1 << 128) - 1)
