"""ITTAGE-style indirect target predictor.

Tagged tables indexed by PC and geometrically increasing path history,
each entry holding a full target and a confidence counter; the longest
matching component provides the prediction, with allocation on target
misses — the structure of Seznec's 64KB ITTAGE, reduced in size.

Like :class:`~repro.sim.branch.tage.Tage`, storage is array-backed: each
table is four parallel flat ``int`` lists (tag, target, confidence,
valid).  Every read is valid-gated and allocation writes all fields, so
:meth:`ITTAGE.reset` only clears the valid columns.

Unlike TAGE's outcome history, the path history folds a multi-bit slice
of each target (``target >> 2``) into the register, so it is not a
shift-register amenable to incremental fold maintenance; the batched
path (:meth:`ITTAGE.predict_update_batch`) therefore loops the scalar
pair with hoisted bound methods — indirect branches are rare enough
that this is already off the critical path once the direction and BTB
batches land.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

_PATH_MASK = (1 << 128) - 1


class ITTAGE:
    """Indirect target prediction from PC + path history."""

    def __init__(
        self,
        num_tables: int = 4,
        table_bits: int = 10,
        tag_bits: int = 10,
        min_history: int = 4,
        max_history: int = 64,
    ) -> None:
        self._num_tables = num_tables
        self._table_mask = (1 << table_bits) - 1
        self._tag_mask = (1 << tag_bits) - 1
        size = 1 << table_bits
        # Parallel flat columns per table; ``_valid`` gates every read.
        self._tags: List[List[int]] = [[0] * size for _ in range(num_tables)]
        self._targets: List[List[int]] = [[0] * size for _ in range(num_tables)]
        self._conf: List[List[int]] = [[0] * size for _ in range(num_tables)]
        self._valid: List[List[int]] = [[0] * size for _ in range(num_tables)]
        ratio = (max_history / min_history) ** (1.0 / max(1, num_tables - 1))
        self._hist_lens = [
            int(round(min_history * ratio**i)) for i in range(num_tables)
        ]
        self._path = 0
        #: Base table: last-target per PC.
        self._base: Dict[int, int] = {}

    def reset(self) -> None:
        """Restore construction-time state (for component pooling)."""
        zeros = [0] * (self._table_mask + 1)
        for valid in self._valid:
            valid[:] = zeros
        self._path = 0
        self._base.clear()

    def _fold(self, length: int, bits: int) -> int:
        hist = self._path & ((1 << length) - 1)
        folded = 0
        while hist:
            folded ^= hist & ((1 << bits) - 1)
            hist >>= bits
        return folded

    def _index(self, ip: int, table: int) -> int:
        fold = self._fold(self._hist_lens[table], 10)
        return ((ip >> 2) ^ fold ^ (table * 0x9E3)) & self._table_mask

    def _tag(self, ip: int, table: int) -> int:
        fold = self._fold(self._hist_lens[table], 9)
        return ((ip >> 3) ^ (fold << 1) ^ table) & self._tag_mask

    def predict(self, ip: int) -> Optional[int]:
        """Predicted target for the indirect branch at ``ip``."""
        for table in range(self._num_tables - 1, -1, -1):
            idx = self._index(ip, table)
            if self._valid[table][idx] and self._tags[table][idx] == self._tag(
                ip, table
            ):
                return self._targets[table][idx]
        return self._base.get(ip)

    def update(self, ip: int, target: int) -> None:
        """Train with the actual target and advance path history."""
        provider = -1
        provider_idx = 0
        for table in range(self._num_tables - 1, -1, -1):
            idx = self._index(ip, table)
            if self._valid[table][idx] and self._tags[table][idx] == self._tag(
                ip, table
            ):
                provider = table
                provider_idx = idx
                break

        if provider >= 0:
            if self._targets[provider][provider_idx] == target:
                conf = self._conf[provider]
                conf[provider_idx] = min(3, conf[provider_idx] + 1)
            else:
                conf = self._conf[provider]
                if conf[provider_idx] > 0:
                    conf[provider_idx] -= 1
                else:
                    self._targets[provider][provider_idx] = target
                # Allocate in a longer table for the new correlation.
                for higher in range(provider + 1, self._num_tables):
                    idx = self._index(ip, higher)
                    if not self._valid[higher][idx] or self._conf[higher][idx] == 0:
                        self._valid[higher][idx] = 1
                        self._tags[higher][idx] = self._tag(ip, higher)
                        self._targets[higher][idx] = target
                        self._conf[higher][idx] = 1
                        break
        else:
            predicted = self._base.get(ip)
            if predicted is not None and predicted != target:
                idx = self._index(ip, 0)
                if not self._valid[0][idx] or self._conf[0][idx] == 0:
                    self._valid[0][idx] = 1
                    self._tags[0][idx] = self._tag(ip, 0)
                    self._targets[0][idx] = target
                    self._conf[0][idx] = 1
            self._base[ip] = target

        self._path = ((self._path << 2) ^ (target >> 2)) & _PATH_MASK

    def predict_update_batch(
        self,
        ips: Sequence[int],
        takens: Sequence[bool],
        targets: Sequence[int],
    ) -> List[Optional[int]]:
        """Predict every indirect branch, training the taken ones.

        Mirrors the scalar call sites: ``predict`` per indirect branch,
        ``update`` only when it was taken (the engine installs targets
        at resolution of taken branches).
        """
        predict = self.predict
        update = self.update
        preds: List[Optional[int]] = [None] * len(ips)
        for i, ip in enumerate(ips):
            preds[i] = predict(ip)
            if takens[i]:
                update(ip, targets[i])
        return preds
