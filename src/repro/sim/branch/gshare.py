"""GShare direction predictor (global history XOR PC)."""

from __future__ import annotations

from typing import List, Sequence

from repro.sim.branch.base import DirectionPredictor


class GShare(DirectionPredictor):
    """2-bit counters indexed by ``PC xor global history``.

    Stands in for the IPC-1 contest simulator's hashed-perceptron
    predictor: both exploit global history; the constant factors differ
    but the mispredict population (biased easy, data-dependent hard) is
    the same.
    """

    def __init__(self, table_bits: int = 16, history_bits: int = 16) -> None:
        self._mask = (1 << table_bits) - 1
        self._table: List[int] = [2] * (1 << table_bits)
        self._history = 0
        self._history_mask = (1 << history_bits) - 1

    def _index(self, ip: int) -> int:
        return ((ip >> 2) ^ self._history) & self._mask

    def predict(self, ip: int) -> bool:
        return self._table[self._index(ip)] >= 2

    def update(self, ip: int, taken: bool) -> None:
        idx = self._index(ip)
        counter = self._table[idx]
        if taken:
            if counter < 3:
                self._table[idx] = counter + 1
        elif counter > 0:
            self._table[idx] = counter - 1
        self._history = ((self._history << 1) | int(taken)) & self._history_mask

    def predict_update_batch(
        self, ips: Sequence[int], takens: Sequence[bool]
    ) -> List[bool]:
        table = self._table
        mask = self._mask
        history = self._history
        history_mask = self._history_mask
        preds = [False] * len(ips)
        for i, ip in enumerate(ips):
            idx = ((ip >> 2) ^ history) & mask
            counter = table[idx]
            preds[i] = counter >= 2
            if takens[i]:
                if counter < 3:
                    table[idx] = counter + 1
                history = ((history << 1) | 1) & history_mask
            else:
                if counter > 0:
                    table[idx] = counter - 1
                history = (history << 1) & history_mask
        self._history = history
        return preds

    def reset(self) -> None:
        self._table[:] = [2] * len(self._table)
        self._history = 0
