"""TAGE-SC-L: TAGE plus a loop predictor and a statistical corrector.

The paper's Section 4 configuration uses Seznec's 64KB TAGE-SC-L.  The
base :class:`~repro.sim.branch.tage.Tage` covers the TAGE component; this
module adds the two auxiliary components that give the predictor its
name:

- the **L**\\ oop predictor: detects branches with a stable trip count and
  predicts their exit iteration exactly — the case plain TAGE handles
  poorly when the trip count exceeds its history reach;
- the **S**\\ tatistical **C**\\ orrector: a small perceptron-style vote
  over (PC, TAGE-prediction, short history) that learns when TAGE's
  prediction is statistically untrustworthy and flips it.

Both components follow the published design's structure at reduced size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.branch.base import DirectionPredictor
from repro.sim.branch.tage import Tage


@dataclass
class _LoopEntry:
    """Per-branch loop state."""

    trip_count: int = 0  # confirmed iterations per loop visit
    current: int = 0  # iterations seen in the current visit
    confidence: int = 0  # confirmations of the same trip count
    tentative: int = 0  # candidate trip count being confirmed


class LoopPredictor:
    """Predicts the exit of fixed-trip-count loops.

    A loop branch is taken ``trip_count - 1`` times then not taken.  The
    entry trains on observed streaks; once the same streak length repeats
    ``CONFIRMATIONS`` times, the predictor overrides with high confidence.
    """

    CONFIRMATIONS = 3

    def __init__(self, table_size: int = 256) -> None:
        self._table: Dict[int, _LoopEntry] = {}
        self._table_size = table_size

    def predict(self, ip: int) -> Optional[bool]:
        """Confident direction for the branch at ``ip``, else None."""
        entry = self._table.get(ip)
        if entry is None or entry.confidence < self.CONFIRMATIONS:
            return None
        if entry.trip_count <= 1:
            return None
        # Taken while iterations remain, not-taken at the exit.
        return entry.current < entry.trip_count - 1

    def update(self, ip: int, taken: bool) -> None:
        entry = self._table.get(ip)
        if entry is None:
            if len(self._table) >= self._table_size:
                # Drop an unconfident entry if possible, else decline.
                victim = next(
                    (
                        key
                        for key, candidate in self._table.items()
                        if candidate.confidence == 0
                    ),
                    None,
                )
                if victim is None:
                    return
                del self._table[victim]
            entry = self._table[ip] = _LoopEntry()
        if taken:
            entry.current += 1
            if entry.current > 4096:  # runaway loop: give up on it
                entry.confidence = 0
                entry.current = 0
            return
        # Loop exit: the streak length is current + 1 iterations.
        streak = entry.current + 1
        if streak == entry.tentative:
            entry.confidence = min(15, entry.confidence + 1)
            entry.trip_count = streak
        else:
            entry.tentative = streak
            entry.confidence = 0
        entry.current = 0

    def reset(self) -> None:
        """Restore construction-time state (for component pooling)."""
        self._table.clear()


class StatisticalCorrector:
    """Perceptron-flavoured vote on whether to trust TAGE.

    Weight tables are indexed by PC folded with the TAGE prediction and a
    couple of recent outcomes; the summed vote can flip a weakly-backed
    TAGE prediction.
    """

    def __init__(self, table_bits: int = 12, num_tables: int = 3) -> None:
        self._mask = (1 << table_bits) - 1
        self._tables: List[List[int]] = [
            [0] * (1 << table_bits) for _ in range(num_tables)
        ]
        self._history = 0
        self._threshold = 4

    def _indices(self, ip: int, tage_pred: bool) -> List[int]:
        base = (ip >> 2) ^ (0x40 if tage_pred else 0)
        return [
            (base ^ (self._history & 0xF) ^ (t * 0x9E37)) & self._mask
            if t
            else base & self._mask
            for t in range(len(self._tables))
        ]

    def vote(self, ip: int, tage_pred: bool) -> bool:
        """Final direction after the corrector's vote."""
        total = sum(
            table[idx]
            for table, idx in zip(self._tables, self._indices(ip, tage_pred))
        )
        total += 2 if tage_pred else -2  # TAGE's own (weighted) opinion
        if abs(total) <= self._threshold:
            return tage_pred  # not confident enough to overrule
        return total > 0

    def update(self, ip: int, tage_pred: bool, taken: bool) -> None:
        for table, idx in zip(self._tables, self._indices(ip, tage_pred)):
            if taken:
                table[idx] = min(31, table[idx] + 1)
            else:
                table[idx] = max(-32, table[idx] - 1)
        self._history = ((self._history << 1) | int(taken)) & 0xFFFF

    def reset(self) -> None:
        """Restore construction-time state (for component pooling)."""
        for table in self._tables:
            table[:] = [0] * len(table)
        self._history = 0


class TageSCL(DirectionPredictor):
    """The composed predictor: loop override → TAGE → corrector vote."""

    def __init__(self) -> None:
        self.tage = Tage()
        self.loop = LoopPredictor()
        self.corrector = StatisticalCorrector()

    def predict(self, ip: int) -> bool:
        loop_pred = self.loop.predict(ip)
        if loop_pred is not None:
            return loop_pred
        tage_pred = self.tage.predict(ip)
        return self.corrector.vote(ip, tage_pred)

    def update(self, ip: int, taken: bool) -> None:
        tage_pred = self.tage.predict(ip)
        self.loop.update(ip, taken)
        self.corrector.update(ip, tage_pred, taken)
        self.tage.update(ip, taken)

    def predict_update_batch(
        self, ips: Sequence[int], takens: Sequence[bool]
    ) -> List[bool]:
        """Batched predict/update, bit-identical to the serial pairs.

        The scalar engine's per-branch sequence touches TAGE as (up to)
        ``predict``, ``predict``, ``update`` on the same ip with no
        intervening TAGE state change — ``loop`` and ``corrector`` share
        no state with it — so TAGE's state evolution is exactly one
        predict/update pair per branch and its whole subsequence can be
        delegated to :meth:`Tage.predict_update_batch`.  The loop
        predictor and corrector stay serial (their per-branch reads
        precede their per-branch writes, in program order).
        """
        tage_preds = self.tage.predict_update_batch(ips, takens)
        loop_predict = self.loop.predict
        loop_update = self.loop.update
        vote = self.corrector.vote
        corrector_update = self.corrector.update
        preds = [False] * len(ips)
        for i, ip in enumerate(ips):
            taken = takens[i]
            tage_pred = tage_preds[i]
            loop_pred = loop_predict(ip)
            preds[i] = loop_pred if loop_pred is not None else vote(ip, tage_pred)
            loop_update(ip, taken)
            corrector_update(ip, tage_pred, taken)
        return preds

    def reset(self) -> None:
        """Restore construction-time state (for component pooling)."""
        self.tage.reset()
        self.loop.reset()
        self.corrector.reset()
