"""ChampSim-like out-of-order timing model.

This subpackage substitutes for the C++ ChampSim simulator the paper
evaluates on (see DESIGN.md for the substitution argument).  It is a
trace-driven *interval* model: one in-order pass computes per-instruction
fetch / dispatch / issue / complete / retire times under

- a decoupled front-end with a direction predictor (TAGE-style), a
  16K-entry BTB, a return address stack and an ITTAGE-style indirect
  predictor, with fetch-directed instruction prefetching (FDIP);
- register dataflow (dependencies carried through ChampSim register ids),
  ROB occupancy, dispatch/execute/retire bandwidth;
- a four-level cache hierarchy (L1I/L1D/L2/LLC) with an IP-stride L1D
  prefetcher and a next-line L2 prefetcher — the paper's Section 4
  configuration mimicking Ice Lake;
- branch redirects at *resolve* time, so a branch that depends on a
  long-latency load exposes its full misprediction penalty (the
  mechanism behind the paper's ``branch-regs``/``flag-reg`` results).

Two presets mirror the paper's two ChampSim versions:

- :meth:`SimConfig.main` — the ``main``-branch setup of Section 4;
- :meth:`SimConfig.ipc1` — the IPC-1 contest version: no decoupled
  front-end, an *ideal branch-target predictor*, and a pluggable L1I
  prefetcher slot (the eight IPC-1 submissions live in
  :mod:`repro.sim.prefetch.ipc1`).
"""

from repro.sim.config import SimConfig
from repro.sim.stats import SimStats
from repro.sim.decoded import DecodedColumns, DecodedInstr, columnarize, decode_trace
from repro.sim.simulator import ENGINE_NAMES, Simulator, make_engine, simulate

__all__ = [
    "SimConfig",
    "SimStats",
    "DecodedColumns",
    "DecodedInstr",
    "columnarize",
    "decode_trace",
    "ENGINE_NAMES",
    "Simulator",
    "make_engine",
    "simulate",
]
