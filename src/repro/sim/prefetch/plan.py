"""Batched prefetch planning for stream-pure prefetchers.

A :class:`~repro.sim.prefetch.base.DataPrefetcher` or
:class:`~repro.sim.prefetch.base.InstructionPrefetcher` that declares
``stream_pure = True`` evolves its state and emits its requests as a
function of the access/fetch-event stream alone — never of hit/miss
outcomes or cycle time.  That lets the vector engine replay the whole
stream through the prefetcher *once, ahead of the timing sweep*, record
the requests each event would emit, and then merely issue the recorded
requests at the right cycles during the sweep.  The prefetcher object
ends the planning pass in exactly the state the scalar engine would
have left it in, and the issued requests are identical address-for-
address and order-for-order — the bit-identity contract the diff
harness enforces.

The ``now`` each request is *issued* with comes from the sweep, not
from planning (planning passes ``now=0``, which pure prefetchers only
forward).  ``hit`` is passed as ``False``; pure prefetchers never read
it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.champsim.branch_info import BranchType
from repro.sim.prefetch.base import DataPrefetcher, InstructionPrefetcher

#: One planned data request: (address, fill_l1).
DataRequest = Tuple[int, bool]

#: Per-event request lists; ``None`` marks an event that emitted nothing,
#: so the sweep can skip the issue call entirely.
DataPlan = List[Optional[List[DataRequest]]]
FetchPlan = List[Optional[List[int]]]

#: One fetch event: (line_addr, branch_ip, branch_type, branch_target).
FetchEvent = Tuple[int, Optional[int], BranchType, Optional[int]]


class _RequestRecorder:
    """A :class:`PrefetchSink` that records instead of issuing.

    Satisfies the sink protocol structurally; ``now`` is discarded
    because stream-pure prefetchers only ever forward it.
    """

    __slots__ = ("data", "instruction")

    def __init__(self) -> None:
        self.data: List[DataRequest] = []
        self.instruction: List[int] = []

    def prefetch_data(self, addr: int, now: int, fill_l1: bool = False) -> None:
        self.data.append((addr, fill_l1))

    def prefetch_instruction(self, addr: int, now: int) -> None:
        self.instruction.append(addr)


def plan_data_stream(
    prefetcher: DataPrefetcher,
    ips: Sequence[int],
    addrs: Sequence[int],
) -> DataPlan:
    """Replay an (ip, addr) access stream, returning per-event requests.

    ``ips``/``addrs`` are parallel, one entry per demand access in
    program order (an instruction with several addresses contributes
    several consecutive events).  The prefetcher is mutated exactly as
    a scalar replay would mutate it.
    """
    if not prefetcher.stream_pure:
        raise ValueError(
            f"{type(prefetcher).__name__} is not stream-pure; "
            "its requests cannot be planned ahead of the sweep"
        )
    recorder = _RequestRecorder()
    on_access = prefetcher.on_access
    requests = recorder.data
    plan: DataPlan = []
    append = plan.append
    for ip, addr in zip(ips, addrs):
        on_access(ip, addr, False, recorder, 0)
        if requests:
            append(requests[:])
            del requests[:]
        else:
            append(None)
    return plan


def plan_fetch_stream(
    prefetcher: InstructionPrefetcher,
    events: Sequence[FetchEvent],
) -> FetchPlan:
    """Replay a fetch-event stream, returning per-event request lists.

    One event per demand-fetched cacheline, in fetch order, carrying the
    branch context the engine would have attached.
    """
    if not prefetcher.stream_pure:
        raise ValueError(
            f"{type(prefetcher).__name__} is not stream-pure; "
            "its requests cannot be planned ahead of the sweep"
        )
    recorder = _RequestRecorder()
    on_fetch = prefetcher.on_fetch
    requests = recorder.instruction
    plan: FetchPlan = []
    append = plan.append
    for line_addr, branch_ip, branch_type, branch_target in events:
        on_fetch(
            line_addr,
            False,
            recorder,
            0,
            branch_ip=branch_ip,
            branch_type=branch_type,
            branch_target=branch_target,
        )
        if requests:
            append(requests[:])
            del requests[:]
        else:
            append(None)
    return plan
