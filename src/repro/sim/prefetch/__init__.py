"""Prefetchers.

Data side (the paper's Ice-Lake-like Section 4 setup): an IP-stride
prefetcher at the L1D and a next-line prefetcher at the L2
(:func:`make_data_prefetcher`).

Instruction side: the eight IPC-1 championship submissions the paper
re-ranks in Table 3 live in :mod:`repro.sim.prefetch.ipc1` and are built
by :func:`make_instruction_prefetcher`.
"""

from typing import Optional

from repro.sim.prefetch.base import DataPrefetcher, InstructionPrefetcher
from repro.sim.prefetch.ip_stride import IpStridePrefetcher
from repro.sim.prefetch.next_line import NextLinePrefetcher
from repro.sim.prefetch.ipc1 import (
    IPC1_PREFETCHERS,
    make_instruction_prefetcher,
)


def make_data_prefetcher(
    name: str, level: str
) -> Optional[DataPrefetcher]:
    """Build a data prefetcher by name ('' → None)."""
    if not name:
        return None
    registry = {
        "ip_stride": lambda: IpStridePrefetcher(fill_l1=(level == "l1d")),
        "next_line": lambda: NextLinePrefetcher(fill_l1=(level == "l1d")),
    }
    if name not in registry:
        raise ValueError(f"unknown data prefetcher {name!r}; known: {sorted(registry)}")
    return registry[name]()


__all__ = [
    "DataPrefetcher",
    "InstructionPrefetcher",
    "IpStridePrefetcher",
    "NextLinePrefetcher",
    "IPC1_PREFETCHERS",
    "make_data_prefetcher",
    "make_instruction_prefetcher",
]
