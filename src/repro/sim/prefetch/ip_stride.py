"""IP-stride data prefetcher (the paper's L1D prefetcher).

Per-IP table of (last address, stride, confidence); once a stride
repeats, prefetch ``degree`` strides ahead.  Mirrors ChampSim's
``ip_stride`` module used to mimic Ice Lake's L1D prefetching.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.sim.prefetch.base import DataPrefetcher, PrefetchSink


class IpStridePrefetcher(DataPrefetcher):
    """Classic per-IP stride detection with confidence.

    Stream-pure: the table and the emitted prefetches depend only on
    the (ip, addr) stream — ``hit`` is never read and ``now`` is only
    forwarded — so the vector engine may plan its requests in batch.
    """

    stream_pure = True

    def __init__(self, table_size: int = 1024, degree: int = 3, fill_l1: bool = True) -> None:
        self._table: OrderedDict = OrderedDict()
        self._table_size = table_size
        self._degree = degree
        self._fill_l1 = fill_l1

    def reset(self) -> None:
        self._table.clear()

    def on_access(self, ip: int, addr: int, hit: bool, hierarchy: PrefetchSink, now: int) -> None:
        entry = self._table.get(ip)
        if entry is None:
            if len(self._table) >= self._table_size:
                self._table.popitem(last=False)
            self._table[ip] = [addr, 0, 0]
            return
        self._table.move_to_end(ip)
        last_addr, stride, confidence = entry
        new_stride = addr - last_addr
        if new_stride == 0:
            entry[0] = addr
            return
        if new_stride == stride:
            confidence = min(3, confidence + 1)
        else:
            confidence = 0
            stride = new_stride
        entry[0], entry[1], entry[2] = addr, stride, confidence
        if confidence >= 2:
            # Prefetch at line granularity: sub-line strides still move
            # one full line ahead per step, so small-stride streams get
            # useful lead time.
            if 0 < stride < 64:
                line_stride = 64
            elif -64 < stride < 0:
                line_stride = -64
            else:
                line_stride = stride
            for step in range(1, self._degree + 1):
                hierarchy.prefetch_data(
                    addr + line_stride * step, now, fill_l1=self._fill_l1
                )
