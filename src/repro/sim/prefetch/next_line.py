"""Next-line data prefetcher (the paper's L2 prefetcher)."""

from __future__ import annotations

from repro.sim.cache.cache import LINE_SIZE
from repro.sim.prefetch.base import DataPrefetcher, PrefetchSink


class NextLinePrefetcher(DataPrefetcher):
    """Prefetch the following ``degree`` lines on every observed access.

    Stateless, therefore trivially stream-pure (inherits the no-op
    ``reset``).
    """

    stream_pure = True

    def __init__(self, degree: int = 1, fill_l1: bool = False) -> None:
        self._degree = degree
        self._fill_l1 = fill_l1

    def on_access(self, ip: int, addr: int, hit: bool, hierarchy: PrefetchSink, now: int) -> None:
        line = addr & ~(LINE_SIZE - 1)
        for step in range(1, self._degree + 1):
            hierarchy.prefetch_data(line + step * LINE_SIZE, now, fill_l1=self._fill_l1)
