"""D-JOLT — the Distant Jolt Prefetcher (Nakamura et al.).

Core idea: index prefetch tables with a signature of the recent
*control-flow discontinuities* (taken branches/calls) and record which
lines are fetched N fetches in the future at several distances; on a
signature repeat, prefetch those distant lines.  Runner-up at IPC-1.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, List, Optional, Tuple

from repro.champsim.branch_info import BranchType
from repro.sim.cache.cache import LINE_SIZE
from repro.sim.prefetch.base import InstructionPrefetcher, PrefetchSink


class DJolt(InstructionPrefetcher):
    """Multi-distance signature→line tables trained by pending learners.

    Trains on discontinuities and fetch order only — never on
    hit/miss or cycle time — so it is stream-pure.
    """

    stream_pure = True

    def __init__(
        self,
        distances: Tuple[int, ...] = (2, 4, 8, 16),
        table_size: int = 2048,
        lines_per_entry: int = 4,
    ) -> None:
        self._distances = distances
        self._tables: List[OrderedDict] = [OrderedDict() for _ in distances]
        self._table_size = table_size
        self._lines_per_entry = lines_per_entry
        self._signature = 0
        #: pending learners: (table index, signature, countdown)
        self._pending: Deque[List[int]] = deque(maxlen=256)
        #: D-JOLT ships with a short-range sequential prefetcher next to
        #: the distant tables.
        self._sequential_degree = 3

    def reset(self) -> None:
        for table in self._tables:
            table.clear()
        self._signature = 0
        self._pending.clear()

    def _record(self, table_idx: int, signature: int, line: int) -> None:
        table = self._tables[table_idx]
        entry = table.get(signature)
        if entry is None:
            if len(table) >= self._table_size:
                table.popitem(last=False)
            entry = table[signature] = OrderedDict()
        table.move_to_end(signature)
        if line in entry:
            entry.move_to_end(line)
            return
        if len(entry) >= self._lines_per_entry:
            entry.popitem(last=False)
        entry[line] = True

    def on_fetch(
        self,
        line_addr: int,
        hit: bool,
        hierarchy: PrefetchSink,
        now: int,
        branch_ip: Optional[int] = None,
        branch_type: BranchType = BranchType.NOT_BRANCH,
        branch_target: Optional[int] = None,
    ) -> None:
        # Advance the learners; ones that hit zero record this line.
        for learner in self._pending:
            learner[2] -= 1
            if learner[2] == 0:
                self._record(learner[0], learner[1], line_addr)
        while self._pending and self._pending[0][2] <= 0:
            self._pending.popleft()

        for step in range(1, self._sequential_degree + 1):
            hierarchy.prefetch_instruction(line_addr + step * LINE_SIZE, now)
        # Prefetch from every distance table for the current signature.
        for table in self._tables:
            entry = table.get(self._signature)
            if entry is not None:
                for line in entry:
                    hierarchy.prefetch_instruction(line, now)

        # A discontinuity updates the signature and spawns learners.
        if branch_type is not BranchType.NOT_BRANCH and branch_target is not None:
            self._signature = (
                (self._signature << 5) ^ (branch_target >> 6) ^ (branch_ip or 0)
            ) & 0xFFFFF
            for table_idx, distance in enumerate(self._distances):
                self._pending.append([table_idx, self._signature, distance])
