"""EPI — the Entangling Instruction Prefetcher (Ros & Jimborean).

Core idea: when line X misses, *entangle* X with the line that was
fetched far enough in the past ("the head") that prefetching X when that
trigger is next fetched would have hidden the miss entirely.  The
entangling table then turns every fetch of a trigger line into timely
prefetches of its entangled lines.  Winner of IPC-1; it should remain
first on both trace sets in Table 3.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Optional, Tuple

from repro.champsim.branch_info import BranchType
from repro.sim.cache.cache import LINE_SIZE
from repro.sim.prefetch.base import InstructionPrefetcher, PrefetchSink


class EPI(InstructionPrefetcher):
    """Entangling prefetcher with a timeliness-driven trigger choice."""

    def __init__(
        self,
        table_size: int = 2048,
        max_entangled: int = 8,
        latency_target: int = 40,
        history_len: int = 64,
        sequential_degree: int = 4,
    ) -> None:
        #: Like the submitted EPI, a sequential next-line engine backs the
        #: entangling tables.
        self._sequential_degree = sequential_degree
        #: trigger line -> ordered set of entangled lines
        self._table: OrderedDict = OrderedDict()
        self._table_size = table_size
        self._max_entangled = max_entangled
        self._latency_target = latency_target
        #: recent (line, cycle) fetches, newest right
        self._history: Deque[Tuple[int, int]] = deque(maxlen=history_len)

    def reset(self) -> None:
        self._table.clear()
        self._history.clear()

    def _pick_trigger(self, now: int) -> Optional[int]:
        """Oldest recent line at least ``latency_target`` cycles back."""
        chosen = None
        for line, cycle in reversed(self._history):
            chosen = line
            if now - cycle >= self._latency_target:
                break
        return chosen

    def _entangle(self, trigger: int, missing: int) -> None:
        if trigger == missing:
            return
        entry = self._table.get(trigger)
        if entry is None:
            if len(self._table) >= self._table_size:
                self._table.popitem(last=False)
            entry = self._table[trigger] = OrderedDict()
        self._table.move_to_end(trigger)
        if missing in entry:
            entry.move_to_end(missing)
            return
        if len(entry) >= self._max_entangled:
            entry.popitem(last=False)
        entry[missing] = True

    def on_fetch(
        self,
        line_addr: int,
        hit: bool,
        hierarchy: PrefetchSink,
        now: int,
        branch_ip: Optional[int] = None,
        branch_type: BranchType = BranchType.NOT_BRANCH,
        branch_target: Optional[int] = None,
    ) -> None:
        for step in range(1, self._sequential_degree + 1):
            hierarchy.prefetch_instruction(line_addr + step * LINE_SIZE, now)
        if not hit:
            trigger = self._pick_trigger(now)
            if trigger is not None:
                self._entangle(trigger, line_addr)
        entry = self._table.get(line_addr)
        if entry is not None:
            self._table.move_to_end(line_addr)
            for entangled in entry:
                hierarchy.prefetch_instruction(entangled, now)
        self._history.append((line_addr, now))
