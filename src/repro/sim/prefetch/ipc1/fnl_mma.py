"""FNL+MMA — Footprint Next Line + Miss-Map Ahead (Seznec).

Two cooperating engines: FNL predicts, per line, whether its sequential
successors will actually be used (a footprint-gated next-N-line); MMA
keeps a "miss map" chaining each missing line to the next miss that
followed it and replays the chain ahead of the fetch stream.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.champsim.branch_info import BranchType
from repro.sim.cache.cache import LINE_SIZE
from repro.sim.prefetch.base import InstructionPrefetcher, PrefetchSink


class FNLMMA(InstructionPrefetcher):
    """Footprint-gated next-line plus miss-chain replay."""

    def __init__(
        self,
        footprint_size: int = 4096,
        miss_map_size: int = 2048,
        max_next_lines: int = 4,
        chain_depth: int = 3,
    ) -> None:
        #: line -> how many sequential successors proved useful (0..max)
        self._footprint: OrderedDict = OrderedDict()
        self._footprint_size = footprint_size
        self._max_next = max_next_lines
        #: missing line -> the next missing line observed after it
        self._miss_map: OrderedDict = OrderedDict()
        self._miss_map_size = miss_map_size
        self._chain_depth = chain_depth
        self._last_line: Optional[int] = None
        self._last_miss: Optional[int] = None

    def reset(self) -> None:
        self._footprint.clear()
        self._miss_map.clear()
        self._last_line = None
        self._last_miss = None

    def _bump_footprint(self, line: int, delta: int) -> None:
        entry = self._footprint.get(line)
        if entry is None:
            if len(self._footprint) >= self._footprint_size:
                self._footprint.popitem(last=False)
            self._footprint[line] = max(0, min(self._max_next, 1 + delta))
            return
        self._footprint.move_to_end(line)
        self._footprint[line] = max(0, min(self._max_next, entry + delta))

    def on_fetch(
        self,
        line_addr: int,
        hit: bool,
        hierarchy: PrefetchSink,
        now: int,
        branch_ip: Optional[int] = None,
        branch_type: BranchType = BranchType.NOT_BRANCH,
        branch_target: Optional[int] = None,
    ) -> None:
        # FNL training: sequential successor observed → widen footprint;
        # discontinuity → narrow it.
        if self._last_line is not None:
            if line_addr == self._last_line + LINE_SIZE:
                self._bump_footprint(self._last_line, +1)
            elif line_addr != self._last_line:
                self._bump_footprint(self._last_line, -1)
        self._last_line = line_addr

        # FNL prefetch: the learned number of next lines.
        degree = self._footprint.get(line_addr, 2)
        for step in range(1, degree + 1):
            hierarchy.prefetch_instruction(line_addr + step * LINE_SIZE, now)

        # MMA: chain misses and replay the chain.
        if not hit:
            if self._last_miss is not None and self._last_miss != line_addr:
                if len(self._miss_map) >= self._miss_map_size:
                    self._miss_map.popitem(last=False)
                self._miss_map[self._last_miss] = line_addr
                self._miss_map.move_to_end(self._last_miss)
            self._last_miss = line_addr
        cursor = self._miss_map.get(line_addr)
        for _ in range(self._chain_depth):
            if cursor is None:
                break
            hierarchy.prefetch_instruction(cursor, now)
            cursor = self._miss_map.get(cursor)
