"""MANA — Microarchitecting an Instruction Prefetcher (Ansari et al.).

Core idea: record the *spatial footprint* of fetched lines around a
trigger line into MANA table entries, chained so that replay can stream
several regions ahead of fetch.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.champsim.branch_info import BranchType
from repro.sim.cache.cache import LINE_SIZE
from repro.sim.prefetch.base import InstructionPrefetcher, PrefetchSink

#: Footprint window: lines recorded relative to the trigger.
WINDOW = 8


class MANA(InstructionPrefetcher):
    """Spatial footprint record/replay with trigger chaining.

    Records fetch-order footprints only: stream-pure.
    """

    stream_pure = True

    def __init__(self, table_size: int = 2048, chain_depth: int = 2) -> None:
        #: trigger line -> [footprint bitmap, next trigger line or None]
        self._table: OrderedDict = OrderedDict()
        self._table_size = table_size
        self._chain_depth = chain_depth
        self._current_trigger: Optional[int] = None
        self._prev_trigger: Optional[int] = None

    def reset(self) -> None:
        self._table.clear()
        self._current_trigger = None
        self._prev_trigger = None

    def _entry(self, trigger: int) -> list:
        entry = self._table.get(trigger)
        if entry is None:
            if len(self._table) >= self._table_size:
                self._table.popitem(last=False)
            entry = self._table[trigger] = [0, None]
        else:
            self._table.move_to_end(trigger)
        return entry

    def _replay(self, trigger: int, hierarchy: PrefetchSink, now: int) -> None:
        cursor: Optional[int] = trigger
        for _ in range(self._chain_depth):
            if cursor is None:
                return
            entry = self._table.get(cursor)
            if entry is None:
                return
            bitmap, nxt = entry
            for bit in range(WINDOW):
                if bitmap & (1 << bit):
                    hierarchy.prefetch_instruction(cursor + bit * LINE_SIZE, now)
            cursor = nxt

    def on_fetch(
        self,
        line_addr: int,
        hit: bool,
        hierarchy: PrefetchSink,
        now: int,
        branch_ip: Optional[int] = None,
        branch_type: BranchType = BranchType.NOT_BRANCH,
        branch_target: Optional[int] = None,
    ) -> None:
        for step in (1, 2):
            hierarchy.prefetch_instruction(line_addr + step * LINE_SIZE, now)
        trigger = self._current_trigger
        in_window = (
            trigger is not None
            and 0 <= (line_addr - trigger) < WINDOW * LINE_SIZE
        )
        if in_window:
            assert trigger is not None
            entry = self._entry(trigger)
            entry[0] |= 1 << ((line_addr - trigger) // LINE_SIZE)
        else:
            # New region: chain the previous trigger to this one, replay.
            if trigger is not None:
                self._entry(trigger)[1] = line_addr
            self._prev_trigger = trigger
            self._current_trigger = line_addr
            self._entry(line_addr)[0] |= 1
            self._replay(line_addr, hierarchy, now)
