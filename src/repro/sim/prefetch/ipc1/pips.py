"""PIPS — Prefetching Instructions with Probabilistic Scouts (Michaud).

Core idea: learn a weighted successor graph over code lines; on each
fetch, send a "scout" down the most probable successor edges a few steps
ahead, prefetching the lines it visits.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.champsim.branch_info import BranchType
from repro.sim.cache.cache import LINE_SIZE
from repro.sim.prefetch.base import InstructionPrefetcher, PrefetchSink


class PIPS(InstructionPrefetcher):
    """Probabilistic successor-graph scouting.

    Learns the successor graph from fetch order only: stream-pure.
    """

    stream_pure = True

    def __init__(
        self,
        table_size: int = 4096,
        successors_per_line: int = 3,
        scout_depth: int = 4,
    ) -> None:
        #: line -> {successor line -> saturating weight}
        self._graph: OrderedDict = OrderedDict()
        self._table_size = table_size
        self._successors = successors_per_line
        self._depth = scout_depth
        self._last_line: Optional[int] = None

    def reset(self) -> None:
        self._graph.clear()
        self._last_line = None

    def _learn(self, src: int, dst: int) -> None:
        entry = self._graph.get(src)
        if entry is None:
            if len(self._graph) >= self._table_size:
                self._graph.popitem(last=False)
            self._graph[src] = {dst: 1}
            return
        self._graph.move_to_end(src)
        if dst in entry:
            entry[dst] = min(15, entry[dst] + 1)
            return
        if len(entry) >= self._successors:
            weakest = min(entry, key=entry.get)
            if entry[weakest] > 1:
                entry[weakest] -= 1
                return
            del entry[weakest]
        entry[dst] = 1

    def _best_successor(self, line: int) -> Optional[int]:
        entry = self._graph.get(line)
        if not entry:
            return None
        return max(entry, key=entry.get)

    def on_fetch(
        self,
        line_addr: int,
        hit: bool,
        hierarchy: PrefetchSink,
        now: int,
        branch_ip: Optional[int] = None,
        branch_type: BranchType = BranchType.NOT_BRANCH,
        branch_target: Optional[int] = None,
    ) -> None:
        if self._last_line is not None and self._last_line != line_addr:
            self._learn(self._last_line, line_addr)
        self._last_line = line_addr

        for step in (1, 2):
            hierarchy.prefetch_instruction(line_addr + step * LINE_SIZE, now)
        # Scout: walk the most probable path ahead.
        cursor: Optional[int] = line_addr
        for _ in range(self._depth):
            cursor = self._best_successor(cursor)
            if cursor is None:
                break
            hierarchy.prefetch_instruction(cursor, now)
