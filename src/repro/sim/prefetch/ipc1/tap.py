"""TAP — Temporal Ancestry Prefetcher (Gober et al.).

Core idea: keep the global temporal stream of instruction-cache misses;
when a line misses again, replay the few misses that historically
followed it ("its descendants").  Bounded history makes it the least
covering of the eight — it placed last at IPC-1 and should stay last.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Optional

from repro.champsim.branch_info import BranchType
from repro.sim.cache.cache import LINE_SIZE
from repro.sim.prefetch.base import InstructionPrefetcher, PrefetchSink


class TAP(InstructionPrefetcher):
    """Global temporal miss-stream replay."""

    def __init__(self, stream_size: int = 4096, replay_depth: int = 3) -> None:
        #: the temporal miss stream (bounded)
        self._stream: Deque[int] = deque(maxlen=stream_size)
        #: line -> index hint of its last occurrence in the stream
        self._index: OrderedDict = OrderedDict()
        self._replay_depth = replay_depth

    def reset(self) -> None:
        self._stream.clear()
        self._index.clear()

    def on_fetch(
        self,
        line_addr: int,
        hit: bool,
        hierarchy: PrefetchSink,
        now: int,
        branch_ip: Optional[int] = None,
        branch_type: BranchType = BranchType.NOT_BRANCH,
        branch_target: Optional[int] = None,
    ) -> None:
        for step in (1, 2):
            hierarchy.prefetch_instruction(line_addr + step * LINE_SIZE, now)
        if hit:
            return
        # Replay descendants of the previous occurrence.
        hint = self._index.get(line_addr)
        if hint is not None:
            stream = self._stream
            # The hint may have slid out of the bounded deque; rescan
            # cheaply from the hint position.
            length = len(stream)
            position = min(hint, length - 1)
            found = None
            for back in range(position, max(-1, position - 64), -1):
                if stream[back] == line_addr:
                    found = back
                    break
            if found is not None:
                for step in range(1, self._replay_depth + 1):
                    if found + step >= length:
                        break
                    hierarchy.prefetch_instruction(stream[found + step], now)
        self._stream.append(line_addr)
        if len(self._index) >= 8192:
            self._index.popitem(last=False)
        self._index[line_addr] = len(self._stream) - 1
