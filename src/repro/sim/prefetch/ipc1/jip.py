"""JIP — Run-Jump-Run: a Bouquet of Instruction Pointer Jumpers
(Gupta, Kalani, Panda).

Core idea: instruction fetch alternates sequential *runs* with *jumps*.
Per jump site, remember the jump's target line and the length of the
sequential run that follows it; on re-encountering the jump site,
prefetch the target line plus its whole run — a deep, discontinuity-aware
lookahead.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.champsim.branch_info import BranchType
from repro.sim.cache.cache import LINE_SIZE
from repro.sim.prefetch.base import InstructionPrefetcher, PrefetchSink


class JIP(InstructionPrefetcher):
    """Jump-site target + run-length replay ("jumpers").

    Trains on fetch order and branch context only: stream-pure.
    """

    stream_pure = True

    def __init__(self, table_size: int = 4096, max_run: int = 12) -> None:
        #: branch ip -> [target line, run length in lines]
        self._jumpers: OrderedDict = OrderedDict()
        self._table_size = table_size
        self._max_run = max_run
        #: currently measured run (target entry being trained)
        self._training_ip: Optional[int] = None
        self._run_lines = 0
        self._last_line: Optional[int] = None

    def reset(self) -> None:
        self._jumpers.clear()
        self._training_ip = None
        self._run_lines = 0
        self._last_line = None

    def _install(self, ip: int, target_line: int) -> None:
        entry = self._jumpers.get(ip)
        if entry is None:
            if len(self._jumpers) >= self._table_size:
                self._jumpers.popitem(last=False)
            self._jumpers[ip] = [target_line, 1]
            return
        self._jumpers.move_to_end(ip)
        entry[0] = target_line

    def on_fetch(
        self,
        line_addr: int,
        hit: bool,
        hierarchy: PrefetchSink,
        now: int,
        branch_ip: Optional[int] = None,
        branch_type: BranchType = BranchType.NOT_BRANCH,
        branch_target: Optional[int] = None,
    ) -> None:
        # Measure the sequential run following the last trained jump.
        if self._training_ip is not None and self._last_line is not None:
            if line_addr == self._last_line + LINE_SIZE:
                self._run_lines = min(self._max_run, self._run_lines + 1)
                entry = self._jumpers.get(self._training_ip)
                if entry is not None:
                    entry[1] = max(entry[1], self._run_lines)
            elif line_addr != self._last_line:
                self._training_ip = None
        self._last_line = line_addr

        for step in (1, 2):
            hierarchy.prefetch_instruction(line_addr + step * LINE_SIZE, now)
        # A taken discontinuity: train its jumper and trigger the bouquet.
        if (
            branch_type is not BranchType.NOT_BRANCH
            and branch_target is not None
            and branch_ip is not None
        ):
            target_line = branch_target & ~(LINE_SIZE - 1)
            self._install(branch_ip, target_line)
            self._training_ip = branch_ip
            self._run_lines = 1
            # The run starts at the *target*: forget the trigger's line so
            # the first post-jump fetch does not abort the measurement.
            self._last_line = None
            entry = self._jumpers.get(branch_ip)
            if entry is not None:
                self._jumpers.move_to_end(branch_ip)
                target, run = entry
                for step in range(run):
                    hierarchy.prefetch_instruction(target + step * LINE_SIZE, now)
