"""The eight IPC-1 instruction-prefetcher submissions (paper Table 3).

Each module reimplements the core mechanism of one submission — enough to
preserve its qualitative coverage/timeliness trade-off, which is what the
paper's re-ranking exercises:

========== ==========================================================
D-JOLT      multi-distance "distant jolt" tables keyed on upcoming
            control-flow discontinuities
JIP         bouquet of instruction-pointer jumpers: per-branch-site
            target + sequential-run replay with deep lookahead
MANA        record/replay of spatial footprints around trigger lines
FNL+MMA     footprint-gated next-line plus a miss-ahead map
PIPS        probabilistic scouts walking a learned successor graph
EPI         entangling: a missing line is entangled with a trigger
            fetched far enough ahead to hide the miss latency
Barça       branch-agnostic region search around fetched lines
TAP         temporal ancestry replay of the global miss stream
========== ==========================================================
"""

from typing import Optional

from repro.sim.prefetch.base import InstructionPrefetcher
from repro.sim.prefetch.ipc1.djolt import DJolt
from repro.sim.prefetch.ipc1.jip import JIP
from repro.sim.prefetch.ipc1.mana import MANA
from repro.sim.prefetch.ipc1.fnl_mma import FNLMMA
from repro.sim.prefetch.ipc1.pips import PIPS
from repro.sim.prefetch.ipc1.epi import EPI
from repro.sim.prefetch.ipc1.barca import Barca
from repro.sim.prefetch.ipc1.tap import TAP

#: Championship name → factory, in the paper's Table 3 competition order.
IPC1_PREFETCHERS = {
    "EPI": EPI,
    "D-JOLT": DJolt,
    "FNL+MMA": FNLMMA,
    "Barça": Barca,
    "PIPS": PIPS,
    "JIP": JIP,
    "MANA": MANA,
    "TAP": TAP,
}


def make_instruction_prefetcher(name: str) -> Optional[InstructionPrefetcher]:
    """Build an instruction prefetcher from its championship name.

    '' returns None (no prefetcher).
    """
    if not name:
        return None
    if name not in IPC1_PREFETCHERS:
        raise ValueError(
            f"unknown instruction prefetcher {name!r}; known: "
            f"{sorted(IPC1_PREFETCHERS)}"
        )
    return IPC1_PREFETCHERS[name]()


__all__ = [
    "DJolt",
    "JIP",
    "MANA",
    "FNLMMA",
    "PIPS",
    "EPI",
    "Barca",
    "TAP",
    "IPC1_PREFETCHERS",
    "make_instruction_prefetcher",
]
