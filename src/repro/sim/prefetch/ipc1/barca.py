"""Barça — Branch Agnostic Region Searching Algorithm (Jiménez et al.).

Core idea: ignore branch semantics entirely; remember, per aligned code
*region*, which of its lines were touched, and on any access into a
region prefetch its recorded footprint (searching neighbouring regions
too).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.champsim.branch_info import BranchType
from repro.sim.cache.cache import LINE_SIZE
from repro.sim.prefetch.base import InstructionPrefetcher, PrefetchSink

#: Lines per region (region = 8 cachelines = 512B of code).
REGION_LINES = 8
REGION_BYTES = REGION_LINES * LINE_SIZE


class Barca(InstructionPrefetcher):
    """Region footprint record/replay with neighbour search.

    Branch-agnostic by design and miss-agnostic in implementation:
    stream-pure over the fetch-event stream.
    """

    stream_pure = True

    def __init__(self, table_size: int = 2048, search_neighbours: int = 1) -> None:
        #: region base -> bitmap of touched lines
        self._regions: OrderedDict = OrderedDict()
        self._table_size = table_size
        self._search = search_neighbours

    def reset(self) -> None:
        self._regions.clear()

    def _touch(self, line_addr: int) -> None:
        region = line_addr - (line_addr % REGION_BYTES)
        bit = (line_addr - region) // LINE_SIZE
        entry = self._regions.get(region)
        if entry is None:
            if len(self._regions) >= self._table_size:
                self._regions.popitem(last=False)
            self._regions[region] = 1 << bit
            return
        self._regions.move_to_end(region)
        self._regions[region] = entry | (1 << bit)

    def _replay(self, region: int, hierarchy: PrefetchSink, now: int) -> None:
        bitmap = self._regions.get(region)
        if bitmap is None:
            return
        for bit in range(REGION_LINES):
            if bitmap & (1 << bit):
                hierarchy.prefetch_instruction(region + bit * LINE_SIZE, now)

    def on_fetch(
        self,
        line_addr: int,
        hit: bool,
        hierarchy: PrefetchSink,
        now: int,
        branch_ip: Optional[int] = None,
        branch_type: BranchType = BranchType.NOT_BRANCH,
        branch_target: Optional[int] = None,
    ) -> None:
        self._touch(line_addr)
        for step in (1, 2):
            hierarchy.prefetch_instruction(line_addr + step * LINE_SIZE, now)
        region = line_addr - (line_addr % REGION_BYTES)
        for offset in range(0, self._search + 1):
            self._replay(region + offset * REGION_BYTES, hierarchy, now)
        # A resolved branch target opens a new region: search it too.
        if branch_target is not None:
            target_region = branch_target - (branch_target % REGION_BYTES)
            self._replay(target_region, hierarchy, now)
