"""Prefetcher interfaces."""

from __future__ import annotations

import abc
from typing import Optional, Protocol

from repro.champsim.branch_info import BranchType


class PrefetchSink(Protocol):
    """What a prefetcher may ask of the memory system.

    Both hierarchies (:class:`~repro.sim.cache.hierarchy.CacheHierarchy`
    and :class:`~repro.sim.flathier.FlatHierarchy`) satisfy this; the
    prefetchers stay agnostic to which engine is driving them.
    """

    def prefetch_data(
        self, addr: int, now: int, fill_l1: bool = False
    ) -> None: ...

    def prefetch_instruction(self, addr: int, now: int) -> None: ...


class DataPrefetcher(abc.ABC):
    """Observes demand data accesses, issues prefetches into the hierarchy.

    ``stream_pure`` declares the *batched-model contract* (see
    ``docs/vector_engine.md``): a stream-pure prefetcher's state
    transitions and emitted prefetch addresses depend only on the
    ``(ip, addr)`` access stream — it never reads ``hit`` and only
    forwards ``now`` to the sink.  The vector engine may then resolve
    its whole request plan ahead of the timing sweep; prefetchers that
    read ``hit`` or ``now`` (timing-coupled) keep the scalar per-access
    path.
    """

    #: True when :meth:`on_access` ignores ``hit``/``now`` (see above).
    stream_pure = False

    @abc.abstractmethod
    def on_access(
        self, ip: int, addr: int, hit: bool, hierarchy: PrefetchSink, now: int
    ) -> None:
        """Called on every demand access at the level this prefetcher guards."""

    def reset(self) -> None:
        """Restore construction-time state (stateless default: no-op).

        Stateful prefetchers must override so the component pool can
        reuse them across runs bit-identically.
        """


class InstructionPrefetcher(abc.ABC):
    """Observes the fetch stream, issues L1I prefetches.

    The engine calls :meth:`on_fetch` once per fetched cacheline with the
    fetch address, whether the demand access hit, and — when the fetch
    group ends in a branch — its deduced type and (post-resolution)
    target, which is the information the IPC-1 API exposed to contestants
    (they observed branches committed by ChampSim's front-end).

    ``stream_pure`` follows the same contract as
    :attr:`DataPrefetcher.stream_pure` over the fetch-event stream
    ``(line_addr, branch_ip, branch_type, branch_target)``: a pure
    instruction prefetcher never reads ``hit``, only forwards ``now``,
    and only calls ``prefetch_instruction`` on the sink.
    """

    #: True when :meth:`on_fetch` ignores ``hit``/``now`` (see above).
    stream_pure = False

    @abc.abstractmethod
    def on_fetch(
        self,
        line_addr: int,
        hit: bool,
        hierarchy: PrefetchSink,
        now: int,
        branch_ip: Optional[int] = None,
        branch_type: BranchType = BranchType.NOT_BRANCH,
        branch_target: Optional[int] = None,
    ) -> None:
        """Called once per demand-fetched cacheline."""

    def reset(self) -> None:
        """Restore construction-time state (stateless default: no-op)."""
