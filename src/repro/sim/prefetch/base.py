"""Prefetcher interfaces."""

from __future__ import annotations

import abc
from typing import Optional, Protocol

from repro.champsim.branch_info import BranchType


class PrefetchSink(Protocol):
    """What a prefetcher may ask of the memory system.

    Both hierarchies (:class:`~repro.sim.cache.hierarchy.CacheHierarchy`
    and :class:`~repro.sim.flathier.FlatHierarchy`) satisfy this; the
    prefetchers stay agnostic to which engine is driving them.
    """

    def prefetch_data(
        self, addr: int, now: int, fill_l1: bool = False
    ) -> None: ...

    def prefetch_instruction(self, addr: int, now: int) -> None: ...


class DataPrefetcher(abc.ABC):
    """Observes demand data accesses, issues prefetches into the hierarchy."""

    @abc.abstractmethod
    def on_access(
        self, ip: int, addr: int, hit: bool, hierarchy: PrefetchSink, now: int
    ) -> None:
        """Called on every demand access at the level this prefetcher guards."""


class InstructionPrefetcher(abc.ABC):
    """Observes the fetch stream, issues L1I prefetches.

    The engine calls :meth:`on_fetch` once per fetched cacheline with the
    fetch address, whether the demand access hit, and — when the fetch
    group ends in a branch — its deduced type and (post-resolution)
    target, which is the information the IPC-1 API exposed to contestants
    (they observed branches committed by ChampSim's front-end).
    """

    @abc.abstractmethod
    def on_fetch(
        self,
        line_addr: int,
        hit: bool,
        hierarchy: PrefetchSink,
        now: int,
        branch_ip: Optional[int] = None,
        branch_type: BranchType = BranchType.NOT_BRANCH,
        branch_target: Optional[int] = None,
    ) -> None:
        """Called once per demand-fetched cacheline."""
