"""Simulation statistics: IPC, branch MPKIs, per-level cache MPKIs.

The MPKI definitions match the paper's Table 2 columns:

- *overall* branch MPKI counts a branch once if its direction or its
  target was mispredicted;
- *direction* MPKI counts conditional branches whose predicted direction
  was wrong;
- *target* MPKI counts taken branches whose predicted target was wrong
  (BTB miss, RAS miss, or indirect-predictor miss);
- *RAS* MPKI counts target mispredictions of return-typed branches only
  (the paper's Figure 5 metric);
- cache MPKIs count demand misses at each level.

Counters gate on :attr:`enabled`, which the engine flips after warm-up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.champsim.branch_info import BranchType


@dataclass
class SimStats:
    """Mutable counters for one simulation run."""

    enabled: bool = True

    instructions: int = 0
    cycles: int = 0

    branches: int = 0
    taken_branches: int = 0
    direction_mispredicts: int = 0
    target_mispredicts: int = 0
    #: Branches with either kind of misprediction (counted once each).
    mispredicted_branches: int = 0
    #: Target mispredictions by deduced branch type.
    target_misses_by_type: Dict[BranchType, int] = field(default_factory=dict)
    #: Dynamic branch counts by deduced type.
    branches_by_type: Dict[BranchType, int] = field(default_factory=dict)

    #: Demand accesses / misses per cache level name ('L1I', 'L1D', 'L2',
    #: 'LLC').
    cache_accesses: Dict[str, int] = field(default_factory=dict)
    cache_misses: Dict[str, int] = field(default_factory=dict)

    prefetches_issued: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def count_instruction(self) -> None:
        if self.enabled:
            self.instructions += 1

    def count_branch(
        self,
        branch_type: BranchType,
        taken: bool,
        direction_wrong: bool,
        target_wrong: bool,
    ) -> None:
        if not self.enabled:
            return
        self.branches += 1
        self.branches_by_type[branch_type] = (
            self.branches_by_type.get(branch_type, 0) + 1
        )
        if taken:
            self.taken_branches += 1
        if direction_wrong:
            self.direction_mispredicts += 1
        if target_wrong:
            self.target_mispredicts += 1
            self.target_misses_by_type[branch_type] = (
                self.target_misses_by_type.get(branch_type, 0) + 1
            )
        if direction_wrong or target_wrong:
            self.mispredicted_branches += 1

    def count_cache_access(self, level: str, miss: bool) -> None:
        if not self.enabled:
            return
        self.cache_accesses[level] = self.cache_accesses.get(level, 0) + 1
        if miss:
            self.cache_misses[level] = self.cache_misses.get(level, 0) + 1

    def count_prefetch(self, level: str) -> None:
        if self.enabled:
            self.prefetches_issued[level] = self.prefetches_issued.get(level, 0) + 1

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Every counter as plain data (enum keys become their names).

        Two runs are bit-identical iff their ``to_dict()`` results are
        equal — the differential harness (``tests/diffharness.py``)
        compares these dicts key by key so a divergence names the exact
        counter instead of dumping two full reprs.
        """
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "branches": self.branches,
            "taken_branches": self.taken_branches,
            "direction_mispredicts": self.direction_mispredicts,
            "target_mispredicts": self.target_mispredicts,
            "mispredicted_branches": self.mispredicted_branches,
            "target_misses_by_type": {
                branch_type.name: count
                for branch_type, count in sorted(
                    self.target_misses_by_type.items(),
                    key=lambda item: item[0].name,
                )
            },
            "branches_by_type": {
                branch_type.name: count
                for branch_type, count in sorted(
                    self.branches_by_type.items(),
                    key=lambda item: item[0].name,
                )
            },
            "cache_accesses": dict(sorted(self.cache_accesses.items())),
            "cache_misses": dict(sorted(self.cache_misses.items())),
            "prefetches_issued": dict(sorted(self.prefetches_issued.items())),
        }

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------

    @property
    def ipc(self) -> float:
        """Retired instructions per cycle."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    def _per_kilo(self, count: int) -> float:
        if self.instructions == 0:
            return 0.0
        return 1000.0 * count / self.instructions

    @property
    def branch_mpki(self) -> float:
        """Overall branch MPKI (direction or target wrong, counted once)."""
        return self._per_kilo(self.mispredicted_branches)

    @property
    def direction_mpki(self) -> float:
        return self._per_kilo(self.direction_mispredicts)

    @property
    def target_mpki(self) -> float:
        return self._per_kilo(self.target_mispredicts)

    @property
    def ras_mpki(self) -> float:
        """Return-target mispredictions per kilo-instruction (Figure 5)."""
        return self._per_kilo(self.target_misses_by_type.get(BranchType.RETURN, 0))

    def cache_mpki(self, level: str) -> float:
        return self._per_kilo(self.cache_misses.get(level, 0))

    @property
    def l1i_mpki(self) -> float:
        return self.cache_mpki("L1I")

    @property
    def l1d_mpki(self) -> float:
        return self.cache_mpki("L1D")

    @property
    def l2_mpki(self) -> float:
        return self.cache_mpki("L2")

    @property
    def llc_mpki(self) -> float:
        return self.cache_mpki("LLC")

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"instructions: {self.instructions}",
            f"cycles:       {self.cycles}",
            f"IPC:          {self.ipc:.3f}",
            f"branch MPKI:  {self.branch_mpki:.2f} "
            f"(direction {self.direction_mpki:.2f}, target {self.target_mpki:.2f}, "
            f"RAS {self.ras_mpki:.2f})",
        ]
        for level in ("L1I", "L1D", "L2", "LLC"):
            lines.append(f"{level} MPKI:     {self.cache_mpki(level):.2f}")
        return "\n".join(lines)
