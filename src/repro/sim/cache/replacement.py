"""Replacement policies for the set-associative cache model.

Policies operate on one set at a time; the cache hands them the set's
line metadata dictionary (line address → per-line state) and asks for a
victim.  LRU is the paper-configuration default; SRRIP and random exist
for the ablation benchmarks and tests.
"""

from __future__ import annotations

import abc
import random
from typing import Dict


class ReplacementPolicy(abc.ABC):
    """Chooses victims and maintains per-line recency state."""

    @abc.abstractmethod
    def on_hit(self, set_state: Dict[int, int], line: int) -> None:
        """Update recency state on a hit to ``line``."""

    @abc.abstractmethod
    def on_fill(self, set_state: Dict[int, int], line: int) -> None:
        """Initialise recency state for a newly filled ``line``."""

    @abc.abstractmethod
    def victim(self, set_state: Dict[int, int]) -> int:
        """Pick the line address to evict from a full set."""

    def reset(self) -> None:
        """Restore construction-time state (stateless default: no-op).

        Needed by the component pool: a reused cache must behave
        bit-identically to a freshly constructed one.
        """


class LRU(ReplacementPolicy):
    """Least-recently-used via a monotonic timestamp per line."""

    def __init__(self) -> None:
        self._clock = 0

    def reset(self) -> None:
        self._clock = 0

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def on_hit(self, set_state: Dict[int, int], line: int) -> None:
        set_state[line] = self._tick()

    def on_fill(self, set_state: Dict[int, int], line: int) -> None:
        set_state[line] = self._tick()

    def victim(self, set_state: Dict[int, int]) -> int:
        return min(set_state, key=set_state.get)


class SRRIP(ReplacementPolicy):
    """Static re-reference interval prediction (2-bit RRPV)."""

    MAX_RRPV = 3

    def on_hit(self, set_state: Dict[int, int], line: int) -> None:
        set_state[line] = 0

    def on_fill(self, set_state: Dict[int, int], line: int) -> None:
        set_state[line] = self.MAX_RRPV - 1

    def victim(self, set_state: Dict[int, int]) -> int:
        while True:
            for line, rrpv in set_state.items():
                if rrpv >= self.MAX_RRPV:
                    return line
            for line in set_state:
                set_state[line] += 1


class RandomReplacement(ReplacementPolicy):
    """Uniform random victim (deterministic seed)."""

    def __init__(self, seed: int = 1234) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def on_hit(self, set_state: Dict[int, int], line: int) -> None:
        set_state.setdefault(line, 0)

    def on_fill(self, set_state: Dict[int, int], line: int) -> None:
        set_state[line] = 0

    def victim(self, set_state: Dict[int, int]) -> int:
        return self._rng.choice(list(set_state))


def make_policy(name: str) -> ReplacementPolicy:
    """Build a replacement policy from its registry name."""
    registry = {"lru": LRU, "srrip": SRRIP, "random": RandomReplacement}
    if name not in registry:
        raise ValueError(f"unknown replacement policy {name!r}; known: {sorted(registry)}")
    return registry[name]()
