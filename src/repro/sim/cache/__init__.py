"""Cache hierarchy: set-associative caches, replacement policies, and the
four-level L1I/L1D/L2/LLC wiring the paper's configuration uses."""

from repro.sim.cache.replacement import LRU, SRRIP, RandomReplacement, make_policy
from repro.sim.cache.cache import Cache
from repro.sim.cache.hierarchy import CacheHierarchy, AccessResult

__all__ = [
    "LRU",
    "SRRIP",
    "RandomReplacement",
    "make_policy",
    "Cache",
    "CacheHierarchy",
    "AccessResult",
]
