"""One set-associative cache level with in-flight fill tracking.

Lines carry a *ready time*: a prefetched line filled at cycle ``t`` is
present but not usable before ``t``, so a demand access arriving earlier
pays the residual latency.  This is how the interval model expresses
prefetch timeliness without event-driven MSHRs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sim.cache.replacement import LRU, ReplacementPolicy

LINE_BITS = 6
LINE_SIZE = 1 << LINE_BITS


class Cache:
    """A single cache level.

    Args:
        size: Capacity in bytes.
        ways: Associativity.
        latency: Hit latency in cycles.
        policy: Replacement policy (default LRU).
        name: Level name used in statistics ('L1I', 'L1D', ...).
    """

    def __init__(
        self,
        size: int,
        ways: int,
        latency: int,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "cache",
    ) -> None:
        if size % (ways * LINE_SIZE):
            raise ValueError("size must be a multiple of ways * line size")
        self.name = name
        self.latency = latency
        self.num_sets = size // (ways * LINE_SIZE)
        self.ways = ways
        self._policy = policy or LRU()
        #: set index -> {line address -> recency state}
        self._sets: Dict[int, Dict[int, int]] = {}
        #: line address -> cycle at which its data is usable
        self._ready: Dict[int, int] = {}

    def reset(self) -> None:
        """Drop all lines and recency state (component-pool reuse).

        After reset the cache behaves bit-identically to a freshly
        constructed one with the same geometry and policy.
        """
        self._sets.clear()
        self._ready.clear()
        self._policy.reset()

    @staticmethod
    def line_of(addr: int) -> int:
        """Aligned line address of ``addr``."""
        return addr & ~(LINE_SIZE - 1)

    def _set_of(self, line: int) -> int:
        return (line >> LINE_BITS) % self.num_sets

    def present(self, addr: int) -> bool:
        """Is the line holding ``addr`` resident (regardless of readiness)?"""
        line = self.line_of(addr)
        set_state = self._sets.get(self._set_of(line))
        return set_state is not None and line in set_state

    def ready_time(self, addr: int) -> int:
        """Cycle at which the resident line's data is usable (0 if old)."""
        return self._ready.get(self.line_of(addr), 0)

    def lookup(self, addr: int) -> bool:
        """Demand lookup: updates recency; True on hit."""
        line = self.line_of(addr)
        set_state = self._sets.setdefault(self._set_of(line), {})
        if line in set_state:
            self._policy.on_hit(set_state, line)
            return True
        return False

    def fill(self, addr: int, ready_time: int = 0) -> None:
        """Install the line holding ``addr``; evict LRU victim if needed.

        ``ready_time`` is the cycle the data becomes usable (0 = already
        usable — e.g. a demand fill whose latency was charged directly).
        """
        line = self.line_of(addr)
        set_state = self._sets.setdefault(self._set_of(line), {})
        if line in set_state:
            # Refill of a resident line can only make it ready sooner.
            if ready_time < self._ready.get(line, 0):
                self._ready[line] = ready_time
            return
        if len(set_state) >= self.ways:
            victim = self._policy.victim(set_state)
            del set_state[victim]
            self._ready.pop(victim, None)
        set_state[line] = 0
        self._policy.on_fill(set_state, line)
        if ready_time > 0:
            self._ready[line] = ready_time
        else:
            self._ready.pop(line, None)

    def invalidate(self, addr: int) -> bool:
        """Drop the line holding ``addr``; True if it was resident."""
        line = self.line_of(addr)
        set_state = self._sets.get(self._set_of(line))
        if set_state and line in set_state:
            del set_state[line]
            self._ready.pop(line, None)
            return True
        return False

    def resident_lines(self) -> int:
        """Total resident lines (tests / occupancy probes)."""
        return sum(len(s) for s in self._sets.values())
