"""Four-level cache hierarchy with latency accounting and prefetch hooks.

Latency convention: each level's configured latency is the *total* access
latency when the request is satisfied at that level (so an L2 hit costs
``l2.latency`` cycles end to end).  A DRAM access costs
``dram_latency``.  Lines being filled by an earlier prefetch carry a
ready time; a demand access arriving before it pays the residual wait
instead of the full miss, which is how prefetch timeliness manifests.

Demand misses are counted per level in :class:`~repro.sim.stats.SimStats`
(Table 2's L1I/L1D/L2/LLC MPKI columns); prefetch traffic is counted
separately and never inflates demand MPKIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.sim.cache.cache import Cache
from repro.sim.config import SimConfig
from repro.sim.stats import SimStats


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one demand access."""

    latency: int
    #: Level that satisfied the request: 'L1', 'L2', 'LLC' or 'DRAM'.
    source: str

    @property
    def l1_hit(self) -> bool:
        """True only for a ready L1 hit (in-flight merges are misses)."""
        return self.source == "L1"


class CacheHierarchy:
    """L1I + L1D over a shared L2 over the LLC over DRAM."""

    def __init__(self, config: SimConfig, stats: SimStats) -> None:
        self.config = config
        self.stats = stats
        self.l1i = Cache(*config.l1i, name="L1I")
        self.l1d = Cache(*config.l1d, name="L1D")
        self.l2 = Cache(*config.l2, name="L2")
        self.llc = Cache(*config.llc, name="LLC")
        self.dram_latency = config.dram_latency
        # Prefetchers are attached by the engine (they need its context).
        self.l1d_prefetcher = None
        self.l2_prefetcher = None

    def reset(self, stats: SimStats) -> None:
        """Drop all cached lines and rebind to a fresh ``stats``.

        Used by the component pool to reuse the hierarchy across runs;
        after reset, behaviour is bit-identical to a newly constructed
        hierarchy bound to ``stats``.
        """
        self.l1i.reset()
        self.l1d.reset()
        self.l2.reset()
        self.llc.reset()
        self.stats = stats

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------

    def _demand(self, l1: Cache, addr: int, now: int) -> AccessResult:
        """Walk the hierarchy for a demand access through ``l1``.

        A line whose fill is still in flight (its ready time lies in the
        future) counts as a *miss* at that level — matching ChampSim's
        accounting, where a demand access that merges into an existing
        MSHR is still a miss — but only pays the residual wait.
        """
        if l1.lookup(addr):
            ready = l1.ready_time(addr)
            if ready > now:
                self.stats.count_cache_access(l1.name, miss=True)
                return AccessResult(
                    latency=max(l1.latency, ready - now), source="L1-inflight"
                )
            self.stats.count_cache_access(l1.name, miss=False)
            return AccessResult(latency=l1.latency, source="L1")
        self.stats.count_cache_access(l1.name, miss=True)

        if self.l2.lookup(addr):
            ready = self.l2.ready_time(addr)
            if ready > now:
                self.stats.count_cache_access("L2", miss=True)
                latency = max(self.l2.latency, ready - now + l1.latency)
                l1.fill(addr, ready_time=now + latency)
                return AccessResult(latency=latency, source="L2-inflight")
            self.stats.count_cache_access("L2", miss=False)
            l1.fill(addr)
            return AccessResult(latency=self.l2.latency, source="L2")
        self.stats.count_cache_access("L2", miss=True)

        if self.llc.lookup(addr):
            ready = self.llc.ready_time(addr)
            if ready > now:
                self.stats.count_cache_access("LLC", miss=True)
                latency = max(self.llc.latency, ready - now + l1.latency)
                self.l2.fill(addr, ready_time=now + latency)
                l1.fill(addr, ready_time=now + latency)
                return AccessResult(latency=latency, source="LLC-inflight")
            self.stats.count_cache_access("LLC", miss=False)
            self.l2.fill(addr)
            l1.fill(addr)
            return AccessResult(latency=self.llc.latency, source="LLC")
        self.stats.count_cache_access("LLC", miss=True)

        latency = self.dram_latency
        arrival = now + latency
        self.llc.fill(addr, ready_time=arrival)
        self.l2.fill(addr, ready_time=arrival)
        l1.fill(addr, ready_time=arrival)
        return AccessResult(latency=latency, source="DRAM")

    def access_instruction(self, addr: int, now: int) -> AccessResult:
        """Demand instruction fetch of the line holding ``addr``."""
        return self._demand(self.l1i, addr, now)

    def access_data(
        self, ip: int, addr: int, now: int, is_write: bool = False
    ) -> AccessResult:
        """Demand data access; fires the L1D/L2 prefetcher hooks."""
        result = self._demand(self.l1d, addr, now)
        if self.l1d_prefetcher is not None:
            self.l1d_prefetcher.on_access(ip, addr, result.l1_hit, self, now)
        if self.l2_prefetcher is not None and not result.l1_hit:
            self.l2_prefetcher.on_access(ip, addr, result.source == "L2", self, now)
        return result

    # ------------------------------------------------------------------
    # prefetch path
    # ------------------------------------------------------------------

    def _lookup_latency(self, addr: int) -> int:
        """Latency a fill would take given where the line currently is.

        Peeks without disturbing recency or statistics.
        """
        if self.l2.present(addr):
            return self.l2.latency
        if self.llc.present(addr):
            return self.llc.latency
        return self.dram_latency

    def prefetch_data(self, addr: int, now: int, fill_l1: bool = False) -> None:
        """Prefetch the line holding ``addr`` into L2 (and optionally L1D)."""
        target = self.l1d if fill_l1 else self.l2
        if target.present(addr):
            return
        self.stats.count_prefetch("L1D" if fill_l1 else "L2")
        ready = now + self._lookup_latency(addr)
        self.l2.fill(addr, ready_time=ready)
        if fill_l1:
            self.l1d.fill(addr, ready_time=ready)

    def prefetch_instruction(self, addr: int, now: int) -> None:
        """Prefetch the line holding ``addr`` into the L1I."""
        if self.l1i.present(addr):
            return
        self.stats.count_prefetch("L1I")
        ready = now + self._lookup_latency(addr)
        self.l1i.fill(addr, ready_time=ready)
        self.l2.fill(addr, ready_time=ready)
