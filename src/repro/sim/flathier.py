"""Flattened cache hierarchy for the vector engine's hot path.

:class:`FlatHierarchy` is a drop-in behavioural mirror of
:class:`~repro.sim.cache.hierarchy.CacheHierarchy` over four LRU
:class:`~repro.sim.cache.cache.Cache` levels, with the per-access call
layers collapsed: the demand walk runs as one function over plain dicts
(set state, ready times, LRU stamps held inline per level), returns a
``(latency, source_code)`` tuple instead of allocating a frozen
:class:`~repro.sim.cache.hierarchy.AccessResult`, and buffers statistics
in plain integer attributes that :meth:`flush_stats` folds into the
shared :class:`~repro.sim.stats.SimStats` at phase boundaries.

Every observable behaviour — hit/miss outcomes, LRU victim choice,
in-flight ready-time handling, fill propagation, prefetch hook firing
order, and the final statistics — matches the reference hierarchy
exactly; the differential test tier
(``tests/test_vector_engine_differential.py``) pins that equivalence.
The public object API (``access_instruction`` / ``access_data`` /
``prefetch_data`` / ``prefetch_instruction``) is preserved so pluggable
prefetchers keep working unchanged against either hierarchy.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.sim.cache.cache import LINE_BITS, LINE_SIZE
from repro.sim.cache.hierarchy import AccessResult
from repro.sim.config import CacheGeometry, SimConfig
from repro.sim.stats import SimStats

_LINE_MASK = ~(LINE_SIZE - 1)

#: Source codes returned by the fast demand walk.  The mapping to the
#: reference hierarchy's ``AccessResult.source`` strings is exact.
SRC_L1 = 0
SRC_L1_INFLIGHT = 1
SRC_L2 = 2
SRC_L2_INFLIGHT = 3
SRC_LLC = 4
SRC_LLC_INFLIGHT = 5
SRC_DRAM = 6

_SOURCE_NAMES = (
    "L1",
    "L1-inflight",
    "L2",
    "L2-inflight",
    "LLC",
    "LLC-inflight",
    "DRAM",
)


class _FlatLevel:
    """One cache level's state, flattened for inline access.

    Mirrors :class:`~repro.sim.cache.cache.Cache` with the default LRU
    policy: per-set ``{line: stamp}`` dicts, a monotonic per-level clock
    (ticked on every hit and fill, exactly like ``LRU._tick``), and the
    shared ``{line: ready_time}`` map for in-flight fills.
    """

    __slots__ = ("name", "latency", "num_sets", "ways", "sets", "ready", "clock")

    def __init__(self, geometry: CacheGeometry, name: str) -> None:
        size, ways, latency = geometry
        if size % (ways * LINE_SIZE):
            raise ValueError("size must be a multiple of ways * line size")
        self.name = name
        self.latency = latency
        self.num_sets = size // (ways * LINE_SIZE)
        self.ways = ways
        self.sets: Dict[int, Dict[int, int]] = {}
        self.ready: Dict[int, int] = {}
        self.clock = 0

    # The object API below exists for tests and pluggable components
    # probing a level directly; the hierarchy's hot path inlines it.

    def present(self, addr: int) -> bool:
        line = addr & _LINE_MASK
        set_state = self.sets.get((line >> LINE_BITS) % self.num_sets)
        return set_state is not None and line in set_state

    def ready_time(self, addr: int) -> int:
        return self.ready.get(addr & _LINE_MASK, 0)

    def lookup(self, addr: int) -> bool:
        line = addr & _LINE_MASK
        set_state = self.sets.setdefault((line >> LINE_BITS) % self.num_sets, {})
        if line in set_state:
            self.clock += 1
            set_state[line] = self.clock
            return True
        return False

    def fill(self, addr: int, ready_time: int = 0) -> None:
        line = addr & _LINE_MASK
        set_state = self.sets.setdefault((line >> LINE_BITS) % self.num_sets, {})
        if line in set_state:
            if ready_time < self.ready.get(line, 0):
                self.ready[line] = ready_time
            return
        if len(set_state) >= self.ways:
            victim = min(set_state, key=set_state.get)
            del set_state[victim]
            self.ready.pop(victim, None)
        self.clock += 1
        set_state[line] = self.clock
        if ready_time > 0:
            self.ready[line] = ready_time
        else:
            self.ready.pop(line, None)

    def resident_lines(self) -> int:
        return sum(len(s) for s in self.sets.values())


class FlatHierarchy:
    """L1I + L1D over a shared L2 over the LLC over DRAM, flattened.

    Statistics are buffered in integer attributes (``acc_*`` demand
    accesses, ``miss_*`` demand misses, ``pf_*`` prefetch issues) and
    only folded into :class:`~repro.sim.stats.SimStats` by
    :meth:`flush_stats`.  :attr:`counting` replaces the per-call
    ``stats.enabled`` check: the engine flips it at the warm-up boundary
    after flushing, so the folded totals equal what the reference
    hierarchy would have counted call by call.
    """

    def __init__(self, config: SimConfig, stats: SimStats) -> None:
        self.config = config
        self.stats = stats
        self.l1i = _FlatLevel(config.l1i, "L1I")
        self.l1d = _FlatLevel(config.l1d, "L1D")
        self.l2 = _FlatLevel(config.l2, "L2")
        self.llc = _FlatLevel(config.llc, "LLC")
        self.dram_latency = config.dram_latency
        # Prefetchers are attached by the engine (they need its context).
        self.l1d_prefetcher = None
        self.l2_prefetcher = None
        self.counting = stats.enabled
        self.acc_l1i = 0
        self.miss_l1i = 0
        self.acc_l1d = 0
        self.miss_l1d = 0
        self.acc_l2 = 0
        self.miss_l2 = 0
        self.acc_llc = 0
        self.miss_llc = 0
        self.pf_l1i = 0
        self.pf_l1d = 0
        self.pf_l2 = 0

    # ------------------------------------------------------------------
    # demand path
    # ------------------------------------------------------------------

    def demand_fast(
        self, l1: _FlatLevel, line: int, now: int
    ) -> Tuple[int, int]:
        """Demand access to the aligned ``line`` through ``l1``.

        Returns ``(latency, source_code)``.  The walk is the reference
        :meth:`CacheHierarchy._demand` with lookups, ready checks, LRU
        maintenance, and statistics inlined.
        """
        counting = self.counting
        is_l1i = l1 is self.l1i
        set_state = l1.sets.setdefault((line >> LINE_BITS) % l1.num_sets, {})
        if line in set_state:
            l1.clock += 1
            set_state[line] = l1.clock
            ready = l1.ready.get(line, 0)
            if counting:
                if is_l1i:
                    self.acc_l1i += 1
                else:
                    self.acc_l1d += 1
            if ready > now:
                if counting:
                    if is_l1i:
                        self.miss_l1i += 1
                    else:
                        self.miss_l1d += 1
                wait = ready - now
                return (
                    wait if wait > l1.latency else l1.latency,
                    SRC_L1_INFLIGHT,
                )
            return l1.latency, SRC_L1
        if counting:
            if is_l1i:
                self.acc_l1i += 1
                self.miss_l1i += 1
            else:
                self.acc_l1d += 1
                self.miss_l1d += 1

        l2 = self.l2
        set_state2 = l2.sets.setdefault((line >> LINE_BITS) % l2.num_sets, {})
        if counting:
            self.acc_l2 += 1
        if line in set_state2:
            l2.clock += 1
            set_state2[line] = l2.clock
            ready = l2.ready.get(line, 0)
            if ready > now:
                if counting:
                    self.miss_l2 += 1
                latency = ready - now + l1.latency
                if latency < l2.latency:
                    latency = l2.latency
                _fill(l1, line, now + latency)
                return latency, SRC_L2_INFLIGHT
            _fill(l1, line, 0)
            return l2.latency, SRC_L2
        if counting:
            self.miss_l2 += 1

        llc = self.llc
        set_state3 = llc.sets.setdefault((line >> LINE_BITS) % llc.num_sets, {})
        if counting:
            self.acc_llc += 1
        if line in set_state3:
            llc.clock += 1
            set_state3[line] = llc.clock
            ready = llc.ready.get(line, 0)
            if ready > now:
                if counting:
                    self.miss_llc += 1
                latency = ready - now + l1.latency
                if latency < llc.latency:
                    latency = llc.latency
                _fill(l2, line, now + latency)
                _fill(l1, line, now + latency)
                return latency, SRC_LLC_INFLIGHT
            _fill(l2, line, 0)
            _fill(l1, line, 0)
            return llc.latency, SRC_LLC
        if counting:
            self.miss_llc += 1

        latency = self.dram_latency
        arrival = now + latency
        _fill(llc, line, arrival)
        _fill(l2, line, arrival)
        _fill(l1, line, arrival)
        return latency, SRC_DRAM

    def access_instruction_fast(self, line: int, now: int) -> Tuple[int, int]:
        """Demand instruction fetch of the aligned ``line``."""
        return self.demand_fast(self.l1i, line, now)

    def access_data_fast(
        self, ip: int, addr: int, now: int, is_write: bool = False
    ) -> Tuple[int, int]:
        """Demand data access; fires the L1D/L2 prefetcher hooks."""
        latency, source = self.demand_fast(self.l1d, addr & _LINE_MASK, now)
        l1_hit = source == SRC_L1
        if self.l1d_prefetcher is not None:
            self.l1d_prefetcher.on_access(ip, addr, l1_hit, self, now)
        if self.l2_prefetcher is not None and not l1_hit:
            self.l2_prefetcher.on_access(ip, addr, source == SRC_L2, self, now)
        return latency, source

    # ------------------------------------------------------------------
    # reference-compatible object API (pluggable prefetchers, tests)
    # ------------------------------------------------------------------

    def access_instruction(self, addr: int, now: int) -> AccessResult:
        """Demand instruction fetch of the line holding ``addr``."""
        latency, source = self.demand_fast(self.l1i, addr & _LINE_MASK, now)
        return AccessResult(latency=latency, source=_SOURCE_NAMES[source])

    def access_data(
        self, ip: int, addr: int, now: int, is_write: bool = False
    ) -> AccessResult:
        """Demand data access; fires the L1D/L2 prefetcher hooks."""
        latency, source = self.access_data_fast(ip, addr, now, is_write)
        return AccessResult(latency=latency, source=_SOURCE_NAMES[source])

    # ------------------------------------------------------------------
    # prefetch path
    # ------------------------------------------------------------------

    def _lookup_latency(self, line: int) -> int:
        """Latency a fill would take given where the line currently is."""
        l2 = self.l2
        set_state = l2.sets.get((line >> LINE_BITS) % l2.num_sets)
        if set_state is not None and line in set_state:
            return l2.latency
        llc = self.llc
        set_state = llc.sets.get((line >> LINE_BITS) % llc.num_sets)
        if set_state is not None and line in set_state:
            return llc.latency
        return self.dram_latency

    def prefetch_data(self, addr: int, now: int, fill_l1: bool = False) -> None:
        """Prefetch the line holding ``addr`` into L2 (and optionally L1D)."""
        line = addr & _LINE_MASK
        target = self.l1d if fill_l1 else self.l2
        set_state = target.sets.get((line >> LINE_BITS) % target.num_sets)
        if set_state is not None and line in set_state:
            return
        if self.counting:
            if fill_l1:
                self.pf_l1d += 1
            else:
                self.pf_l2 += 1
        ready = now + self._lookup_latency(line)
        _fill(self.l2, line, ready)
        if fill_l1:
            _fill(self.l1d, line, ready)

    def prefetch_instruction(self, addr: int, now: int) -> None:
        """Prefetch the line holding ``addr`` into the L1I."""
        line = addr & _LINE_MASK
        l1i = self.l1i
        set_state = l1i.sets.get((line >> LINE_BITS) % l1i.num_sets)
        if set_state is not None and line in set_state:
            return
        if self.counting:
            self.pf_l1i += 1
        ready = now + self._lookup_latency(line)
        _fill(l1i, line, ready)
        _fill(self.l2, line, ready)

    # ------------------------------------------------------------------
    # run-compacted prefetch issue (batched component plans)
    # ------------------------------------------------------------------

    def prefetch_data_run(
        self, requests: Sequence[Tuple[int, bool]], now: int
    ) -> None:
        """Issue a recorded run of ``(addr, fill_l1)`` data prefetches.

        Behaviourally one :meth:`prefetch_data` call per request at the
        same ``now``, with consecutive same-line same-target requests
        elided: the duplicate would find the line just filled and
        early-return without touching LRU state or counters, so the
        elision is bit-identical.
        """
        counting = self.counting
        l1d = self.l1d
        l2 = self.l2
        prev_line = -1
        prev_fill = False
        for addr, fill_l1 in requests:
            line = addr & _LINE_MASK
            if line == prev_line and fill_l1 == prev_fill:
                continue
            prev_line = line
            prev_fill = fill_l1
            target = l1d if fill_l1 else l2
            set_state = target.sets.get((line >> LINE_BITS) % target.num_sets)
            if set_state is not None and line in set_state:
                continue
            if counting:
                if fill_l1:
                    self.pf_l1d += 1
                else:
                    self.pf_l2 += 1
            ready = now + self._lookup_latency(line)
            _fill(l2, line, ready)
            if fill_l1:
                _fill(l1d, line, ready)

    def prefetch_instruction_run(self, addrs: Sequence[int], now: int) -> None:
        """Issue a recorded run of instruction prefetches at ``now``.

        Behaviourally one :meth:`prefetch_instruction` call per address,
        with consecutive same-line requests elided (the duplicate would
        early-return on the present check with no state change).
        """
        counting = self.counting
        l1i = self.l1i
        l2 = self.l2
        prev_line = -1
        for addr in addrs:
            line = addr & _LINE_MASK
            if line == prev_line:
                continue
            prev_line = line
            set_state = l1i.sets.get((line >> LINE_BITS) % l1i.num_sets)
            if set_state is not None and line in set_state:
                continue
            if counting:
                self.pf_l1i += 1
            ready = now + self._lookup_latency(line)
            _fill(l1i, line, ready)
            _fill(l2, line, ready)

    # ------------------------------------------------------------------
    # component-pool support
    # ------------------------------------------------------------------

    def reset(self, stats: SimStats) -> None:
        """Restore construction-time cache state against a fresh ``stats``.

        Used by the component pool to reuse a hierarchy across runs:
        after reset, behaviour is bit-identical to a newly constructed
        :class:`FlatHierarchy` bound to ``stats``.
        """
        for level in (self.l1i, self.l1d, self.l2, self.llc):
            level.sets.clear()
            level.ready.clear()
            level.clock = 0
        self.stats = stats
        self.counting = stats.enabled
        self.acc_l1i = self.miss_l1i = 0
        self.acc_l1d = self.miss_l1d = 0
        self.acc_l2 = self.miss_l2 = 0
        self.acc_llc = self.miss_llc = 0
        self.pf_l1i = self.pf_l1d = self.pf_l2 = 0

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def flush_stats(self) -> None:
        """Fold the buffered counters into the shared ``SimStats``.

        Idempotent between phases: counters reset to zero on flush.  The
        engine calls this before flipping :attr:`counting` at the
        warm-up boundary and once after the sweep completes.
        """
        stats = self.stats
        accesses = stats.cache_accesses
        misses = stats.cache_misses
        prefetches = stats.prefetches_issued
        for level, acc, miss in (
            ("L1I", self.acc_l1i, self.miss_l1i),
            ("L1D", self.acc_l1d, self.miss_l1d),
            ("L2", self.acc_l2, self.miss_l2),
            ("LLC", self.acc_llc, self.miss_llc),
        ):
            if acc:
                accesses[level] = accesses.get(level, 0) + acc
            if miss:
                misses[level] = misses.get(level, 0) + miss
        for level, count in (
            ("L1I", self.pf_l1i),
            ("L1D", self.pf_l1d),
            ("L2", self.pf_l2),
        ):
            if count:
                prefetches[level] = prefetches.get(level, 0) + count
        self.acc_l1i = self.miss_l1i = 0
        self.acc_l1d = self.miss_l1d = 0
        self.acc_l2 = self.miss_l2 = 0
        self.acc_llc = self.miss_llc = 0
        self.pf_l1i = self.pf_l1d = self.pf_l2 = 0


def _fill(level: _FlatLevel, line: int, ready_time: int) -> None:
    """Install ``line`` (already aligned) into ``level``; mirror of
    :meth:`Cache.fill` including the refill-ready-sooner rule and LRU
    victim selection."""
    set_state = level.sets.setdefault((line >> LINE_BITS) % level.num_sets, {})
    if line in set_state:
        if ready_time < level.ready.get(line, 0):
            level.ready[line] = ready_time
        return
    if len(set_state) >= level.ways:
        victim = min(set_state, key=set_state.get)
        del set_state[victim]
        level.ready.pop(victim, None)
    level.clock += 1
    set_state[line] = level.clock
    if ready_time > 0:
        level.ready[line] = ready_time
    else:
        level.ready.pop(line, None)
