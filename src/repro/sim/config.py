"""Simulator configuration and the paper's two presets."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

#: (total size bytes, associativity, hit latency cycles)
CacheGeometry = Tuple[int, int, int]


@dataclass(frozen=True)
class SimConfig:
    """Every knob of the interval timing model.

    Defaults follow ChampSim's Intel-flavoured out-of-order core; the two
    classmethod presets pin the configurations the paper evaluates.
    """

    name: str = "main"

    #: Which engine implementation runs the interval model: ``"scalar"``
    #: (the per-instruction reference in :mod:`repro.sim.engine`) or
    #: ``"vector"`` (the columnar batch engine in
    #: :mod:`repro.sim.vector_engine`, pinned bit-identical to the scalar
    #: engine by the differential test tier).
    engine: str = "scalar"

    # --- widths and windows ------------------------------------------------
    fetch_width: int = 6
    dispatch_width: int = 6
    exec_width: int = 6
    retire_width: int = 5
    rob_size: int = 256
    #: Physical registers available for renaming (0 = unlimited, the
    #: ChampSim behaviour).  The paper notes the mem-regs improvement
    #: "would be important if ChampSim modeled a finite physical register
    #: file" (Section 4.2) — set this to test that hypothesis.
    prf_size: int = 0
    #: Fetch-to-dispatch pipeline depth (cycles); sets the floor of the
    #: branch misprediction penalty.
    frontend_depth: int = 10
    #: Extra cycles to restart fetch after a resolved misprediction.
    mispredict_restart: int = 2
    #: Fetch bubble when a taken branch hits in the BTB but the front-end
    #: must re-steer to a new line (0 = fully pipelined).
    taken_bubble: int = 0
    #: Bubble when a taken branch *misses* the BTB (decode-time re-steer).
    btb_miss_penalty: int = 8

    # --- branch prediction ----------------------------------------------
    #: 'tage', 'gshare', 'bimodal', or 'always-taken'.
    direction_predictor: str = "tage"
    btb_entries: int = 16384
    btb_ways: int = 8
    ras_size: int = 64
    #: 'ittage' or 'btb' (fall back to the BTB's last target).
    indirect_predictor: str = "ittage"
    #: IPC-1 preset: the contest ChampSim modelled an ideal target
    #: predictor, so only direction mispredicts redirect the front-end.
    ideal_targets: bool = False

    # --- front-end --------------------------------------------------------
    #: Decoupled front-end with fetch-directed instruction prefetching.
    decoupled_frontend: bool = True
    #: How many cachelines of runahead FDIP prefetches (0 disables).
    fdip_lookahead: int = 12

    # --- memory hierarchy ---------------------------------------------
    l1i: CacheGeometry = (32 * 1024, 8, 4)
    l1d: CacheGeometry = (48 * 1024, 12, 5)
    l2: CacheGeometry = (512 * 1024, 8, 14)
    llc: CacheGeometry = (2 * 1024 * 1024, 16, 34)
    dram_latency: int = 200
    #: Data prefetchers, by registry name ('' disables).
    l1d_prefetcher: str = "ip_stride"
    l2_prefetcher: str = "next_line"
    #: Instruction prefetcher, by registry name ('' disables; FDIP is
    #: separate and controlled by ``fdip_lookahead``).
    l1i_prefetcher: str = ""

    # --- execution ------------------------------------------------------
    alu_latency: int = 1
    branch_latency: int = 1

    # --- methodology -------------------------------------------------
    #: Fraction of the trace used to warm structures before measurement
    #: (the paper: none for the public traces, 50% for the IPC-1 study).
    warmup_fraction: float = 0.0

    @classmethod
    def main(cls, **overrides: object) -> "SimConfig":
        """The paper's Section 4 setup (ChampSim ``main`` @ 2bba2bd).

        16K-entry BTB, 64KB-class TAGE-SC-L-style direction predictor and
        ITTAGE indirect predictor, decoupled front-end, ip-stride L1D +
        next-line L2 prefetching (Ice-Lake-like), no warm-up.
        """
        return replace(cls(name="main"), **overrides)

    @classmethod
    def ipc1(cls, l1i_prefetcher: str = "", **overrides: object) -> "SimConfig":
        """The IPC-1 contest configuration.

        No decoupled front-end (the methodological gap Ishii et al. point
        out and the paper echoes), an ideal branch-*target* predictor
        (which is why the call-stack fix cannot influence Table 3), a
        pluggable L1I prefetcher, and 50/50 warm-up/measurement.
        """
        base = cls(
            name=f"ipc1:{l1i_prefetcher or 'none'}",
            decoupled_frontend=False,
            fdip_lookahead=0,
            ideal_targets=True,
            direction_predictor="gshare",
            l1i_prefetcher=l1i_prefetcher,
            warmup_fraction=0.5,
        )
        return replace(base, **overrides)
