"""Reproduction of *Rebasing Microarchitectural Research with Industry Traces*.

Feliu, Perais, Jiménez, Ros — IISWC 2023.

The package is organised as one subpackage per subsystem:

- :mod:`repro.cvp` — the CVP-1 (first Championship Value Prediction) trace
  format: records, bit-exact binary encoding, streaming readers/writers and
  trace characterisation.
- :mod:`repro.synth` — a synthetic Aarch64 workload generator that emits
  CVP-1 traces.  It substitutes for the proprietary Qualcomm traces; see
  DESIGN.md for the substitution argument.
- :mod:`repro.champsim` — the ChampSim trace format (64-byte records) and
  ChampSim's branch-type deduction rules, both the original rules and the
  patched rules the paper proposes (Section 3.2.2).
- :mod:`repro.core` — the paper's primary contribution: the ``cvp2champsim``
  converter with the six toggleable improvements of Table 1.
- :mod:`repro.sim` — a ChampSim-like out-of-order timing model (decoupled
  front-end, TAGE/ITTAGE/RAS/BTB, four-level cache hierarchy, data and
  instruction prefetchers including the eight IPC-1 submissions).
- :mod:`repro.experiments` — the harness that regenerates every figure and
  table of the paper's evaluation (Figures 1-5, Tables 1-3).

Quickstart::

    from repro.synth import make_trace
    from repro.core import Improvement, convert_trace
    from repro.sim import Simulator, SimConfig

    records = make_trace("compute_int_0", instructions=20_000)
    converted = convert_trace(records, improvements=Improvement.ALL)
    stats = Simulator(SimConfig.main()).run(converted)
    print(stats.ipc)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
