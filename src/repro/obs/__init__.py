"""repro.obs — metrics, span tracing, and structured event logs.

Off by default: every instrument collapses to a cheap no-op unless the
``REPRO_OBS`` environment variable is truthy or a CLI was run with
``--obs``.  When on, instrumented code records into a process-local
:class:`~repro.obs.metrics.MetricsRegistry` and emits spans/events to a
schema-versioned JSONL log (:mod:`repro.obs.events`); ``repro-obs
summarize`` turns one run's log family into a span tree with attributed
times, counter totals, and histogram percentiles.

Typical instrumentation::

    from repro import obs

    with obs.span("convert.file", path=str(source)) as sp:
        blocks = do_work()
        sp.set(blocks=blocks)
    obs.counter("repro_convert_blocks_total").inc(blocks)

Lifecycle: a CLI calls :func:`setup_cli` once (honouring ``--obs`` or the
environment); :func:`finalize` runs at exit, flushing a final metrics
snapshot into the event log and, if configured, a Prometheus textfile.
Worker processes spawned by :mod:`repro.experiments.parallel` inherit the
environment, write per-worker sibling logs, and hand their registry
snapshots back to the parent after each task.
"""

from __future__ import annotations

import atexit
import os
from pathlib import Path
from typing import Any, Optional, Union

from repro.obs import events, metrics, promfile, state
from repro.obs.instruments import CacheCounters
from repro.obs.logutil import (
    add_logging_flags,
    configure_from_args,
    configure_logging,
    get_logger,
)
from repro.obs.metrics import (
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    registry,
)
from repro.obs.spans import current_span_id, emit_child_span, span

__all__ = [
    "CacheCounters",
    "MetricsRegistry",
    "add_logging_flags",
    "add_obs_flags",
    "configure",
    "configure_from_args",
    "configure_logging",
    "counter",
    "current_span_id",
    "emit_child_span",
    "emit_event",
    "enabled",
    "finalize",
    "gauge",
    "get_logger",
    "histogram",
    "registry",
    "setup_cli",
    "span",
]

enabled = state.enabled
emit_event = events.emit_event

_finalize_registered = False
_finalized = False


def configure(
    log: Optional[Union[str, Path]] = None,
    prom: Optional[Union[str, Path]] = None,
    program: Optional[str] = None,
) -> None:
    """Enable observability for this process and its future workers.

    Writes the configuration into the environment so pool workers
    inherit it, marks this process as the main one (workers derive
    per-worker log files from the PID mismatch), and registers
    :func:`finalize` to run at exit.
    """
    global _finalize_registered, _finalized
    _finalized = False
    if log is not None:
        os.environ[state.LOG_ENV] = str(log)
    if prom is not None:
        os.environ[state.PROM_ENV] = str(prom)
    if program is not None:
        os.environ[state.PROGRAM_ENV] = program
    os.environ[state.MAIN_PID_ENV] = str(os.getpid())
    state.set_enabled(True)
    events.reset_sink()
    if not _finalize_registered:
        atexit.register(finalize)
        _finalize_registered = True


def finalize() -> None:
    """Flush a final metrics snapshot to the sinks (idempotent).

    Appends one ``metrics`` event to the log, rewrites the Prometheus
    textfile if ``REPRO_OBS_PROM`` is set, and closes the sink.  A later
    emit in the same process reopens the log in append mode, so calling
    this early never truncates anything.  Calling it again without an
    intervening :func:`configure` is a no-op — an explicit call plus the
    ``atexit`` hook must not write the snapshot twice (the summariser
    would still dedupe to the last one, but the log should stay clean).
    """
    global _finalized
    if not state.enabled() or _finalized:
        return
    _finalized = True
    snapshot = registry().snapshot()
    has_data = any(
        snapshot[kind] for kind in ("counters", "gauges", "histograms")
    )
    if has_data:
        events.emit_metrics(snapshot)
        prom_path = os.environ.get(state.PROM_ENV)
        if prom_path:
            try:
                promfile.write_textfile(prom_path, snapshot)
            except OSError:  # pragma: no cover - defensive
                get_logger("obs").warning(
                    "could not write Prometheus textfile %s", prom_path
                )
    events.close_sink()


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------

#: Default event-log file when ``--obs`` is passed without ``--obs-log``.
DEFAULT_LOG_NAME = "repro-obs.jsonl"


def add_obs_flags(parser: Any) -> None:
    """Attach ``--obs``/``--obs-log``/``--obs-prom`` to a CLI parser."""
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--obs",
        action="store_true",
        help="enable metrics/span collection (also: REPRO_OBS=1)",
    )
    group.add_argument(
        "--obs-log",
        type=Path,
        default=None,
        metavar="PATH",
        help=f"JSONL event-log path (default: ./{DEFAULT_LOG_NAME})",
    )
    group.add_argument(
        "--obs-prom",
        type=Path,
        default=None,
        metavar="PATH",
        help="also write a Prometheus textfile at exit",
    )


def setup_cli(program: str, args: Any) -> Optional[Path]:
    """Configure obs for a CLI run; returns the log path when enabled.

    Enabled by ``--obs`` or by ``REPRO_OBS`` in the environment.  In a
    worker process (spawned by an already-configured parent) this is a
    no-op — the parent owns the configuration.
    """
    flag = bool(getattr(args, "obs", False))
    if not flag and not state.enabled():
        return None
    if state.is_worker():
        return None
    log = getattr(args, "obs_log", None) or state.log_path()
    if log is None:
        log = Path.cwd() / DEFAULT_LOG_NAME
    configure(
        log=log,
        prom=getattr(args, "obs_prom", None),
        program=program,
    )
    return Path(log)
