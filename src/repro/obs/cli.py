"""``repro-obs`` — inspect JSONL observability logs.

``repro-obs summarize run.jsonl`` aggregates the log (and, by default,
its per-worker ``run.w<pid>.jsonl`` siblings) into a span tree with
self/total times, top counters, histogram percentiles and event counts —
in text or, with ``--json``, as one machine-readable object.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.obs import logutil
from repro.obs.events import ObsLogError, sibling_log_paths
from repro.obs.summarize import aggregate_logs, render_text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Summarize repro observability event logs.",
    )
    logutil.add_logging_flags(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    summarize = sub.add_parser(
        "summarize", help="aggregate one or more JSONL event logs"
    )
    summarize.add_argument(
        "logs",
        nargs="+",
        type=Path,
        help="event-log file(s); per-worker siblings are included "
        "automatically unless --no-workers",
    )
    summarize.add_argument(
        "--json",
        action="store_true",
        help="emit the aggregated summary as JSON",
    )
    summarize.add_argument(
        "--top",
        type=int,
        default=20,
        metavar="N",
        help="rows per section in text output (default: %(default)s)",
    )
    summarize.add_argument(
        "--no-workers",
        action="store_true",
        help="summarize only the named files, not worker siblings",
    )
    return parser


def _expand(paths: Sequence[Path], include_workers: bool) -> List[Path]:
    out: List[Path] = []
    for path in paths:
        family = sibling_log_paths(path) if include_workers else [path]
        for member in family:
            if member not in out:
                out.append(member)
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    logutil.configure_from_args(args)

    logs = _expand(args.logs, include_workers=not args.no_workers)
    missing = [p for p in logs if not p.is_file()]
    if missing:
        for path in missing:
            print(f"repro-obs: no such log: {path}", file=sys.stderr)
        return 2
    try:
        summary = aggregate_logs(logs)
    except ObsLogError as exc:
        print(f"repro-obs: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        sys.stdout.write(render_text(summary, top=args.top))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
