"""Prometheus textfile exporter for registry snapshots.

Renders a snapshot in the Prometheus text exposition format (version
0.0.4) for node-exporter textfile-collector setups: point
``REPRO_OBS_PROM`` at a file under the collector directory and
:func:`repro.obs.finalize` rewrites it atomically at process exit.

Metric names are sanitised (dots and other non-identifier characters
become underscores); histograms expand to the conventional cumulative
``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Any, Dict, List, Union

_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_name(name: str) -> str:
    """A valid Prometheus metric name (``convert.blocks`` -> ``convert_blocks``)."""
    out = _NAME_BAD.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: Dict[str, Any], extra: str = "") -> str:
    parts = [
        f'{_LABEL_BAD.sub("_", str(k))}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def render_snapshot(snapshot: Dict[str, Any]) -> str:
    """The snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    typed: Dict[str, str] = {}

    def header(name: str, kind: str) -> None:
        if typed.get(name) != kind:
            typed[name] = kind
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", ()):
        name = sanitize_name(entry["name"])
        header(name, "counter")
        lines.append(
            f"{name}{_label_str(entry['labels'])} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snapshot.get("gauges", ()):
        name = sanitize_name(entry["name"])
        header(name, "gauge")
        lines.append(
            f"{name}{_label_str(entry['labels'])} "
            f"{_format_value(entry['value'])}"
        )
    for entry in snapshot.get("histograms", ()):
        name = sanitize_name(entry["name"])
        header(name, "histogram")
        labels = entry["labels"]
        cumulative = 0
        for bound, count in zip(entry["bounds"], entry["counts"]):
            cumulative += count
            le = _label_str(labels, f'le="{_format_value(bound)}"')
            lines.append(f"{name}_bucket{le} {cumulative}")
        le = _label_str(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{le} {entry['count']}")
        lines.append(
            f"{name}_sum{_label_str(labels)} {_format_value(entry['sum'])}"
        )
        lines.append(
            f"{name}_count{_label_str(labels)} {entry['count']}"
        )
    return "\n".join(lines) + "\n" if lines else ""


def write_textfile(
    path: Union[str, Path], snapshot: Dict[str, Any]
) -> None:
    """Atomically write the rendered snapshot (textfile-collector safe)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(render_snapshot(snapshot), encoding="utf-8")
    os.replace(tmp, path)
