"""Nested wall-time spans over :mod:`contextvars`.

``span("convert.file", path=...)`` times a region and emits one event-log
record carrying its id, its parent's id (so ``repro-obs`` can rebuild the
tree), wall-clock start, duration and attributes.  Nesting follows the
logical call context — including across threads started inside a span —
because the current parent lives in a :class:`contextvars.ContextVar`.

The disabled path is the whole point of this module's shape: when
:func:`repro.obs.state.enabled` is false, :func:`span` returns one
preallocated no-op singleton whose ``__enter__``/``__exit__`` do nothing,
so instrumented hot loops pay a truthiness check and an attribute lookup,
never an allocation.
"""

from __future__ import annotations

import itertools
import time
from contextvars import ContextVar
from typing import Any, Dict, Optional

from repro.obs import events, state

#: Process-unique span ids (uniqueness per log file is what matters, and
#: each process writes its own file).
_ids = itertools.count(1)

#: Id of the innermost open span in this logical context.
_current: ContextVar[Optional[int]] = ContextVar("repro_obs_span", default=None)


class _NoopSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NOOP = _NoopSpan()


class Span:
    """An open span; use via ``with span(...)`` rather than directly."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "start", "_token")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = next(_ids)
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self._token = None

    def __enter__(self) -> "Span":
        self.parent_id = _current.get()
        self._token = _current.set(self.span_id)
        self.start = time.time()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        duration = time.time() - self.start
        if self._token is not None:
            _current.reset(self._token)
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        events.emit_span(
            self.name,
            self.start,
            duration,
            self.span_id,
            self.parent_id,
            self.attrs or None,
        )

    def set(self, **attrs: Any) -> None:
        """Attach attributes after entry (e.g. counts known only at exit)."""
        self.attrs.update(attrs)


def span(name: str, **attrs: Any):
    """Context manager timing a named region; no-op singleton when disabled."""
    if not state.enabled():
        return _NOOP
    return Span(name, attrs)


def current_span_id() -> Optional[int]:
    """Id of the innermost open span, or None (for hand-built records)."""
    return _current.get()


def emit_child_span(
    name: str,
    start: float,
    duration: float,
    attrs: Optional[Dict[str, Any]] = None,
) -> None:
    """Emit a pre-measured span as a child of the current span.

    For attribution records whose timing was sampled or computed rather
    than measured by a ``with`` block (e.g. per-improvement convert time
    scaled from a staged profile).
    """
    if not state.enabled():
        return
    events.emit_span(
        name, start, duration, next(_ids), _current.get(), attrs or None
    )
