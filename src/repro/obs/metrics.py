"""Process-local metrics: counters, gauges, histograms.

One :class:`MetricsRegistry` per process (module-level ``registry()``),
holding named metric *families*; a family with labels hands out one
child per distinct label set (``family.labels(kind="result")``) and a
family used without labels is its own unlabeled child.  All mutation is
guarded by one registry lock — increments happen at file/block/task
granularity, never per record, so a single coarse lock is plenty.

Snapshots (:meth:`MetricsRegistry.snapshot`) are plain JSON-safe dicts,
picklable across process boundaries: :mod:`repro.experiments.parallel`
workers collect-and-reset their registry after each task and ship the
snapshot back for the parent to :meth:`~MetricsRegistry.merge`, so a
fanned-out sweep ends with one registry describing the whole run.

Histograms use fixed, per-family bucket boundaries (upper bounds, in
whatever unit the metric observes — the defaults suit seconds).
Percentiles are estimated from the bucket counts, which keeps snapshots
tiny and merges exact.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Snapshot payload layout version (folded into event logs).
SNAPSHOT_SCHEMA = 1

#: Default histogram bucket upper bounds (seconds-flavoured).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("labels_kv", "_value", "_lock")

    def __init__(self, labels_kv: LabelItems, lock: threading.Lock):
        self.labels_kv = labels_kv
        self._value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-write-wins value."""

    __slots__ = ("labels_kv", "_value", "_lock")

    def __init__(self, labels_kv: LabelItems, lock: threading.Lock):
        self.labels_kv = labels_kv
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram (counts per bucket + sum + count).

    ``bounds`` are inclusive upper bounds; one extra overflow bucket
    catches everything above the last bound.
    """

    __slots__ = ("labels_kv", "bounds", "counts", "total", "count", "_lock")

    def __init__(
        self,
        labels_kv: LabelItems,
        bounds: Sequence[float],
        lock: threading.Lock,
    ):
        self.labels_kv = labels_kv
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.total += value
            self.count += 1

    def percentile(self, p: float) -> float:
        """Estimated p-th percentile (0..100) from the bucket counts."""
        return histogram_percentile(
            {"bounds": self.bounds, "counts": self.counts, "count": self.count},
            p,
        )


def histogram_percentile(entry: Dict[str, Any], p: float) -> float:
    """Percentile estimate from a snapshot histogram entry.

    Returns the upper bound of the bucket containing the p-th
    observation (the last finite bound for the overflow bucket, 0.0 for
    an empty histogram) — a deliberately simple, merge-stable estimate.
    """
    count = entry["count"]
    if count <= 0:
        return 0.0
    bounds = entry["bounds"]
    rank = max(1, int(round(p / 100.0 * count)))
    seen = 0
    for index, bucket_count in enumerate(entry["counts"]):
        seen += bucket_count
        if seen >= rank:
            if index < len(bounds):
                return float(bounds[index])
            return float(bounds[-1]) if bounds else 0.0
    return float(bounds[-1]) if bounds else 0.0


_KINDS = ("counter", "gauge", "histogram")


class _Family:
    """One named metric plus its per-label-set children."""

    __slots__ = ("kind", "name", "help", "buckets", "_children", "_lock")

    def __init__(
        self,
        kind: str,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Optional[Sequence[float]] = None,
    ):
        self.kind = kind
        self.name = name
        self.help = help_text
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[LabelItems, Any] = {}
        self._lock = lock

    def labels(self, **labels: Any) -> Any:
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.kind == "counter":
                    child = Counter(key, self._lock)
                elif self.kind == "gauge":
                    child = Gauge(key, self._lock)
                else:
                    child = Histogram(
                        key, self.buckets or DEFAULT_BUCKETS, self._lock
                    )
                self._children[key] = child
        return child

    # Unlabeled convenience: the family proxies its ()-labeled child.
    def inc(self, amount: Any = 1) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self) -> Any:
        return self.labels().value

    def children(self) -> List[Any]:
        with self._lock:
            return list(self._children.values())


class MetricsRegistry:
    """Named metric families with snapshot/merge/reset."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _family(
        self,
        kind: str,
        name: str,
        help_text: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(kind, name, help_text, self._lock, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
        return family

    def counter(self, name: str, help: str = "") -> _Family:
        return self._family("counter", name, help)

    def gauge(self, name: str, help: str = "") -> _Family:
        return self._family("gauge", name, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> _Family:
        return self._family("histogram", name, help, buckets)

    def families(self) -> List[_Family]:
        with self._lock:
            return list(self._families.values())

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe, picklable copy of every metric value."""
        counters: List[Dict[str, Any]] = []
        gauges: List[Dict[str, Any]] = []
        histograms: List[Dict[str, Any]] = []
        with self._lock:
            for family in self._families.values():
                for child in family._children.values():
                    labels = {k: v for k, v in child.labels_kv}
                    if family.kind == "counter":
                        counters.append(
                            {
                                "name": family.name,
                                "labels": labels,
                                "value": child.value,
                            }
                        )
                    elif family.kind == "gauge":
                        gauges.append(
                            {
                                "name": family.name,
                                "labels": labels,
                                "value": child.value,
                            }
                        )
                    else:
                        histograms.append(
                            {
                                "name": family.name,
                                "labels": labels,
                                "bounds": list(child.bounds),
                                "counts": list(child.counts),
                                "sum": child.total,
                                "count": child.count,
                            }
                        )
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def collect(self, reset: bool = False) -> Dict[str, Any]:
        """Snapshot, optionally resetting afterwards (worker hand-off)."""
        snap = self.snapshot()
        if reset:
            self.reset()
        return snap

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold one snapshot into the live registry.

        Counters and histograms add; gauges take the snapshot's value
        (last write wins).  Histogram bucket bounds must match the live
        family's bounds.
        """
        if snapshot.get("schema") != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"snapshot schema {snapshot.get('schema')!r} != "
                f"{SNAPSHOT_SCHEMA}"
            )
        for entry in snapshot.get("counters", ()):
            if entry["value"]:
                self.counter(entry["name"]).labels(**entry["labels"]).inc(
                    entry["value"]
                )
        for entry in snapshot.get("gauges", ()):
            self.gauge(entry["name"]).labels(**entry["labels"]).set(
                entry["value"]
            )
        for entry in snapshot.get("histograms", ()):
            child = self.histogram(
                entry["name"], buckets=entry["bounds"]
            ).labels(**entry["labels"])
            if list(child.bounds) != list(entry["bounds"]):
                raise ValueError(
                    f"histogram {entry['name']!r} bucket bounds mismatch"
                )
            with self._lock:
                for index, bucket_count in enumerate(entry["counts"]):
                    child.counts[index] += bucket_count
                child.total += entry["sum"]
                child.count += entry["count"]

    def reset(self) -> None:
        """Forget every family and value."""
        with self._lock:
            self._families.clear()


def merge_snapshots(snapshots: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge snapshot dicts into one (used by ``repro-obs`` aggregation)."""
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge(snap)
    return merged.snapshot()


#: The process-wide registry every instrumentation site uses.
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str, help: str = "") -> _Family:
    """Shorthand for ``registry().counter(...)``."""
    return _REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> _Family:
    return _REGISTRY.gauge(name, help)


def histogram(
    name: str, help: str = "", buckets: Optional[Sequence[float]] = None
) -> _Family:
    return _REGISTRY.histogram(name, help, buckets)
