"""Reusable instruments shared by instrumented subsystems.

:class:`CacheCounters` is the one cache-statistics implementation used by
every repro cache (:class:`~repro.experiments.cache.ResultCache`,
:class:`~repro.experiments.cache.ConversionCache`,
:class:`~repro.analysis.cache.LintCache`).  Each instance keeps plain
integer attributes (``hits``/``misses``/...) because existing callers and
tests read them directly and the ``describe()`` strings they feed are CLI
output contracts — and every increment is mirrored into the global
metrics registry as ``repro_cache_events_total{cache=...,op=...}``, so an
obs snapshot sees all caches uniformly.
"""

from __future__ import annotations

from repro.obs import metrics

#: All cache operations share one family, distinguished by labels.
CACHE_EVENTS_METRIC = "repro_cache_events_total"


def _mirror(cache: str, op: str) -> None:
    # Resolved per increment (not cached at construction) so counters
    # survive a registry reset — parallel workers collect-and-reset the
    # registry between tasks while their cache objects live on.
    metrics.counter(
        CACHE_EVENTS_METRIC, "Cache operations by cache and op."
    ).labels(cache=cache, op=op).inc()


class CacheCounters:
    """hits/misses/stores/store_errors/quarantined, mirrored to metrics."""

    __slots__ = (
        "cache",
        "hits",
        "misses",
        "stores",
        "store_errors",
        "quarantined",
    )

    def __init__(self, cache: str):
        self.cache = cache
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.store_errors = 0
        self.quarantined = 0

    def hit(self) -> None:
        self.hits += 1
        _mirror(self.cache, "hit")

    def miss(self) -> None:
        self.misses += 1
        _mirror(self.cache, "miss")

    def store(self) -> None:
        self.stores += 1
        _mirror(self.cache, "store")

    def store_error(self) -> None:
        self.store_errors += 1
        _mirror(self.cache, "store_error")

    def quarantine(self) -> None:
        self.quarantined += 1
        _mirror(self.cache, "quarantine")

    def describe_hit_miss(self) -> str:
        """The shared ``hits=H misses=M`` prefix every cache reports."""
        return f"hits={self.hits} misses={self.misses}"


class InstrumentedCache:
    """Base for the on-disk caches: one :class:`CacheCounters` + views.

    Subclasses set ``self.counters = CacheCounters(name)`` in their
    ``__init__`` and call ``hit()``/``miss()``/``store()``/
    ``store_error()``; the read-only properties keep the historic
    ``cache.hits`` attribute reads (tests, CLI summaries) working
    unchanged.
    """

    counters: CacheCounters

    @property
    def hits(self) -> int:
        return self.counters.hits

    @property
    def misses(self) -> int:
        return self.counters.misses

    @property
    def stores(self) -> int:
        return self.counters.stores

    @property
    def store_errors(self) -> int:
        return self.counters.store_errors

    @property
    def quarantined(self) -> int:
        return self.counters.quarantined
