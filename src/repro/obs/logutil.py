"""Shared ``logging`` setup for the repro CLIs.

Every module logs under the ``repro.<pkg>`` hierarchy
(``logging.getLogger("repro.core")`` etc.); the CLIs call
:func:`configure_logging` with the net of ``--verbose``/``--quiet``
occurrences.  The default level is WARNING, so CLI stdout stays exactly
what the golden-output tests expect unless the user asks for more.
"""

from __future__ import annotations

import argparse
import logging
from typing import Optional

_FORMAT = "%(levelname)s %(name)s: %(message)s"

#: Net verbosity -> level. verbose raises, quiet lowers.
_LEVELS = {
    -2: logging.CRITICAL,
    -1: logging.ERROR,
    0: logging.WARNING,
    1: logging.INFO,
    2: logging.DEBUG,
}


def get_logger(name: str) -> logging.Logger:
    """Logger under the ``repro`` hierarchy (``get_logger("core")``)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def add_logging_flags(parser: argparse.ArgumentParser) -> None:
    """Attach ``--verbose``/``--quiet`` counters to a CLI parser.

    ``--quiet`` is long-form only: several CLIs already bind short flags
    (and ``repro-convert -v`` predates this module, so ``--verbose``
    reuses its dest — counting occurrences keeps its old truthy meaning).
    """
    group = parser.add_argument_group("logging")
    if not any(
        action.dest == "verbose" for action in parser._actions
    ):  # pragma: no branch
        group.add_argument(
            "-v",
            "--verbose",
            action="count",
            default=0,
            help="increase log verbosity (repeatable: -v INFO, -vv DEBUG)",
        )
    group.add_argument(
        "--quiet",
        action="count",
        default=0,
        help="decrease log verbosity (repeatable)",
    )


def configure_logging(
    verbose: int = 0, quiet: int = 0, logger_name: str = "repro"
) -> int:
    """Set the ``repro`` root logger level from flag counts; returns it."""
    net = max(-2, min(2, int(verbose) - int(quiet)))
    level = _LEVELS[net]
    logger = logging.getLogger(logger_name)
    logger.setLevel(level)
    if not _has_handler(logger):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        logger.addHandler(handler)
        # The repro hierarchy owns its output; don't duplicate through
        # the root logger if an application configured it.
        logger.propagate = False
    return level


def _has_handler(logger: logging.Logger) -> bool:
    return any(
        isinstance(h, logging.StreamHandler) for h in logger.handlers
    )


def configure_from_args(
    args: argparse.Namespace, logger_name: str = "repro"
) -> Optional[int]:
    """Configure from parsed args if the logging flags are present."""
    verbose = getattr(args, "verbose", None)
    quiet = getattr(args, "quiet", None)
    if verbose is None and quiet is None:
        return None
    return configure_logging(
        int(verbose or 0), int(quiet or 0), logger_name
    )
