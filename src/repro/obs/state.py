"""Process-wide observability switches.

The whole obs layer hangs off one boolean: :func:`enabled`.  It is
derived from the ``REPRO_OBS`` environment variable (so worker processes
spawned by :mod:`repro.experiments.parallel` inherit it for free) and
cached after the first read, because instrumented hot paths consult it
per file/block and must not pay ``os.environ`` lookups.

``REPRO_OBS_LOG`` names the JSONL event-log file (see
:mod:`repro.obs.events`); ``REPRO_OBS_MAIN_PID`` records which process
configured observability, so every *other* process (a pool worker)
derives its own per-worker log file and never interleaves appends.
``REPRO_OBS_PROM`` optionally names a Prometheus textfile written at
:func:`repro.obs.finalize` time.
"""

from __future__ import annotations

import os
from typing import Optional

#: Enables the obs layer when set to a truthy value ("1", "true", ...).
OBS_ENV = "REPRO_OBS"
#: JSONL event-log path (main process; workers derive siblings).
LOG_ENV = "REPRO_OBS_LOG"
#: PID of the process that called :func:`repro.obs.configure`.
MAIN_PID_ENV = "REPRO_OBS_MAIN_PID"
#: Optional Prometheus textfile path written at finalize time.
PROM_ENV = "REPRO_OBS_PROM"
#: Optional program name recorded in event-log meta lines.
PROGRAM_ENV = "REPRO_OBS_PROGRAM"

_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Cached enabled flag; ``None`` means "read the environment again".
_cached: Optional[bool] = None


def enabled() -> bool:
    """Whether observability is on for this process (cached)."""
    global _cached
    if _cached is None:
        _cached = os.environ.get(OBS_ENV, "").strip().lower() in _TRUTHY
    return _cached


def refresh() -> None:
    """Drop the cached flag; the next :func:`enabled` re-reads the env."""
    global _cached
    _cached = None


def set_enabled(value: bool) -> None:
    """Set the flag in the environment (inherited by workers) and cache."""
    global _cached
    os.environ[OBS_ENV] = "1" if value else "0"
    _cached = bool(value)


def log_path() -> Optional[str]:
    """Configured event-log path, or None."""
    return os.environ.get(LOG_ENV) or None


def is_worker() -> bool:
    """True in a process other than the one that configured obs."""
    main_pid = os.environ.get(MAIN_PID_ENV)
    return bool(main_pid) and main_pid != str(os.getpid())
