"""Aggregate JSONL event logs into a human-readable summary.

Feeds ``repro-obs summarize``: reads one or more event-log files (a main
log plus its per-worker siblings, or any explicit set), rebuilds the span
tree per file from ``id``/``parent`` links, then merges by *path* — the
chain of span names from the root — so a thousand ``convert.block`` spans
under ``convert.file`` collapse into one line with a count, total time,
and self time (total minus direct children).  Metrics snapshots merge via
:func:`repro.obs.metrics.merge_snapshots`; plain events reduce to
per-name counts.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs import events as events_mod
from repro.obs import metrics as metrics_mod

SpanPath = Tuple[str, ...]


def aggregate_logs(paths: Sequence[Union[str, Path]]) -> Dict[str, Any]:
    """One summary dict over every event in ``paths``.

    Raises :class:`repro.obs.events.ObsLogError` on an unreadable log.
    """
    span_agg: Dict[SpanPath, Dict[str, Any]] = {}
    event_counts: Dict[str, int] = {}
    event_samples: Dict[str, Dict[str, Any]] = {}
    snapshots: List[Dict[str, Any]] = []
    programs: List[str] = []

    for path in paths:
        spans: List[Dict[str, Any]] = []
        last_snapshot: Optional[Dict[str, Any]] = None
        for payload in events_mod.iter_events(path):
            ptype = payload.get("type")
            if ptype == "span":
                spans.append(payload)
            elif ptype == "event":
                name = str(payload.get("name"))
                event_counts[name] = event_counts.get(name, 0) + 1
                if name not in event_samples and payload.get("attrs"):
                    event_samples[name] = payload["attrs"]
            elif ptype == "metrics":
                # Snapshots are cumulative per process: a later one in
                # the same file supersedes (never adds to) earlier ones.
                last_snapshot = payload["snapshot"]
            elif ptype == "meta":
                program = payload.get("program")
                if program:
                    programs.append(str(program))
        if last_snapshot is not None:
            snapshots.append(last_snapshot)
        _fold_spans(spans, span_agg)

    merged = (
        metrics_mod.merge_snapshots(snapshots)
        if snapshots
        else {"schema": metrics_mod.SNAPSHOT_SCHEMA, "counters": [],
              "gauges": [], "histograms": []}
    )
    return {
        "files": [str(p) for p in paths],
        "programs": sorted(set(programs)),
        "spans": _sorted_span_rows(span_agg),
        "events": [
            {
                "name": name,
                "count": count,
                **(
                    {"sample": event_samples[name]}
                    if name in event_samples
                    else {}
                ),
            }
            for name, count in sorted(
                event_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ],
        "counters": sorted(
            merged["counters"], key=lambda e: (-e["value"], e["name"])
        ),
        "gauges": sorted(merged["gauges"], key=lambda e: e["name"]),
        "histograms": [
            {
                "name": entry["name"],
                "labels": entry["labels"],
                "count": entry["count"],
                "sum": entry["sum"],
                "p50": metrics_mod.histogram_percentile(entry, 50),
                "p90": metrics_mod.histogram_percentile(entry, 90),
                "p99": metrics_mod.histogram_percentile(entry, 99),
            }
            for entry in sorted(
                merged["histograms"], key=lambda e: e["name"]
            )
        ],
    }


def _fold_spans(
    spans: Iterable[Dict[str, Any]],
    agg: Dict[SpanPath, Dict[str, Any]],
) -> None:
    """Fold one file's spans into the path-keyed aggregation."""
    spans = list(spans)
    by_id = {s["id"]: s for s in spans}

    # Child durations charge against the parent's self time.
    child_time: Dict[int, float] = {}
    for record in spans:
        parent = record.get("parent")
        if parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) + record["dur"]

    paths: Dict[int, SpanPath] = {}

    def path_of(span_id: int) -> SpanPath:
        cached = paths.get(span_id)
        if cached is not None:
            return cached
        chain: List[str] = []
        seen = set()
        cursor: Optional[int] = span_id
        while cursor is not None and cursor in by_id and cursor not in seen:
            seen.add(cursor)
            record = by_id[cursor]
            chain.append(record["name"])
            cursor = record.get("parent")
        path = tuple(reversed(chain))
        paths[span_id] = path
        return path

    for record in spans:
        path = path_of(record["id"])
        row = agg.get(path)
        if row is None:
            row = agg[path] = {
                "path": list(path),
                "name": path[-1],
                "count": 0,
                "total": 0.0,
                "self": 0.0,
                "estimated": False,
            }
        row["count"] += 1
        row["total"] += record["dur"]
        row["self"] += max(
            0.0, record["dur"] - child_time.get(record["id"], 0.0)
        )
        attrs = record.get("attrs") or {}
        if attrs.get("estimated"):
            row["estimated"] = True


def _sorted_span_rows(
    agg: Dict[SpanPath, Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Rows in tree order: siblings by total time desc, children inline."""
    children: Dict[SpanPath, List[SpanPath]] = {}
    for path in agg:
        children.setdefault(path[:-1], []).append(path)
    for sibs in children.values():
        sibs.sort(key=lambda p: -agg[p]["total"])

    rows: List[Dict[str, Any]] = []

    def visit(path: SpanPath) -> None:
        rows.append(agg[path])
        for child in children.get(path, ()):  # noqa: B023 - no closure reuse
            visit(child)

    for root in children.get((), ()):
        visit(root)
    return rows


def _fmt_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:9.1f}s"
    if value >= 0.1:
        return f"{value:9.3f}s"
    return f"{value * 1e3:8.3f}ms"


def render_text(
    summary: Dict[str, Any], top: int = 20
) -> str:
    """The summary as the ``repro-obs summarize`` text report."""
    lines: List[str] = []
    files = summary.get("files", [])
    programs = summary.get("programs", [])
    suffix = f" program={','.join(programs)}" if programs else ""
    lines.append(f"# {len(files)} log file(s){suffix}")

    spans = summary.get("spans", [])
    if spans:
        lines.append("")
        lines.append("spans (total / self / count):")
        for row in spans:
            depth = len(row["path"]) - 1
            marker = "~" if row.get("estimated") else " "
            lines.append(
                f" {marker}{_fmt_seconds(row['total'])} "
                f"{_fmt_seconds(row['self'])} {row['count']:>8}  "
                f"{'  ' * depth}{row['name']}"
            )
        if any(row.get("estimated") for row in spans):
            lines.append("  (~ = estimated from sampled profiling)")

    counters = summary.get("counters", [])
    if counters:
        lines.append("")
        shown = counters[:top]
        lines.append(f"counters (top {len(shown)} of {len(counters)}):")
        for entry in shown:
            lines.append(
                f"  {entry['value']:>14}  "
                f"{_metric_label(entry['name'], entry['labels'])}"
            )

    gauges = summary.get("gauges", [])
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for entry in gauges[:top]:
            lines.append(
                f"  {entry['value']:>14g}  "
                f"{_metric_label(entry['name'], entry['labels'])}"
            )

    histograms = summary.get("histograms", [])
    if histograms:
        lines.append("")
        lines.append("histograms (count / p50 / p90 / p99):")
        for entry in histograms[:top]:
            lines.append(
                f"  {entry['count']:>10} {_fmt_seconds(entry['p50'])} "
                f"{_fmt_seconds(entry['p90'])} {_fmt_seconds(entry['p99'])}  "
                f"{_metric_label(entry['name'], entry['labels'])}"
            )

    evs = summary.get("events", [])
    if evs:
        lines.append("")
        lines.append("events:")
        for entry in evs[:top]:
            lines.append(f"  {entry['count']:>10}  {entry['name']}")

    if len(lines) == 1:
        lines.append("(no spans, metrics, or events)")
    return "\n".join(lines) + "\n"


def _metric_label(name: str, labels: Dict[str, Any]) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"
