"""Schema-versioned JSONL event log: one JSON object per line.

Every log file begins with a ``meta`` line carrying the schema version;
the remaining lines are ``span``, ``event`` and ``metrics`` records (see
:data:`OBS_SCHEMA`).  A process appends to exactly one file: the process
that configured observability writes the configured path, every other
process (a :mod:`repro.experiments.parallel` worker) writes a
``<stem>.w<pid>.jsonl`` sibling, so concurrent workers never interleave
within a file.  ``repro-obs`` re-aggregates the family of files.

Emission never raises into instrumented code: an unopenable sink turns
the emitters into no-ops (counted nowhere — observability must not take
the pipeline down), and non-JSON attr values fall back to ``str``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Union

from repro.obs import state

#: Event-log layout version; readers reject logs from a newer schema.
OBS_SCHEMA = 1


class ObsLogError(ValueError):
    """An event log that cannot be parsed (bad JSON, newer schema)."""


def worker_log_path(path: Union[str, Path], pid: int) -> Path:
    """Sibling log file for a worker process (``run.jsonl`` -> ``run.w7.jsonl``)."""
    path = Path(path)
    if path.suffix:
        return path.with_name(f"{path.stem}.w{pid}{path.suffix}")
    return path.with_name(f"{path.name}.w{pid}")


def sibling_log_paths(path: Union[str, Path]) -> List[Path]:
    """The log file plus every per-worker sibling that exists on disk."""
    path = Path(path)
    out = [path]
    if path.suffix:
        pattern = f"{path.stem}.w*{path.suffix}"
    else:
        pattern = f"{path.name}.w*"
    out.extend(sorted(p for p in path.parent.glob(pattern) if p != path))
    return out


class EventLog:
    """Append-only JSONL writer for one process."""

    def __init__(self, path: Union[str, Path], mode: str = "w"):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        # Line buffering: every event is flushed as one line, so a
        # crashed process leaves a readable log and forked children
        # never inherit buffered parent bytes.
        self._fh = open(self.path, mode, buffering=1, encoding="utf-8")
        if mode == "w":
            self.write(
                {
                    "type": "meta",
                    "schema": OBS_SCHEMA,
                    "pid": os.getpid(),
                    "time": time.time(),
                    "program": os.environ.get(state.PROGRAM_ENV)
                    or Path(sys.argv[0]).name,
                }
            )

    def write(self, payload: Dict[str, Any]) -> None:
        try:
            line = json.dumps(payload, separators=(",", ":"))
        except (TypeError, ValueError):
            line = json.dumps(payload, separators=(",", ":"), default=str)
        self._fh.write(line + "\n")

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - defensive
            pass


# ----------------------------------------------------------------------
# the process-wide sink
# ----------------------------------------------------------------------

_sink: Optional[EventLog] = None
_sink_pid: Optional[int] = None
_sink_failed = False
#: Paths this process already opened (reopen appends, never truncates).
_opened: Set[str] = set()


def get_sink() -> Optional[EventLog]:
    """The process's event log (lazily opened), or None.

    Detects fork inheritance by PID: a child process inheriting the
    parent's module state drops the inherited handle (without flushing
    or closing it — it is the parent's) and opens its own worker file.
    """
    global _sink, _sink_pid, _sink_failed
    if not state.enabled():
        return None
    pid = os.getpid()
    if _sink is not None and _sink_pid == pid:
        return _sink
    if _sink_failed and _sink_pid == pid:
        return None
    _sink = None
    path = state.log_path()
    if path is None:
        _sink_pid = pid
        _sink_failed = True
        return None
    if state.is_worker():
        path = str(worker_log_path(path, pid))
    mode = "a" if path in _opened else "w"
    try:
        _sink = EventLog(path, mode)
    except OSError:
        _sink_pid = pid
        _sink_failed = True
        return None
    _opened.add(path)
    _sink_pid = pid
    _sink_failed = False
    return _sink


def reset_sink() -> None:
    """Close and forget the current sink (reconfiguration, tests)."""
    global _sink, _sink_pid, _sink_failed
    if _sink is not None and _sink_pid == os.getpid():
        _sink.close()
    _sink = None
    _sink_pid = None
    _sink_failed = False
    _opened.clear()


def close_sink() -> None:
    """Close the sink; a later emit in this process reopens in append mode."""
    global _sink
    if _sink is not None and _sink_pid == os.getpid():
        _sink.close()
    _sink = None


# ----------------------------------------------------------------------
# emitters
# ----------------------------------------------------------------------


def emit_span(
    name: str,
    start: float,
    duration: float,
    span_id: int,
    parent_id: Optional[int],
    attrs: Optional[Dict[str, Any]] = None,
) -> None:
    sink = get_sink()
    if sink is None:
        return
    payload: Dict[str, Any] = {
        "type": "span",
        "name": name,
        "id": span_id,
        "start": start,
        "dur": duration,
    }
    if parent_id is not None:
        payload["parent"] = parent_id
    if attrs:
        payload["attrs"] = attrs
    sink.write(payload)


def emit_event(name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
    sink = get_sink()
    if sink is None:
        return
    payload: Dict[str, Any] = {
        "type": "event",
        "name": name,
        "time": time.time(),
    }
    if attrs:
        payload["attrs"] = attrs
    sink.write(payload)


def emit_metrics(snapshot: Dict[str, Any]) -> None:
    sink = get_sink()
    if sink is None:
        return
    sink.write({"type": "metrics", "time": time.time(), "snapshot": snapshot})


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------


def iter_events(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield every event in one log file, validating the schema.

    Raises :class:`ObsLogError` on malformed JSON or a ``meta`` line
    from a newer schema than this reader understands.
    """
    path = Path(path)
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as exc:
                raise ObsLogError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            if not isinstance(payload, dict):
                raise ObsLogError(f"{path}:{lineno}: event is not an object")
            if payload.get("type") == "meta":
                schema = payload.get("schema")
                if not isinstance(schema, int) or schema > OBS_SCHEMA:
                    raise ObsLogError(
                        f"{path}:{lineno}: schema {schema!r} is newer than "
                        f"supported schema {OBS_SCHEMA}"
                    )
            yield payload
