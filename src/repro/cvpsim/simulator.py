"""A simplified CVP-1 championship simulator.

Walks CVP-1 records directly (no conversion) with a dataflow timing model
in the style of the championship infrastructure: a fetch-width-limited
in-order front end, a dependency-driven out-of-order window, per-class
execution latencies, a small data cache for loads, and a value predictor
consulted for every value-producing instruction.

Two fidelity knobs mirror the history the paper recounts:

- ``base_update_fix`` — off reproduces the CVP-1 simulator's flaw (every
  output register of a load becomes ready when the *memory access*
  completes, including an updated base register); on applies the CVP-2
  patch (base-register outputs are ready at ALU latency).
- value prediction breaks dependences when a confident prediction is
  correct, and costs a flush when a confident prediction is wrong —
  the championship's figure of merit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.cvp.addrmode import infer_addressing
from repro.cvp.isa import InstClass
from repro.cvp.reader import CvpTraceReader
from repro.cvp.record import CvpRecord
from repro.cvpsim.predictors import NoPredictor, ValuePredictor
from repro.sim.cache.cache import Cache


@dataclass
class CvpSimStats:
    """Championship statistics."""

    instructions: int = 0
    cycles: int = 0

    #: Value-producing instructions eligible for prediction.
    eligible: int = 0
    #: Predictions issued above the confidence threshold.
    confident: int = 0
    correct: int = 0
    incorrect: int = 0

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def coverage(self) -> float:
        """Confident predictions / eligible instructions."""
        if self.eligible == 0:
            return 0.0
        return self.confident / self.eligible

    @property
    def accuracy(self) -> float:
        """Correct / confident predictions."""
        if self.confident == 0:
            return 0.0
        return self.correct / self.confident

    def summary(self) -> str:
        return (
            f"instructions: {self.instructions}\n"
            f"cycles:       {self.cycles}\n"
            f"IPC:          {self.ipc:.3f}\n"
            f"VP coverage:  {100 * self.coverage:.1f}%  "
            f"accuracy: {100 * self.accuracy:.1f}%  "
            f"(+{self.correct} correct / -{self.incorrect} flushes)"
        )


#: Execution latency per CVP-1 instruction class (loads add cache time).
_CLASS_LATENCY = {
    InstClass.ALU: 1,
    InstClass.SLOW_ALU: 4,
    InstClass.FP: 3,
    InstClass.LOAD: 0,  # cache latency added separately
    InstClass.STORE: 1,
    InstClass.COND_BRANCH: 1,
    InstClass.UNCOND_DIRECT_BRANCH: 1,
    InstClass.UNCOND_INDIRECT_BRANCH: 1,
    InstClass.UNDEF: 1,
}


class CvpSimulator:
    """The championship harness.

    Args:
        predictor: The value predictor under test (default: none).
        base_update_fix: Apply the CVP-2 latency patch for base-register
            outputs of memory instructions.
        fetch_width: Instructions fetched per cycle.
        window: Dependency window (instructions in flight).
        flush_penalty: Cycles lost per value misprediction.
    """

    def __init__(
        self,
        predictor: Optional[ValuePredictor] = None,
        base_update_fix: bool = False,
        fetch_width: int = 8,
        window: int = 256,
        flush_penalty: int = 12,
        l1d_latency: int = 5,
        dram_latency: int = 150,
    ):
        self.predictor = predictor or NoPredictor()
        self.base_update_fix = base_update_fix
        self.fetch_width = fetch_width
        self.window = window
        self.flush_penalty = flush_penalty
        self.dram_latency = dram_latency
        self._l1d = Cache(48 * 1024, 12, l1d_latency, name="L1D")
        self._l2 = Cache(1024 * 1024, 16, 20, name="L2")

    def _load_latency(self, address: int) -> int:
        if self._l1d.lookup(address):
            return self._l1d.latency
        if self._l2.lookup(address):
            self._l1d.fill(address)
            return self._l2.latency
        self._l2.fill(address)
        self._l1d.fill(address)
        return self.dram_latency

    def run(self, records: Iterable[CvpRecord]) -> CvpSimStats:
        """Simulate a trace; return championship statistics."""
        stats = CvpSimStats()
        predictor = self.predictor
        threshold = predictor.CONFIDENCE_THRESHOLD
        reg_ready: Dict[int, int] = {}
        window_retires: list = []

        fetch_cycle = 0
        fetched_in_cycle = 0
        last_complete = 0

        reader = (
            records
            if isinstance(records, CvpTraceReader)
            else CvpTraceReader(records)
        )
        for index, record in enumerate(reader):
            # ------------------------------------------------ front end
            fetched_in_cycle += 1
            if fetched_in_cycle > self.fetch_width:
                fetch_cycle += 1
                fetched_in_cycle = 1
            issue_floor = fetch_cycle
            if len(window_retires) >= self.window:
                issue_floor = max(issue_floor, window_retires[index % self.window])

            # ------------------------------------------- value predict
            prediction = None
            predicted_correct = False
            primary_value: Optional[int] = None
            if record.dst_regs:
                stats.eligible += 1
                primary_value = record.dst_values[0]
                prediction = predictor.predict(record.pc)
                if prediction is not None and prediction.confidence >= threshold:
                    stats.confident += 1
                    if prediction.value == primary_value:
                        predicted_correct = True
                        stats.correct += 1
                    else:
                        stats.incorrect += 1
                        fetch_cycle += self.flush_penalty

            # ------------------------------------------------- execute
            ready = issue_floor
            for reg in record.src_regs:
                t = reg_ready.get(reg, 0)
                if t > ready:
                    ready = t
            latency = _CLASS_LATENCY[record.inst_class]
            if record.is_load:
                latency += self._load_latency(record.mem_address or 0)
            elif record.is_store:
                self._load_latency(record.mem_address or 0)
            complete = ready + max(1, latency)

            # -------------------------------------------- write back
            base_reg = None
            if self.base_update_fix and record.is_memory:
                info = infer_addressing(record, reader.registers)
                if info.is_base_update:
                    base_reg = info.base_reg
            for position, reg in enumerate(record.dst_regs):
                if predicted_correct and position == 0:
                    # A correct confident prediction makes the value
                    # available as soon as the instruction issues.
                    reg_ready[reg] = issue_floor
                elif reg == base_reg:
                    # CVP-2 patch: the base register is produced by the
                    # address ALU, not by the memory access.
                    reg_ready[reg] = ready + 1
                else:
                    reg_ready[reg] = complete
            if primary_value is not None:
                predictor.train(record.pc, primary_value)

            # ---------------------------------------------- retire
            if complete > last_complete:
                last_complete = complete
            if len(window_retires) < self.window:
                window_retires.append(complete)
            else:
                window_retires[index % self.window] = complete

            stats.instructions += 1
            reader.commit(record)

        stats.cycles = max(1, last_complete)
        return stats
