"""Value predictors in the CVP-1 mould.

The championship interface is per-instruction: the predictor sees the PC
(and optionally the instruction class), may return a predicted 64-bit
output value with a confidence, and is trained with the actual value at
commit.  Mispredicting is costly (a pipeline flush in the championship's
model), so predictors only speak when confident.

Implemented predictors:

- :class:`LastValuePredictor` — predict the previous value of the same
  static instruction;
- :class:`StridePredictor` — predict ``last + stride`` once the stride
  repeats (catches induction variables and base-update pointers);
- :class:`ContextPredictor` — an order-N finite-context-method (FCM)
  predictor hashing the last values' history;
- :class:`CompositePredictor` — an EVES-flavoured composite that asks the
  stride component first and falls back to the context component, each
  gated by its own confidence.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

_U64 = (1 << 64) - 1


@dataclass(frozen=True)
class Prediction:
    """A speculative value plus the predictor's confidence (0..15)."""

    value: int
    confidence: int


class ValuePredictor(abc.ABC):
    """The championship predictor interface."""

    #: Confidence needed before the simulator uses the prediction.
    CONFIDENCE_THRESHOLD = 8

    @abc.abstractmethod
    def predict(self, pc: int) -> Optional[Prediction]:
        """Predicted output value for the instruction at ``pc``."""

    @abc.abstractmethod
    def train(self, pc: int, actual: int) -> None:
        """Commit-time training with the actual produced value."""


class NoPredictor(ValuePredictor):
    """Baseline: never predicts."""

    def predict(self, pc: int) -> Optional[Prediction]:
        return None

    def train(self, pc: int, actual: int) -> None:
        pass


class LastValuePredictor(ValuePredictor):
    """Predict the previous value; confidence saturates on repeats."""

    def __init__(self, table_size: int = 8192):
        self._table: OrderedDict = OrderedDict()
        self._table_size = table_size

    def predict(self, pc: int) -> Optional[Prediction]:
        entry = self._table.get(pc)
        if entry is None:
            return None
        value, confidence = entry
        return Prediction(value=value, confidence=confidence)

    def train(self, pc: int, actual: int) -> None:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self._table_size:
                self._table.popitem(last=False)
            self._table[pc] = [actual, 0]
            return
        self._table.move_to_end(pc)
        if entry[0] == actual:
            entry[1] = min(15, entry[1] + 1)
        else:
            entry[0] = actual
            entry[1] = 0


class StridePredictor(ValuePredictor):
    """Predict ``last + stride`` with stride-confirmation confidence.

    This is the predictor class that covers base-update pointers and loop
    induction variables — the values whose *latency* the CVP-1 simulator
    mis-modelled (paper introduction).
    """

    def __init__(self, table_size: int = 8192):
        self._table: OrderedDict = OrderedDict()
        self._table_size = table_size

    def predict(self, pc: int) -> Optional[Prediction]:
        entry = self._table.get(pc)
        if entry is None:
            return None
        last, stride, confidence = entry
        return Prediction(value=(last + stride) & _U64, confidence=confidence)

    def train(self, pc: int, actual: int) -> None:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self._table_size:
                self._table.popitem(last=False)
            self._table[pc] = [actual, 0, 0]
            return
        self._table.move_to_end(pc)
        last, stride, confidence = entry
        new_stride = (actual - last) & _U64
        if new_stride == stride:
            confidence = min(15, confidence + 1)
        else:
            confidence = 0
        entry[0], entry[1], entry[2] = actual, new_stride, confidence


class ContextPredictor(ValuePredictor):
    """Order-N finite context method: value history hash → next value."""

    def __init__(self, order: int = 4, table_size: int = 16384):
        self._order = order
        #: pc -> rolling signature of the last N values
        self._signatures: OrderedDict = OrderedDict()
        #: (pc, signature) -> [value, confidence]
        self._values: OrderedDict = OrderedDict()
        self._table_size = table_size

    def _signature(self, pc: int) -> int:
        return self._signatures.get(pc, 0)

    def predict(self, pc: int) -> Optional[Prediction]:
        key = (pc, self._signature(pc))
        entry = self._values.get(key)
        if entry is None:
            return None
        return Prediction(value=entry[0], confidence=entry[1])

    def train(self, pc: int, actual: int) -> None:
        signature = self._signature(pc)
        key = (pc, signature)
        entry = self._values.get(key)
        if entry is None:
            if len(self._values) >= self._table_size:
                self._values.popitem(last=False)
            self._values[key] = [actual, 0]
        else:
            self._values.move_to_end(key)
            if entry[0] == actual:
                entry[1] = min(15, entry[1] + 1)
            else:
                entry[0] = actual
                entry[1] = 0
        # Roll the signature (shift-xor over the value's low bits).
        rolled = ((signature << 7) ^ (actual & 0xFFFF) ^ (actual >> 16 & 0xFF)) & (
            (1 << (7 * self._order)) - 1
        )
        if pc not in self._signatures and len(self._signatures) >= self._table_size:
            self._signatures.popitem(last=False)
        self._signatures[pc] = rolled
        self._signatures.move_to_end(pc)


class CompositePredictor(ValuePredictor):
    """EVES-flavoured composite: stride first, context as fallback."""

    def __init__(self):
        self.stride = StridePredictor()
        self.context = ContextPredictor()

    def predict(self, pc: int) -> Optional[Prediction]:
        stride = self.stride.predict(pc)
        if stride is not None and stride.confidence >= self.CONFIDENCE_THRESHOLD:
            return stride
        context = self.context.predict(pc)
        if context is not None and context.confidence >= self.CONFIDENCE_THRESHOLD:
            return context
        # Neither confident: surface the stronger hint (for statistics).
        candidates = [p for p in (stride, context) if p is not None]
        if not candidates:
            return None
        return max(candidates, key=lambda p: p.confidence)

    def train(self, pc: int, actual: int) -> None:
        self.stride.train(pc, actual)
        self.context.train(pc, actual)


def make_value_predictor(name: str) -> ValuePredictor:
    """Build a value predictor from its registry name."""
    registry = {
        "none": NoPredictor,
        "last-value": LastValuePredictor,
        "stride": StridePredictor,
        "context": ContextPredictor,
        "composite": CompositePredictor,
    }
    if name not in registry:
        raise ValueError(
            f"unknown value predictor {name!r}; known: {sorted(registry)}"
        )
    return registry[name]()
