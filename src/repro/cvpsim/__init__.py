"""The CVP-1 championship simulator substrate.

The CVP-1 traces exist because of the first Championship Value Prediction:
contestants plugged value predictors into a simple simulator that walks a
trace, asks for a prediction of every instruction's output value, and
models the speedup of correct predictions.  This subpackage reimplements
that infrastructure:

- :mod:`repro.cvpsim.predictors` — classic value predictors (last value,
  stride, finite context method, and a small EVES-style composite);
- :mod:`repro.cvpsim.simulator` — the championship harness: accuracy,
  coverage, and a simplified execution-time model.

It also reproduces the *fidelity flaw* the paper's introduction documents
(and which CVP-2 patched): the CVP-1 trace format attaches latency to the
*instruction*, not to each output register, so the updated base register
of a pre/post-indexed load appears to become ready only when the memory
access completes.  :class:`~repro.cvpsim.simulator.CvpSimulator` models
both behaviours (``base_update_fix`` off = CVP-1, on = CVP-2), letting
the repository quantify the very inaccuracy that motivated the paper's
``base-update`` converter improvement from the value-prediction side.
"""

from repro.cvpsim.predictors import (
    LastValuePredictor,
    StridePredictor,
    ContextPredictor,
    CompositePredictor,
    NoPredictor,
    make_value_predictor,
)
from repro.cvpsim.simulator import CvpSimulator, CvpSimStats

__all__ = [
    "LastValuePredictor",
    "StridePredictor",
    "ContextPredictor",
    "CompositePredictor",
    "NoPredictor",
    "make_value_predictor",
    "CvpSimulator",
    "CvpSimStats",
]
