"""Input rules: ISA consistency of raw CVP-1 records (``TL0xx``).

These rules validate the *input* side of the conversion — the properties
a well-formed Aarch64 CVP-1 trace must satisfy before any converter
decision is made.  They catch corrupted or mis-synthesised traces (and
trace-generator regressions) the way the conversion rules catch
converter regressions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import InputRule, register
from repro.cvp.addrmode import is_dc_zva
from repro.cvp.isa import (
    CACHELINE_SIZE,
    LINK_REGISTER,
    MAX_TRANSFER_SIZE,
    InstClass,
)
from repro.cvp.record import CvpRecord

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.engine import RuleContext

#: Aarch64 instructions are 4 bytes; every PC and branch target must be
#: 4-byte aligned.
_INSTR_ALIGN = 4


@register
class RegisterCountRule(InputRule):
    """Per-class register-count plausibility (Aarch64 ISA envelope)."""

    rule_id = "TL001"
    severity = Severity.ERROR
    title = "register counts implausible for the instruction class"
    paper_section = "2"

    def check(
        self, record: CvpRecord, ctx: "RuleContext"
    ) -> Iterator[Diagnostic]:
        n_src = len(record.src_regs)
        n_dst = len(record.dst_regs)
        cls = record.inst_class

        if cls is InstClass.COND_BRANCH:
            if n_dst:
                yield self.diag(
                    ctx,
                    record,
                    f"conditional branch writes {n_dst} register(s); "
                    "Aarch64 conditional branches write none",
                )
            if n_src > 2:
                yield self.diag(
                    ctx,
                    record,
                    f"conditional branch reads {n_src} registers; "
                    "cb(n)z/tb(n)z read at most one",
                    severity=Severity.WARNING,
                )
        elif cls is InstClass.UNCOND_DIRECT_BRANCH:
            if any(reg != LINK_REGISTER for reg in record.dst_regs):
                yield self.diag(
                    ctx,
                    record,
                    "direct branch writes a register other than the link "
                    f"register X{LINK_REGISTER}",
                )
            if n_src:
                yield self.diag(
                    ctx,
                    record,
                    f"direct branch reads {n_src} register(s); B/BL read none",
                    severity=Severity.WARNING,
                )
        elif cls is InstClass.UNCOND_INDIRECT_BRANCH:
            if not n_src:
                yield self.diag(
                    ctx,
                    record,
                    "indirect branch without a source register; "
                    "BR/BLR/RET must read their target from a register",
                )
            elif n_src > 1:
                yield self.diag(
                    ctx,
                    record,
                    f"indirect branch reads {n_src} registers; "
                    "BR/BLR/RET read exactly one",
                    severity=Severity.WARNING,
                )
            if any(reg != LINK_REGISTER for reg in record.dst_regs):
                yield self.diag(
                    ctx,
                    record,
                    "indirect branch writes a register other than the link "
                    f"register X{LINK_REGISTER}",
                )
        elif cls is InstClass.LOAD:
            if n_dst > 5:
                yield self.diag(
                    ctx,
                    record,
                    f"load writes {n_dst} registers; even LD4 with a base "
                    "update writes at most 5",
                    severity=Severity.WARNING,
                )
            if not n_src:
                yield self.diag(
                    ctx,
                    record,
                    "load without an address source register "
                    "(PC-relative literal load?)",
                    severity=Severity.INFO,
                )
        elif cls is InstClass.STORE:
            if not n_src:
                yield self.diag(
                    ctx,
                    record,
                    "store without source registers; stores must read at "
                    "least an address or data register",
                )
            if n_dst > 2:
                yield self.diag(
                    ctx,
                    record,
                    f"store writes {n_dst} registers; only a base update "
                    "and/or a store-exclusive status write are plausible",
                    severity=Severity.WARNING,
                )
        else:  # ALU / SLOW_ALU / FP / UNDEF
            if n_dst > 2:
                yield self.diag(
                    ctx,
                    record,
                    f"{cls.name} instruction writes {n_dst} registers",
                    severity=Severity.WARNING,
                )


@register
class AddressingPlausibilityRule(InputRule):
    """Memory transfer sizes and effective addresses must be plausible."""

    rule_id = "TL002"
    severity = Severity.ERROR
    title = "implausible memory transfer size or effective address"
    paper_section = "3.1.3"

    def check(
        self, record: CvpRecord, ctx: "RuleContext"
    ) -> Iterator[Diagnostic]:
        if not record.is_memory:
            return
        size = record.mem_size
        if size <= 0:
            yield self.diag(
                ctx, record, "memory access with zero transfer size"
            )
            return
        if record.is_load and size > MAX_TRANSFER_SIZE:
            yield self.diag(
                ctx,
                record,
                f"load transfer size {size} exceeds the largest register "
                f"({MAX_TRANSFER_SIZE}B SIMD Q register)",
            )
        if (
            record.is_store
            and size > MAX_TRANSFER_SIZE
            and size != CACHELINE_SIZE
        ):
            yield self.diag(
                ctx,
                record,
                f"store transfer size {size} is neither a register size "
                f"(<= {MAX_TRANSFER_SIZE}) nor DC ZVA ({CACHELINE_SIZE})",
            )
        if size & (size - 1):
            yield self.diag(
                ctx,
                record,
                f"transfer size {size} is not a power of two",
                severity=Severity.WARNING,
            )
        if record.mem_address == 0:
            yield self.diag(
                ctx,
                record,
                "null effective address",
                severity=Severity.WARNING,
            )
        elif is_dc_zva(record) and record.mem_address % CACHELINE_SIZE:
            # Real CVP-1 traces carry the *unaligned* address here; the
            # converter must align it (paper Section 3.1.3).  Informational
            # on the input side; TL103 enforces the converted output.
            yield self.diag(
                ctx,
                record,
                f"DC ZVA effective address {record.mem_address:#x} is not "
                "cacheline-aligned; the converter must align it",
                severity=Severity.INFO,
            )


@register
class PcValidityRule(InputRule):
    """PCs and branch targets must be non-null and 4-byte aligned."""

    rule_id = "TL003"
    severity = Severity.ERROR
    title = "invalid PC or branch target"
    paper_section = "2"

    def check(
        self, record: CvpRecord, ctx: "RuleContext"
    ) -> Iterator[Diagnostic]:
        if record.pc == 0:
            yield self.diag(ctx, record, "record with a null PC")
        elif record.pc % _INSTR_ALIGN:
            yield self.diag(
                ctx,
                record,
                f"PC {record.pc:#x} is not {_INSTR_ALIGN}-byte aligned "
                "(Aarch64 instructions are fixed-width)",
            )
        if record.branch_taken and record.branch_target is not None:
            if record.branch_target == 0:
                yield self.diag(ctx, record, "taken branch with null target")
            elif record.branch_target % _INSTR_ALIGN:
                yield self.diag(
                    ctx,
                    record,
                    f"branch target {record.branch_target:#x} is not "
                    f"{_INSTR_ALIGN}-byte aligned",
                )


@register
class ControlFlowContinuityRule(InputRule):
    """Consecutive records must agree with the previous record's outcome.

    A taken branch must be followed by its target; a *not*-taken
    conditional branch must fall through to ``pc + 4``.  (Non-branch
    records carry no such guarantee in CVP-1: the traces elide
    instructions, so straight-line PC gaps are normal.)
    """

    rule_id = "TL004"
    severity = Severity.ERROR
    title = "control-flow discontinuity after a branch"
    paper_section = "2"

    def check(
        self, record: CvpRecord, ctx: "RuleContext"
    ) -> Iterator[Diagnostic]:
        prev = ctx.previous
        if prev is None or not prev.is_branch:
            return
        if prev.branch_taken and prev.branch_target is not None:
            if record.pc != prev.branch_target:
                yield self.diag(
                    ctx,
                    record,
                    f"taken branch at {prev.pc:#x} targets "
                    f"{prev.branch_target:#x} but the next record is at "
                    f"{record.pc:#x}",
                )
        elif not prev.branch_taken and record.pc != prev.pc + _INSTR_ALIGN:
            yield self.diag(
                ctx,
                record,
                f"not-taken branch at {prev.pc:#x} must fall through to "
                f"{prev.pc + _INSTR_ALIGN:#x} but the next record is at "
                f"{record.pc:#x}",
            )
