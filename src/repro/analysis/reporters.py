"""Text and JSON rendering of lint reports for the ``repro-lint`` CLI."""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.analysis.cache import report_to_dict
from repro.analysis.diagnostics import Severity
from repro.analysis.engine import LintReport, LintSummary


def render_text(reports: Sequence[LintReport]) -> str:
    """GCC-style one-diagnostic-per-line text report with a summary."""
    lines: List[str] = []
    for report in reports:
        for diagnostic in sorted(
            report.diagnostics, key=lambda d: (d.index, d.rule_id)
        ):
            lines.append(diagnostic.render())
        lines.append(report.describe())
    summary = LintSummary(reports=list(reports))
    infos = sum(r.count(Severity.INFO) for r in reports)
    lines.append(
        f"[lint {len(reports)} trace(s): errors={summary.errors} "
        f"warnings={summary.warnings} infos={infos}]"
    )
    return "\n".join(lines)


def render_json(reports: Sequence[LintReport]) -> str:
    """Machine-readable report (stable schema for CI consumption)."""
    summary = LintSummary(reports=list(reports))
    payload = {
        "version": 1,
        "reports": [
            {
                **report_to_dict(report),
                "from_cache": report.from_cache,
                "suppressed": report.suppressed,
                "errors": report.errors,
                "warnings": report.warnings,
            }
            for report in reports
        ],
        "summary": {
            "traces": len(list(reports)),
            "errors": summary.errors,
            "warnings": summary.warnings,
            "exit_code": summary.exit_code(),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """Human-readable rule listing for ``repro-lint --list-rules``."""
    from repro.analysis.engine import rule_catalog

    lines = []
    for entry in rule_catalog():
        lines.append(
            f"{entry['rule_id']}  {entry['severity']:<7}  "
            f"[paper §{entry['paper_section']}]  {entry['title']}"
        )
    return "\n".join(lines)
