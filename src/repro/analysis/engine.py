"""The trace-lint engine: stream records through rules and the converter.

:class:`TraceLinter` drives one pass over a CVP-1 trace.  For every
record it (1) runs the input rules on the raw record, (2) converts the
record through a real :class:`~repro.core.convert.Converter` configured
with the requested improvement set, (3) runs the conversion rules on the
(record, emitted instructions) pair, and (4) commits the record's output
values into the tracked register file — exactly the order the converter
itself uses, so addressing-mode inference sees identical register state.

Because the conversion rules recompute ground truth from the *input*
record, linting a conversion with an improvement disabled surfaces the
corresponding paper bug as diagnostics; linting with every improvement
enabled must be clean (the CI gate over the golden fixtures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import (
    ConversionRule,
    InputRule,
    Rule,
    resolve_rules,
)
from repro.champsim.branch_info import BranchRules
from repro.core.convert import Converter
from repro.core.improvements import Improvement, improvement_name
from repro.cvp.addrmode import AddressingInfo, infer_addressing
from repro.cvp.reader import CvpTraceReader, RegisterFile
from repro.cvp.record import CvpRecord


@dataclass
class RuleContext:
    """Per-record state shared by every rule.

    ``registers`` always holds the *pre-execution* register file of the
    current record; :meth:`addressing` memoises the addressing-mode
    inference so several rules share one computation per record.
    """

    trace: str
    index: int
    improvements: Improvement
    branch_rules: BranchRules
    registers: RegisterFile
    previous: Optional[CvpRecord] = None
    _addressing: Optional[AddressingInfo] = None
    _addressing_for: Optional[CvpRecord] = None

    def addressing(self, record: CvpRecord) -> AddressingInfo:
        """Addressing-mode inference for ``record`` (cached per record)."""
        if self._addressing is None or self._addressing_for is not record:
            self._addressing = infer_addressing(record, self.registers)
            self._addressing_for = record
        return self._addressing


@dataclass
class LintReport:
    """Outcome of linting one trace."""

    trace: str
    improvements: Improvement
    branch_rules: BranchRules
    records: int
    diagnostics: List[Diagnostic]
    #: IDs of the rules that ran (selection-dependent; part of the cache key).
    rule_ids: Tuple[str, ...]
    #: True when the report was replayed from the lint cache.
    from_cache: bool = False
    #: Diagnostics suppressed by a baseline file (counted, not listed).
    suppressed: int = 0

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> int:
        return self.count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self.count(Severity.WARNING)

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def fired_rule_ids(self) -> Tuple[str, ...]:
        return tuple(sorted({d.rule_id for d in self.diagnostics}))

    def describe(self) -> str:
        """One-line summary for CLI output."""
        cached = " (cached)" if self.from_cache else ""
        suppressed = (
            f" suppressed={self.suppressed}" if self.suppressed else ""
        )
        return (
            f"{self.trace}: {self.records} records, "
            f"errors={self.errors} warnings={self.warnings} "
            f"infos={self.count(Severity.INFO)}{suppressed} "
            f"[{improvement_name(self.improvements)}, "
            f"{self.branch_rules.value} rules]{cached}"
        )


@dataclass
class LintSummary:
    """Aggregate of several per-trace reports (the CLI's exit status)."""

    reports: List[LintReport] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(report.errors for report in self.reports)

    @property
    def warnings(self) -> int:
        return sum(report.warnings for report in self.reports)

    @property
    def max_severity(self) -> Optional[Severity]:
        severities = [
            report.max_severity
            for report in self.reports
            if report.max_severity is not None
        ]
        return max(severities) if severities else None

    def exit_code(self) -> int:
        """0 clean/info, 1 warnings, 2 errors."""
        worst = self.max_severity
        if worst is None or worst is Severity.INFO:
            return 0
        return 2 if worst is Severity.ERROR else 1


def resolve_branch_rules(
    spec: Union[str, BranchRules], improvements: Improvement
) -> BranchRules:
    """Resolve a ``--branch-rules`` spec against an improvement set.

    ``"auto"`` picks the rule set a converter with ``improvements`` would
    require (PATCHED once BRANCH_REGS is active, per Section 3.2.2).
    """
    if isinstance(spec, BranchRules):
        return spec
    if spec == "auto":
        return Converter(improvements).required_branch_rules
    return BranchRules(spec)


class TraceLinter:
    """Lint CVP-1 traces against the registered rule set.

    Args:
        improvements: Improvement set the lockstep conversion applies
            (default: all six fixes — the clean configuration).
        rules: Rule instances to run; default is every registered rule.
        branch_rules: ChampSim deduction rule set for the ``TL2xx``
            family — ``"auto"``, ``"original"``, ``"patched"``, or a
            :class:`BranchRules` value.
    """

    def __init__(
        self,
        improvements: Improvement = Improvement.ALL,
        rules: Optional[Sequence[Rule]] = None,
        branch_rules: Union[str, BranchRules] = "auto",
    ):
        self.improvements = improvements
        self.branch_rules = resolve_branch_rules(branch_rules, improvements)
        all_rules = list(rules) if rules is not None else resolve_rules()
        self.input_rules: List[InputRule] = [
            rule for rule in all_rules if isinstance(rule, InputRule)
        ]
        self.conversion_rules: List[ConversionRule] = [
            rule for rule in all_rules if isinstance(rule, ConversionRule)
        ]
        self.rule_ids: Tuple[str, ...] = tuple(
            sorted(rule.rule_id for rule in all_rules)
        )

    def lint_records(
        self,
        source: Union[CvpTraceReader, Iterable[CvpRecord]],
        trace: str = "<memory>",
    ) -> LintReport:
        """Lint a record stream; returns the per-trace report."""
        from repro import obs

        reader = (
            source
            if isinstance(source, CvpTraceReader)
            else CvpTraceReader(source)
        )
        converter = Converter(self.improvements)
        diagnostics: List[Diagnostic] = []
        previous: Optional[CvpRecord] = None
        count = 0
        with obs.span("lint.records", trace=trace) as lint_span:
            for index, record in enumerate(reader):
                ctx = RuleContext(
                    trace=trace,
                    index=index,
                    improvements=self.improvements,
                    branch_rules=self.branch_rules,
                    registers=reader.registers,
                    previous=previous,
                )
                for input_rule in self.input_rules:
                    diagnostics.extend(input_rule.check(record, ctx))
                if self.conversion_rules:
                    instrs = converter.convert_record(record, reader.registers)
                    for conversion_rule in self.conversion_rules:
                        diagnostics.extend(
                            conversion_rule.check(record, instrs, ctx)
                        )
                reader.commit(record)
                previous = record
                count += 1
            lint_span.set(records=count, diagnostics=len(diagnostics))
        if obs.enabled():
            obs.counter(
                "repro_lint_records_total", "Records linted."
            ).inc(count)
            fires = obs.counter(
                "repro_lint_rule_fires_total",
                "Diagnostics emitted, by rule ID.",
            )
            by_rule: Dict[str, int] = {}
            for diagnostic in diagnostics:
                by_rule[diagnostic.rule_id] = (
                    by_rule.get(diagnostic.rule_id, 0) + 1
                )
            for rule_id, fired in by_rule.items():
                fires.labels(rule=rule_id).inc(fired)
        return LintReport(
            trace=trace,
            improvements=self.improvements,
            branch_rules=self.branch_rules,
            records=count,
            diagnostics=diagnostics,
            rule_ids=self.rule_ids,
        )

    def lint_file(
        self, path: Union[str, Path], trace: Optional[str] = None
    ) -> LintReport:
        """Lint a CVP-1 trace file (``.gz`` handled transparently)."""
        path = Path(path)
        name = trace if trace is not None else _trace_name(path)
        with CvpTraceReader(path) as reader:
            return self.lint_records(reader, trace=name)


def _trace_name(path: Path) -> str:
    """Trace name from a file name (``srv_3.cvp.gz`` -> ``srv_3``)."""
    name = path.name
    for suffix in (".gz", ".xz", ".cvp"):
        if name.endswith(suffix):
            name = name[: -len(suffix)]
    return name


def lint_trace_name(
    name: str,
    instructions: int,
    improvements: Improvement = Improvement.ALL,
    branch_rules: Union[str, BranchRules] = "auto",
    rules: Optional[Sequence[Rule]] = None,
) -> LintReport:
    """Synthesise the named trace and lint it (test/CLI convenience)."""
    from repro.synth.generator import make_trace

    linter = TraceLinter(improvements, rules=rules, branch_rules=branch_rules)
    return linter.lint_records(make_trace(name, instructions), trace=name)


def rule_catalog() -> List[Dict[str, str]]:
    """The full rule catalog (ID, severity, title, paper section)."""
    from repro.analysis.rules import all_rule_classes

    return [
        {
            "rule_id": cls.rule_id,
            "severity": cls.severity.label,
            "title": cls.title,
            "paper_section": cls.paper_section,
            "family": "input" if cls.rule_id.startswith("TL0") else "conversion",
        }
        for cls in all_rule_classes()
    ]
