"""Rule base classes, the rule registry, and ``--select/--ignore`` logic.

Every trace-lint rule is a small class with a stable ID (``TL0xx`` for
input rules over raw CVP-1 records, ``TL1xx`` for conversion rules over
(CVP-1, ChampSim) record pairs, ``TL2xx`` for ChampSim branch-type
deduction rules), a default :class:`~repro.analysis.diagnostics.Severity`,
and the paper section that motivates it.  Rules self-register on import
via the :func:`register` decorator; :func:`resolve_rules` implements the
ruff-style prefix selection used by the CLI (``--select TL1`` keeps every
conversion rule).
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Sequence, Type

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.cvp.record import CvpRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.engine import RuleContext
    from repro.champsim.trace import ChampSimInstr


class Rule(abc.ABC):
    """Common shape of every trace-lint rule."""

    #: Stable identifier (``TL001``...), unique across the registry.
    rule_id: str = ""
    #: Default severity of this rule's diagnostics.
    severity: Severity = Severity.ERROR
    #: One-line summary for ``--list-rules`` and the docs catalog.
    title: str = ""
    #: Paper section the rule operationalises (e.g. ``"3.1.1"``).
    paper_section: str = ""

    def diag(
        self,
        ctx: "RuleContext",
        record: CvpRecord,
        message: str,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        """Build a diagnostic at ``record``'s location in ``ctx``'s trace."""
        return Diagnostic(
            rule_id=self.rule_id,
            severity=self.severity if severity is None else severity,
            trace=ctx.trace,
            index=ctx.index,
            pc=record.pc,
            message=message,
        )


class InputRule(Rule):
    """A rule over raw CVP-1 records (ISA/trace well-formedness)."""

    @abc.abstractmethod
    def check(
        self, record: CvpRecord, ctx: "RuleContext"
    ) -> Iterator[Diagnostic]:
        """Yield diagnostics for one input record."""


class ConversionRule(Rule):
    """A rule over one CVP-1 record and its converted instruction(s).

    The engine streams the pair in lockstep through the converter: the
    rule sees the input record, every ChampSim instruction the converter
    emitted for it (base-update splitting may emit two), and the
    pre-execution register file via the context.
    """

    @abc.abstractmethod
    def check(
        self,
        record: CvpRecord,
        instrs: Sequence["ChampSimInstr"],
        ctx: "RuleContext",
    ) -> Iterator[Diagnostic]:
        """Yield diagnostics for one (record, converted instrs) pair."""


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule class to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    existing = _REGISTRY.get(cls.rule_id)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate rule id {cls.rule_id!r}: "
            f"{existing.__name__} and {cls.__name__}"
        )
    _REGISTRY[cls.rule_id] = cls
    return cls


def _ensure_rules_loaded() -> None:
    """Import the rule modules so their ``@register`` decorators run."""
    from repro.analysis import conversion_rules, input_rules  # noqa: F401


def all_rule_classes() -> List[Type[Rule]]:
    """Every registered rule class, ordered by rule ID."""
    _ensure_rules_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _matches(rule_id: str, patterns: Sequence[str]) -> bool:
    """Ruff-style prefix match: ``TL1`` selects ``TL101``, ``TL102``..."""
    return any(rule_id.startswith(pattern) for pattern in patterns)


def resolve_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Instantiate the selected rules (all by default, minus ``ignore``).

    ``select`` and ``ignore`` hold exact rule IDs or prefixes.  Unknown
    patterns (matching no registered rule) raise ``ValueError`` so typos
    fail loudly instead of silently linting nothing.
    """
    classes = all_rule_classes()
    known_ids = [cls.rule_id for cls in classes]
    for pattern in list(select or []) + list(ignore or []):
        if not any(rule_id.startswith(pattern) for rule_id in known_ids):
            raise ValueError(
                f"unknown rule or prefix {pattern!r}; known: "
                + ", ".join(known_ids)
            )
    chosen = [
        cls
        for cls in classes
        if (not select or _matches(cls.rule_id, select))
        and not (ignore and _matches(cls.rule_id, ignore))
    ]
    return [cls() for cls in chosen]
