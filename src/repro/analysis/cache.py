"""Content-addressed cache for lint results (keeps the CI gate fast).

Linting is a pure function of the trace bytes, the improvement set, the
ChampSim branch-rule choice, and the selected rules — so reports are
cached under the SHA-256 of exactly those inputs, reusing the layout and
atomic-write machinery of :mod:`repro.experiments.cache`::

    <cache_dir>/lint/<key[:2]>/<key>.json

``LINT_SCHEMA`` folds the diagnostic payload layout into the key-checked
schema field; bumping it (or changing any rule's behaviour enough to
matter) is handled by including :data:`LINT_RULESET_VERSION` in the key,
so stale entries are simply never read again.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintReport
from repro.champsim.branch_info import BranchRules
from repro.core.improvements import Improvement
from repro.experiments.cache import default_cache_dir
from repro.obs.instruments import CacheCounters, InstrumentedCache
from repro.service.store import BlobKind, BlobStore, describe_counters, file_digest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.engine import TraceLinter

#: Bump on any change to the serialised report payload.
#: 2: entries carry a ``digest`` field (SHA-256 of the canonical report
#: payload) verified on load.
LINT_SCHEMA = 2

#: Bump whenever any rule's behaviour changes (new rules, changed checks,
#: changed messages) — cached reports from older rule sets must miss.
LINT_RULESET_VERSION = 1


def lint_key(
    source_digest: str,
    improvements: Improvement,
    branch_rules: BranchRules,
    rule_ids: Sequence[str],
) -> str:
    """Content hash identifying one lint run."""
    payload = {
        "schema": LINT_SCHEMA,
        "ruleset": LINT_RULESET_VERSION,
        "source": source_digest,
        "improvements": improvements.value,
        "branch_rules": branch_rules.value,
        "rules": sorted(rule_ids),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def report_to_dict(report: LintReport) -> dict:
    """JSON-safe payload for one :class:`LintReport`."""
    return {
        "trace": report.trace,
        "improvements": report.improvements.value,
        "branch_rules": report.branch_rules.value,
        "records": report.records,
        "rule_ids": list(report.rule_ids),
        "diagnostics": [d.to_dict() for d in report.diagnostics],
    }


def report_from_dict(payload: dict, from_cache: bool = False) -> LintReport:
    return LintReport(
        trace=payload["trace"],
        improvements=Improvement(payload["improvements"]),
        branch_rules=BranchRules(payload["branch_rules"]),
        records=payload["records"],
        diagnostics=[
            Diagnostic.from_dict(entry) for entry in payload["diagnostics"]
        ],
        rule_ids=tuple(payload["rule_ids"]),
        from_cache=from_cache,
    )


def _cached_report_from_dict(payload: dict) -> LintReport:
    """Blob-store decode hook: cached loads are marked ``from_cache``."""
    return report_from_dict(payload, from_cache=True)


#: The lint-report blob family (layout and envelope unchanged from the
#: pre-store cache, so existing entries stay readable both ways).
LINT_KIND = BlobKind(name="lint", schema=LINT_SCHEMA, body_field="report")


class LintCache(InstrumentedCache):
    """On-disk store of lint reports, keyed by :func:`lint_key`.

    A thin view over the service blob store
    (:class:`repro.service.store.BlobStore`) with the same integrity
    contract as the result cache: absent or schema-mismatched entries
    are plain misses; corrupt entries (unparseable, missing fields,
    digest mismatch) are moved to ``<root>/quarantine/`` with a
    ``cache.corrupt`` event and then missed.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.counters = CacheCounters("lint")
        self._blobs = BlobStore(
            root if root is not None else default_cache_dir(),
            LINT_KIND,
            self.counters,
        )

    @property
    def root(self) -> Path:
        return self._blobs.root

    def _path(self, key: str) -> Path:
        return self._blobs.path(key)

    def load(self, key: str) -> Optional[LintReport]:
        """The cached report for ``key``, or None (counted as hit/miss)."""
        return self._blobs.load(key, _cached_report_from_dict)

    def store(self, key: str, report: LintReport) -> None:
        self._blobs.store(key, report_to_dict(report))

    def describe(self) -> str:
        return describe_counters(self.counters, self.root)


def lint_file_cached(
    linter: "TraceLinter",
    path: Union[str, Path],
    cache: Optional[LintCache],
    trace: Optional[str] = None,
) -> LintReport:
    """Lint ``path`` through ``cache`` (straight lint when ``cache=None``)."""
    if cache is None:
        return linter.lint_file(path, trace=trace)
    key = lint_key(
        file_digest(path),
        linter.improvements,
        linter.branch_rules,
        linter.rule_ids,
    )
    cached = cache.load(key)
    if cached is not None:
        return cached
    report = linter.lint_file(path, trace=trace)
    cache.store(key, report)
    return report
