"""Conversion rules: the paper's Table 1 invariants (``TL1xx``/``TL2xx``).

Each ``TL1xx`` rule mechanises one converter improvement from the paper:
it recomputes the *ground truth* from the CVP-1 record (and the tracked
register file) and checks that the emitted ChampSim instruction(s)
preserve it.  Run against a conversion with an improvement disabled, the
matching rule reproduces the paper's qualitative finding as a structured
diagnostic — the original converter's bugs become lint errors.

The ``TL2xx`` rules check the *ChampSim side*: the branch type the
simulator will deduce from the emitted register signature (under the
configured :class:`~repro.champsim.branch_info.BranchRules`) must match
the branch the CVP-1 record actually performed.  They fire when a trace
needs the paper's patched deduction rules but is simulated with the
original ones (Section 3.2.2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.rules import ConversionRule, register
from repro.champsim.branch_info import BranchType, deduce_branch_type
from repro.champsim.regs import REG_FLAGS, REG_FORGED_X0, champsim_reg
from repro.champsim.trace import ChampSimInstr, MAX_DST_REGS
from repro.cvp.addrmode import cachelines_touched, is_dc_zva
from repro.cvp.isa import CACHELINE_SIZE, LINK_REGISTER, InstClass
from repro.cvp.record import CvpRecord

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.engine import RuleContext

#: Instruction classes whose destination-less members are flag-setting
#: compares/tests (the converter's FLAG_REG improvement targets; mirrors
#: ``repro.core.convert._ALU_CLASSES``).
FLAG_SETTING_CLASSES = (
    InstClass.ALU,
    InstClass.SLOW_ALU,
    InstClass.FP,
    InstClass.UNDEF,
)

#: The architectural register whose ChampSim mapping the original
#: converter forged as a synthetic indirect-branch source (X56).
_SYNTHETIC_BRANCH_SOURCE_REG = 56


def expected_branch_category(record: CvpRecord) -> Optional[BranchType]:
    """Ground-truth ChampSim branch category of a CVP-1 branch record.

    Derived purely from the record's semantics: a branch that writes the
    link register performs a call (even ``BLR X30`` — the case the
    original converter misclassifies); an indirect branch that reads X30
    and writes nothing is a return.
    """
    if not record.is_branch:
        return None
    writes_link = LINK_REGISTER in record.dst_regs
    if record.inst_class is InstClass.COND_BRANCH:
        return BranchType.CONDITIONAL
    if record.inst_class is InstClass.UNCOND_DIRECT_BRANCH:
        return BranchType.DIRECT_CALL if writes_link else BranchType.DIRECT_JUMP
    if LINK_REGISTER in record.src_regs and not record.dst_regs:
        return BranchType.RETURN
    if writes_link:
        return BranchType.INDIRECT_CALL
    return BranchType.INDIRECT


def _memory_uop(
    record: CvpRecord, instrs: Sequence[ChampSimInstr]
) -> Optional[ChampSimInstr]:
    """The emitted micro-op carrying the record's memory access."""
    for instr in instrs:
        if record.is_load and instr.src_mem:
            return instr
        if record.is_store and instr.dst_mem:
            return instr
    return None


@register
class MemRegsRule(ConversionRule):
    """``mem-regs``: convey all register writes of memory instructions."""

    rule_id = "TL101"
    severity = Severity.ERROR
    title = "memory instruction destinations forged or dropped"
    paper_section = "3.1.1"

    def check(
        self,
        record: CvpRecord,
        instrs: Sequence[ChampSimInstr],
        ctx: "RuleContext",
    ) -> Iterator[Diagnostic]:
        if not record.is_memory:
            return
        emitted: set = set()
        for instr in instrs:
            emitted.update(instr.dst_regs)

        if not record.dst_regs:
            if REG_FORGED_X0 in emitted:
                yield self.diag(
                    ctx,
                    record,
                    "destination-less memory instruction received a forged "
                    "X0 destination; consumers of the real X0 inherit a "
                    "false dependency",
                )
            return

        expected = [champsim_reg(reg) for reg in record.dst_regs]
        missing = sorted(set(expected) - emitted)
        if not missing:
            return
        capacity_left = any(
            len(instr.dst_regs) < MAX_DST_REGS for instr in instrs
        )
        names = ", ".join(str(reg) for reg in missing)
        if capacity_left:
            yield self.diag(
                ctx,
                record,
                f"{len(missing)} destination register(s) dropped by the "
                f"conversion (ChampSim regs {names}); their consumers lose "
                "the dependency",
            )
        else:
            yield self.diag(
                ctx,
                record,
                f"{len(missing)} destination register(s) truncated at the "
                f"{MAX_DST_REGS}-slot format limit (ChampSim regs {names})",
                severity=Severity.INFO,
            )


@register
class BaseUpdateRule(ConversionRule):
    """``base-update``: split the base-register update off the access."""

    rule_id = "TL102"
    severity = Severity.ERROR
    title = "base-register update not split into an ALU micro-op"
    paper_section = "3.1.2"

    def check(
        self,
        record: CvpRecord,
        instrs: Sequence[ChampSimInstr],
        ctx: "RuleContext",
    ) -> Iterator[Diagnostic]:
        if not record.is_memory:
            return
        info = ctx.addressing(record)
        if not info.is_base_update or info.base_reg is None:
            return
        base = champsim_reg(info.base_reg)
        alu_uops = [
            instr
            for instr in instrs
            if base in instr.dst_regs and not instr.src_mem and not instr.dst_mem
        ]
        if not alu_uops:
            yield self.diag(
                ctx,
                record,
                f"{info.mode.value} base update of X{info.base_reg} not "
                "split into an ALU micro-op; base-register consumers wait "
                "on the full memory latency",
            )
            return
        mem_uop = _memory_uop(record, instrs)
        if mem_uop is not None:
            alu_first = instrs.index(alu_uops[0]) < instrs.index(mem_uop)
            pre_index = info.mode.value == "pre-index"
            if alu_first != pre_index:
                yield self.diag(
                    ctx,
                    record,
                    f"{info.mode.value} base update emitted with the ALU "
                    "micro-op on the wrong side of the memory access",
                    severity=Severity.WARNING,
                )


@register
class MemFootprintRule(ConversionRule):
    """``mem-footprint``: access every cacheline the instruction touches."""

    rule_id = "TL103"
    severity = Severity.ERROR
    title = "cacheline-crossing footprint or DC ZVA alignment lost"
    paper_section = "3.1.3"

    def check(
        self,
        record: CvpRecord,
        instrs: Sequence[ChampSimInstr],
        ctx: "RuleContext",
    ) -> Iterator[Diagnostic]:
        if not record.is_memory:
            return
        mem_uop = _memory_uop(record, instrs)
        if mem_uop is None:
            yield self.diag(
                ctx,
                record,
                f"{record.inst_class.name} record produced no instruction "
                "with a memory slot",
            )
            return
        slots = mem_uop.src_mem if record.is_load else mem_uop.dst_mem

        if is_dc_zva(record):
            for address in slots:
                if address % CACHELINE_SIZE:
                    yield self.diag(
                        ctx,
                        record,
                        f"DC ZVA emitted with unaligned address "
                        f"{address:#x}; the instruction zeroes exactly one "
                        "naturally-aligned cacheline",
                    )
            return

        lines = cachelines_touched(record, ctx.addressing(record), ctx.registers)
        if len(lines) < 2:
            return
        covered = {address & ~(CACHELINE_SIZE - 1) for address in slots}
        if lines[1] not in covered:
            yield self.diag(
                ctx,
                record,
                f"access at {record.mem_address or 0:#x} spans two "
                "cachelines but the converted instruction carries no "
                f"address in the second line {lines[1]:#x}",
            )


@register
class CallStackRule(ConversionRule):
    """``call-stack``: returns are exactly reads-X30-and-writes-nothing."""

    rule_id = "TL104"
    severity = Severity.ERROR
    title = "call/return misclassification corrupts the call stack"
    paper_section = "3.2.1"

    def check(
        self,
        record: CvpRecord,
        instrs: Sequence[ChampSimInstr],
        ctx: "RuleContext",
    ) -> Iterator[Diagnostic]:
        if record.inst_class is not InstClass.UNCOND_INDIRECT_BRANCH:
            return
        deduced = deduce_branch_type(instrs[0], ctx.branch_rules)
        is_true_return = (
            LINK_REGISTER in record.src_regs and not record.dst_regs
        )
        if LINK_REGISTER in record.dst_regs and deduced is BranchType.RETURN:
            yield self.diag(
                ctx,
                record,
                "indirect call through X30 (BLR X30) converted as a "
                "return; the simulated return-address stack pops instead "
                "of pushing",
            )
        elif is_true_return and deduced is not BranchType.RETURN:
            yield self.diag(
                ctx,
                record,
                f"return (reads X30, writes nothing) converted as "
                f"{deduced.value}; the return-address stack misses a pop",
            )


@register
class BranchRegsRule(ConversionRule):
    """``branch-regs``: convey the registers branches actually read."""

    rule_id = "TL105"
    severity = Severity.ERROR
    title = "branch source registers severed or forged"
    paper_section = "3.2.2"

    def check(
        self,
        record: CvpRecord,
        instrs: Sequence[ChampSimInstr],
        ctx: "RuleContext",
    ) -> Iterator[Diagnostic]:
        if not record.is_branch or not record.src_regs:
            return
        instr = instrs[0]
        mapped = {champsim_reg(reg) for reg in record.src_regs}
        if not mapped & set(instr.src_regs):
            regs = ", ".join(f"X{reg}" for reg in sorted(set(record.src_regs)))
            yield self.diag(
                ctx,
                record,
                f"branch reads {regs} but the converted instruction "
                "carries none of them; the data dependency on the "
                "producer is severed",
            )
        synthetic = champsim_reg(_SYNTHETIC_BRANCH_SOURCE_REG)
        if (
            synthetic in instr.src_regs
            and _SYNTHETIC_BRANCH_SOURCE_REG not in record.src_regs
        ):
            yield self.diag(
                ctx,
                record,
                f"synthetic X{_SYNTHETIC_BRANCH_SOURCE_REG} source forged "
                "onto the branch purely for type deduction",
            )


@register
class FlagRegRule(ConversionRule):
    """``flag-reg``: destination-less ALU/FP ops must write the flags."""

    rule_id = "TL106"
    severity = Severity.ERROR
    title = "flag-setting compare does not write the flag register"
    paper_section = "3.2.3"

    def check(
        self,
        record: CvpRecord,
        instrs: Sequence[ChampSimInstr],
        ctx: "RuleContext",
    ) -> Iterator[Diagnostic]:
        if record.inst_class not in FLAG_SETTING_CLASSES or record.dst_regs:
            return
        instr = instrs[0]
        if REG_FLAGS in instr.dst_regs:
            return
        if REG_FORGED_X0 in instr.dst_regs:
            detail = "received a forged X0 destination instead"
        else:
            detail = "writes no destination at all"
        yield self.diag(
            ctx,
            record,
            "destination-less compare/test must write the flag register "
            f"so flag-reading branches depend on it; {detail}",
        )


@register
class CondBranchDeductionRule(ConversionRule):
    """ChampSim deduction: conditional branches must survive as such."""

    rule_id = "TL201"
    severity = Severity.ERROR
    title = "conditional branch deduced as a different type by ChampSim"
    paper_section = "3.2.2"

    def check(
        self,
        record: CvpRecord,
        instrs: Sequence[ChampSimInstr],
        ctx: "RuleContext",
    ) -> Iterator[Diagnostic]:
        if record.inst_class is not InstClass.COND_BRANCH:
            return
        deduced = deduce_branch_type(instrs[0], ctx.branch_rules)
        if deduced is not BranchType.CONDITIONAL:
            yield self.diag(
                ctx,
                record,
                f"conditional branch deduced as {deduced.value} under the "
                f"{ctx.branch_rules.value} ChampSim rules; it needs the "
                "patched rule set (conditional may read either flags or "
                "general registers)",
            )


@register
class UncondBranchDeductionRule(ConversionRule):
    """ChampSim deduction: unconditional branch categories must match."""

    rule_id = "TL202"
    severity = Severity.ERROR
    title = "unconditional branch deduced as the wrong category"
    paper_section = "3.2.2"

    def check(
        self,
        record: CvpRecord,
        instrs: Sequence[ChampSimInstr],
        ctx: "RuleContext",
    ) -> Iterator[Diagnostic]:
        if record.inst_class not in (
            InstClass.UNCOND_DIRECT_BRANCH,
            InstClass.UNCOND_INDIRECT_BRANCH,
        ):
            return
        expected = expected_branch_category(record)
        deduced = deduce_branch_type(instrs[0], ctx.branch_rules)
        if expected is not None and deduced is not expected:
            yield self.diag(
                ctx,
                record,
                f"{expected.value} branch deduced as {deduced.value} under "
                f"the {ctx.branch_rules.value} ChampSim rules",
            )


def conversion_rule_ids() -> List[str]:
    """The IDs of every conversion-family rule (for docs and tests)."""
    return ["TL101", "TL102", "TL103", "TL104", "TL105", "TL106", "TL201", "TL202"]
