"""``repro-lint`` — static analysis of CVP-1 traces and their conversion.

Lints one or more CVP-1 trace files against the rule catalog, streaming
each trace through the converter in lockstep::

    repro-lint tests/golden/*.cvp.gz                      # all imps, clean
    repro-lint srv_3.cvp.gz --no-improvement call-stack   # TL104 fires
    repro-lint srv_3.cvp.gz --select TL1 --format json
    repro-lint traces/*.cvp.gz --baseline lint-baseline.json

The exit code reflects the worst surviving finding: 0 (clean or info),
1 (warnings), 2 (errors) — so CI can gate on ``repro-lint`` directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro import obs
from repro.core.improvements import (
    IMPROVEMENT_NAMES,
    Improvement,
    parse_improvements,
)
from repro.obs import logutil

#: ``--no-improvement`` spellings: the paper's Table 1 singletons.
IMPROVEMENT_FLAGS = {
    "mem-regs": Improvement.MEM_REGS,
    "base-update": Improvement.BASE_UPDATE,
    "mem-footprint": Improvement.MEM_FOOTPRINT,
    "call-stack": Improvement.CALL_STACK,
    "branch-regs": Improvement.BRANCH_REGS,
    "flag-regs": Improvement.FLAG_REG,
}


def parse_disabled(name: str) -> Improvement:
    """Parse a ``--no-improvement`` name (``mem-regs`` or ``imp_mem-regs``)."""
    key = name.strip().lower()
    if key.startswith("imp_"):
        key = key[len("imp_"):]
    if key not in IMPROVEMENT_FLAGS:
        known = ", ".join(sorted(IMPROVEMENT_FLAGS))
        raise ValueError(f"unknown improvement {name!r}; known: {known}")
    return IMPROVEMENT_FLAGS[key]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Lint CVP-1 traces against the paper's conversion invariants."
        ),
    )
    parser.add_argument(
        "traces", nargs="*", help="CVP-1 trace files (.gz ok)"
    )
    parser.add_argument(
        "-i",
        "--improvement",
        default="All_imps",
        help=(
            "improvement set for the lockstep conversion; one of: "
            + ", ".join(sorted(IMPROVEMENT_NAMES))
            + " (default All_imps)"
        ),
    )
    parser.add_argument(
        "--no-improvement",
        action="append",
        default=[],
        metavar="NAME",
        help=(
            "disable one improvement (repeatable); one of: "
            + ", ".join(sorted(IMPROVEMENT_FLAGS))
        ),
    )
    parser.add_argument(
        "--branch-rules",
        choices=("auto", "original", "patched"),
        default="auto",
        help=(
            "ChampSim deduction rule set for the TL2xx rules "
            "(auto = what the improvement set requires)"
        ),
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule IDs/prefixes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="comma-separated rule IDs/prefixes to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--baseline",
        help="baseline JSON file; suppress the findings recorded in it",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="record every surviving finding into PATH and exit 0",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "lint-result cache directory (default: $REPRO_CACHE_DIR or "
            "~/.cache/repro)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="re-lint every trace even when cached results match",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    obs.add_obs_flags(parser)
    logutil.add_logging_flags(parser)
    return parser


def _split_patterns(values: Sequence[str]) -> List[str]:
    out: List[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logutil.configure_from_args(args)
    obs.setup_cli("repro-lint", args)

    from repro.analysis.reporters import (
        render_json,
        render_rule_catalog,
        render_text,
    )

    if args.list_rules:
        print(render_rule_catalog())
        return 0
    if not args.traces:
        print("repro-lint: no trace files given", file=sys.stderr)
        return 2

    try:
        improvements = parse_improvements(args.improvement)
        for name in args.no_improvement:
            improvements &= ~parse_disabled(name)
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    from repro.analysis.baseline import (
        load_baseline,
        suppress_report,
        write_baseline,
    )
    from repro.analysis.cache import LintCache, lint_file_cached
    from repro.analysis.engine import LintSummary, TraceLinter
    from repro.analysis.rules import resolve_rules

    try:
        rules = resolve_rules(
            select=_split_patterns(args.select) or None,
            ignore=_split_patterns(args.ignore) or None,
        )
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    linter = TraceLinter(
        improvements, rules=rules, branch_rules=args.branch_rules
    )
    cache = None if args.no_cache else LintCache(args.cache_dir)

    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as exc:
            print(f"repro-lint: cannot read baseline: {exc}", file=sys.stderr)
            return 2

    reports = []
    for path in args.traces:
        try:
            report = lint_file_cached(linter, path, cache)
        except OSError as exc:
            print(f"repro-lint: {path}: {exc}", file=sys.stderr)
            return 2
        if baseline is not None:
            report = suppress_report(report, baseline)
        reports.append(report)

    if args.write_baseline:
        count = write_baseline(args.write_baseline, reports)
        print(f"[baseline {args.write_baseline}: {count} finding(s) recorded]")
        return 0

    if args.format == "json":
        print(render_json(reports))
    else:
        print(render_text(reports))
        if cache is not None:
            print(f"[lint cache {cache.describe()}]")
    return LintSummary(reports=reports).exit_code()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
