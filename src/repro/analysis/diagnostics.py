"""Structured diagnostics emitted by the trace-lint rules.

A :class:`Diagnostic` pins one finding to a (trace, record index, PC)
location, the way a source linter pins findings to (file, line, column).
The :class:`Severity` ordering drives the CLI exit code and the
CI gate (golden traces must lint with zero errors); the
:meth:`Diagnostic.fingerprint` is the identity used by baseline files to
suppress known findings across runs (it deliberately excludes the record
*index*, so diagnostics survive re-recording a trace with a different
instruction budget as long as the PC and message are stable).
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Any, Dict


class Severity(enum.IntEnum):
    """Finding severities, ordered so ``max()`` picks the worst."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {label!r}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one trace location.

    Attributes:
        rule_id: The rule that fired (``TL001``...).
        severity: How bad the finding is (may differ from the rule's
            default severity, e.g. format-capacity truncations downgrade
            to warnings).
        trace: Name of the linted trace.
        index: Zero-based index of the CVP-1 record in the trace.
        pc: Program counter of the offending record.
        message: Human-readable description of the violation.
    """

    rule_id: str
    severity: Severity
    trace: str
    index: int
    pc: int
    message: str

    def fingerprint(self) -> str:
        """Stable identity for baseline suppression (index-independent)."""
        raw = f"{self.rule_id}|{self.trace}|{self.pc:#x}|{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule_id": self.rule_id,
            "severity": self.severity.label,
            "trace": self.trace,
            "index": self.index,
            "pc": self.pc,
            "message": self.message,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Diagnostic":
        return cls(
            rule_id=payload["rule_id"],
            severity=Severity.from_label(payload["severity"]),
            trace=payload["trace"],
            index=payload["index"],
            pc=payload["pc"],
            message=payload["message"],
        )

    def render(self) -> str:
        """One-line text form: ``trace:index: pc=0x...: TLxxx error: msg``."""
        return (
            f"{self.trace}:{self.index}: pc={self.pc:#x}: "
            f"{self.rule_id} {self.severity.label}: {self.message}"
        )
