"""Baseline files: suppress known findings, surface only new ones.

A baseline is a JSON file of diagnostic fingerprints
(:meth:`~repro.analysis.diagnostics.Diagnostic.fingerprint`).  Linting
with ``--baseline`` drops findings whose fingerprint is recorded —
the standard adoption path for a linter over a corpus with pre-existing
findings: freeze today's findings, gate on anything new.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Set, Tuple, Union

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.engine import LintReport

BASELINE_SCHEMA = 1


def write_baseline(
    path: Union[str, Path], reports: Iterable[LintReport]
) -> int:
    """Record every diagnostic of ``reports``; returns the entry count.

    Entries carry the human-readable rendering next to the fingerprint so
    baseline diffs are reviewable.
    """
    entries = {}
    for report in reports:
        for diagnostic in report.diagnostics:
            entries[diagnostic.fingerprint()] = diagnostic.render()
    payload = {
        "schema": BASELINE_SCHEMA,
        "findings": {
            fingerprint: entries[fingerprint]
            for fingerprint in sorted(entries)
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return len(entries)


def load_baseline(path: Union[str, Path]) -> Set[str]:
    """The set of suppressed fingerprints in a baseline file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline {path} has schema {payload.get('schema')!r}; "
            f"expected {BASELINE_SCHEMA}"
        )
    return set(payload["findings"])


def apply_baseline(
    diagnostics: Iterable[Diagnostic], baseline: Set[str]
) -> Tuple[List[Diagnostic], int]:
    """Split diagnostics into (kept, suppressed-count)."""
    kept: List[Diagnostic] = []
    suppressed = 0
    for diagnostic in diagnostics:
        if diagnostic.fingerprint() in baseline:
            suppressed += 1
        else:
            kept.append(diagnostic)
    return kept, suppressed


def suppress_report(report: LintReport, baseline: Set[str]) -> LintReport:
    """A copy of ``report`` with baselined findings suppressed."""
    kept, suppressed = apply_baseline(report.diagnostics, baseline)
    return LintReport(
        trace=report.trace,
        improvements=report.improvements,
        branch_rules=report.branch_rules,
        records=report.records,
        diagnostics=kept,
        rule_ids=report.rule_ids,
        from_cache=report.from_cache,
        suppressed=report.suppressed + suppressed,
    )
