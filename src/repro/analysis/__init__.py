"""Trace-lint: rule-based static analysis of CVP-1/ChampSim conversion.

The public surface is small: a rule registry (:mod:`repro.analysis.rules`),
the streaming engine (:class:`TraceLinter`), and JSON/text reporters used
by the ``repro-lint`` CLI and the converter's ``--lint`` mode.
"""

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.engine import (
    LintReport,
    LintSummary,
    RuleContext,
    TraceLinter,
    lint_trace_name,
    resolve_branch_rules,
    rule_catalog,
)
from repro.analysis.rules import (
    ConversionRule,
    InputRule,
    Rule,
    all_rule_classes,
    register,
    resolve_rules,
)

__all__ = [
    "ConversionRule",
    "Diagnostic",
    "InputRule",
    "LintReport",
    "LintSummary",
    "Rule",
    "RuleContext",
    "Severity",
    "TraceLinter",
    "all_rule_classes",
    "lint_trace_name",
    "register",
    "resolve_branch_rules",
    "resolve_rules",
    "rule_catalog",
]
