"""The ``cvp2champsim`` converter: original behaviour plus the six fixes.

One code path implements both converters.  With ``Improvement.NONE`` the
conversion reproduces the *original* converter's design decisions,
including the ones the paper identifies as bugs (Section 2):

- every non-branch instruction is forced to exactly one destination
  register — a forged X0 when the CVP-1 record has none, the first CVP-1
  destination otherwise, silently dropping the remaining destinations
  (and, with them, the dependencies of their consumers);
- a single memory address is emitted regardless of footprint;
- unconditional indirect branches that read X30 are classified as returns
  *even when they also write X30* (the call/return misalignment bug);
- branches read only the synthetic special registers (IP/SP/FLAGS/X56),
  severing their true data dependencies.

Enabling improvements switches the corresponding behaviour to the paper's
Section 3 fixes.  :attr:`Converter.required_branch_rules` reports which
ChampSim branch-deduction rule set the produced trace needs
(:attr:`~repro.champsim.branch_info.BranchRules.PATCHED` once
``BRANCH_REGS`` is active, per Section 3.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.champsim.branch_info import BranchRules, BranchType
from repro.champsim.regs import (
    REG_FLAGS,
    REG_FORGED_X0,
    REG_INSTRUCTION_POINTER,
    REG_OTHER_INFO,
    REG_STACK_POINTER,
    champsim_reg,
)
from repro.champsim.trace import (
    ChampSimInstr,
    MAX_DST_REGS,
    MAX_SRC_REGS,
)
from repro.cvp.addrmode import (
    AddressingInfo,
    AddressingMode,
    cachelines_touched,
    infer_addressing,
    is_dc_zva,
)
from repro.cvp.isa import (
    CACHELINE_SIZE,
    LINK_REGISTER,
    InstClass,
)
from repro.cvp.reader import CvpTraceReader, RegisterFile
from repro.cvp.record import CvpRecord
from repro.core.improvements import Improvement

_ALU_CLASSES = (InstClass.ALU, InstClass.SLOW_ALU, InstClass.FP, InstClass.UNDEF)


@dataclass
class ConversionStats:
    """Counters describing what one conversion did.

    These back the Table 1 benchmark (per-improvement activity report) and
    several tests; every counter names the paper mechanism it tracks.
    """

    records_in: int = 0
    instructions_out: int = 0

    #: Converted branch instructions per deduced category.
    branch_counts: Dict[BranchType, int] = field(default_factory=dict)
    #: X30 read+write branches that CALL_STACK re-classified from return
    #: to indirect call (0 when the improvement is off).
    misclassified_calls_fixed: int = 0
    #: X30 read+write branches converted *as* returns (the original bug).
    misclassified_returns_emitted: int = 0
    #: Conditional branches whose CVP sources replaced the flag register
    #: (BRANCH_REGS).
    cond_branch_sources_kept: int = 0
    #: Indirect branches/calls whose synthetic X56 source was replaced.
    x56_sources_replaced: int = 0

    #: Destination-less instructions that received a forged X0.
    forged_x0_dsts: int = 0
    #: ALU/FP instructions that received the flag register as destination
    #: (FLAG_REG).
    flag_dsts_added: int = 0
    #: CVP destination registers dropped by the original single-destination
    #: rule (their consumers lose the dependency — paper Section 3.1.1).
    dsts_dropped: int = 0
    #: CVP destination registers dropped because even the improved format
    #: holds only two (paper: vector loads; counted, never silent).
    dst_regs_truncated: int = 0
    #: CVP source registers dropped at the four-slot format limit
    #: (paper footnote 2: e.g. compare-and-swap-pair).
    src_regs_truncated: int = 0

    #: Memory instructions split into ALU + memory micro-ops (BASE_UPDATE).
    base_updates_split: int = 0
    #: ... of which pre-indexing (ALU first).
    pre_index_splits: int = 0
    #: Accesses that received a second cacheline address (MEM_FOOTPRINT).
    two_line_accesses: int = 0
    #: DC ZVA stores whose address was aligned (MEM_FOOTPRINT).
    dc_zva_aligned: int = 0

    def count_branch(self, category: BranchType) -> None:
        self.branch_counts[category] = self.branch_counts.get(category, 0) + 1

    @property
    def expansion_ratio(self) -> float:
        """Output instructions per input record (>1 once splits happen)."""
        if self.records_in == 0:
            return 1.0
        return self.instructions_out / self.records_in


def _dedupe(regs: Iterable[int]) -> Tuple[int, ...]:
    """Drop duplicate register ids, preserving first-seen order."""
    seen = set()
    out: List[int] = []
    for reg in regs:
        if reg not in seen:
            seen.add(reg)
            out.append(reg)
    return tuple(out)


class Converter:
    """Convert CVP-1 records into ChampSim trace instructions.

    Args:
        improvements: Which of the paper's fixes to enable.  The default
            reproduces the original converter.

    The converter is stateful across one :meth:`convert` call (it tracks
    register values for the addressing-mode heuristic) and accumulates
    :attr:`stats` across calls.
    """

    def __init__(self, improvements: Improvement = Improvement.NONE) -> None:
        self.improvements = improvements
        self.stats = ConversionStats()

    @property
    def required_branch_rules(self) -> BranchRules:
        """Rule set ChampSim must apply to traces from this converter.

        The BRANCH_REGS improvement emits conditional branches that read
        general-purpose registers instead of flags, which only the paper's
        patched deduction rules classify correctly (Section 3.2.2).
        """
        if Improvement.BRANCH_REGS in self.improvements:
            return BranchRules.PATCHED
        return BranchRules.ORIGINAL

    # ------------------------------------------------------------------
    # driving loop
    # ------------------------------------------------------------------

    def convert(
        self, source: Union[CvpTraceReader, Iterable[CvpRecord]]
    ) -> Iterator[ChampSimInstr]:
        """Yield converted instructions for every record in ``source``."""
        reader = (
            source if isinstance(source, CvpTraceReader) else CvpTraceReader(source)
        )
        for record in reader:
            self.stats.records_in += 1
            for instr in self.convert_record(record, reader.registers):
                self.stats.instructions_out += 1
                yield instr
            reader.commit(record)

    def convert_record(
        self, record: CvpRecord, registers: Optional[RegisterFile] = None
    ) -> List[ChampSimInstr]:
        """Convert one record; base-update splitting may emit two."""
        if record.is_branch:
            return [self._convert_branch(record)]
        return self._convert_nonbranch(record, registers)

    def convert_to_bytes(
        self,
        source: Union[CvpTraceReader, Iterable[CvpRecord]],
        block_size: int = 4096,
    ) -> Iterator[bytes]:
        """Block-based fast path: yield encoded ChampSim chunks.

        The concatenated chunks are byte-identical to encoding
        :meth:`convert`'s output record by record, and :attr:`stats`
        accumulates identically; see :mod:`repro.core.fastconvert`.
        With observability enabled (``REPRO_OBS``/``--obs``) the stream
        additionally emits spans and counters — still byte-identical —
        via :mod:`repro.core.obsconvert`.
        """
        from repro.obs import state as obs_state

        if obs_state.enabled():
            from repro.core.obsconvert import convert_blocks_to_bytes_observed

            return convert_blocks_to_bytes_observed(self, source, block_size)
        from repro.core.fastconvert import convert_blocks_to_bytes

        return convert_blocks_to_bytes(self, source, block_size)

    # ------------------------------------------------------------------
    # branches (paper Section 3.2)
    # ------------------------------------------------------------------

    def _classify_branch(self, record: CvpRecord) -> BranchType:
        """Converter-level branch categorisation from the CVP record."""
        reads_x30 = LINK_REGISTER in record.src_regs
        writes_x30 = LINK_REGISTER in record.dst_regs
        fix_calls = Improvement.CALL_STACK in self.improvements

        if record.inst_class is InstClass.COND_BRANCH:
            return BranchType.CONDITIONAL

        if record.inst_class is InstClass.UNCOND_DIRECT_BRANCH:
            if writes_x30:
                return BranchType.DIRECT_CALL
            return BranchType.DIRECT_JUMP

        # Unconditional indirect: return / indirect call / indirect jump.
        if fix_calls:
            if reads_x30 and not record.dst_regs:
                return BranchType.RETURN
            if writes_x30:
                if reads_x30:
                    self.stats.misclassified_calls_fixed += 1
                return BranchType.INDIRECT_CALL
            return BranchType.INDIRECT
        # Original rule: reading X30 wins, even for branches that also
        # *write* X30 (BLR X30) — the call-stack bug.
        if reads_x30:
            if writes_x30:
                self.stats.misclassified_returns_emitted += 1
            return BranchType.RETURN
        if writes_x30:
            return BranchType.INDIRECT_CALL
        return BranchType.INDIRECT

    def _branch_sources(
        self, record: CvpRecord, mandatory: Sequence[int], synthetic: Sequence[int]
    ) -> Tuple[int, ...]:
        """Assemble a branch's source registers.

        ``mandatory`` registers encode the branch type for ChampSim;
        ``synthetic`` ones are only kept when BRANCH_REGS is off (or when
        the record carries no real sources to replace them with).
        """
        keep_real = Improvement.BRANCH_REGS in self.improvements
        sources: List[int] = list(mandatory)
        if keep_real and record.src_regs:
            sources.extend(champsim_reg(reg) for reg in record.src_regs)
        else:
            sources.extend(synthetic)
        sources = list(_dedupe(sources))
        if len(sources) > MAX_SRC_REGS:
            self.stats.src_regs_truncated += len(sources) - MAX_SRC_REGS
            sources = sources[:MAX_SRC_REGS]
        return tuple(sources)

    def _convert_branch(self, record: CvpRecord) -> ChampSimInstr:
        category = self._classify_branch(record)
        self.stats.count_branch(category)
        keep_real = Improvement.BRANCH_REGS in self.improvements
        taken = (
            record.branch_taken
            if record.inst_class is InstClass.COND_BRANCH
            else True
        )

        if category is BranchType.CONDITIONAL:
            if keep_real and record.src_regs:
                # cb(n)z / tb(n)z: depend on the real producer, not flags.
                self.stats.cond_branch_sources_kept += 1
                sources = self._branch_sources(
                    record, (REG_INSTRUCTION_POINTER,), ()
                )
            else:
                sources = (REG_INSTRUCTION_POINTER, REG_FLAGS)
            dsts: Tuple[int, ...] = (REG_INSTRUCTION_POINTER,)
        elif category is BranchType.DIRECT_JUMP:
            sources = ()
            dsts = (REG_INSTRUCTION_POINTER,)
        elif category is BranchType.INDIRECT:
            if keep_real and record.src_regs:
                self.stats.x56_sources_replaced += 1
            sources = self._branch_sources(record, (), (REG_OTHER_INFO,))
            dsts = (REG_INSTRUCTION_POINTER,)
        elif category is BranchType.DIRECT_CALL:
            sources = (REG_INSTRUCTION_POINTER, REG_STACK_POINTER)
            # Known limitation (paper Section 3.2.2): X30 cannot also be a
            # destination — the two slots carry IP and SP for deduction.
            dsts = (REG_INSTRUCTION_POINTER, REG_STACK_POINTER)
        elif category is BranchType.INDIRECT_CALL:
            if keep_real and record.src_regs:
                self.stats.x56_sources_replaced += 1
            sources = self._branch_sources(
                record,
                (REG_INSTRUCTION_POINTER, REG_STACK_POINTER),
                (REG_OTHER_INFO,),
            )
            dsts = (REG_INSTRUCTION_POINTER, REG_STACK_POINTER)
        else:  # RETURN
            sources = self._branch_sources(record, (REG_STACK_POINTER,), ())
            dsts = (REG_INSTRUCTION_POINTER, REG_STACK_POINTER)

        return ChampSimInstr(
            ip=record.pc,
            is_branch=True,
            branch_taken=taken,
            dst_regs=dsts,
            src_regs=sources,
        )

    # ------------------------------------------------------------------
    # non-branches (paper Section 3.1 and 3.2.3)
    # ------------------------------------------------------------------

    def _final_destinations(
        self, record: CvpRecord, dst_regs: Sequence[int]
    ) -> Tuple[int, ...]:
        """Apply the MEM_REGS / FLAG_REG destination policy.

        Without MEM_REGS, the original single-destination rule applies:
        the first CVP destination survives, the rest are dropped and
        their consumers silently lose the dependency (paper
        Section 3.1.1: "dependencies between these load instructions and
        younger instructions that read from the missing destination
        registers are missing from the converted traces").
        """
        keep_all = Improvement.MEM_REGS in self.improvements
        add_flags = (
            Improvement.FLAG_REG in self.improvements
            and record.inst_class in _ALU_CLASSES
            and not record.dst_regs
        )

        if add_flags:
            self.stats.flag_dsts_added += 1
            return (REG_FLAGS,)

        mapped = [champsim_reg(reg) for reg in dst_regs]
        if keep_all:
            if len(mapped) > MAX_DST_REGS:
                self.stats.dst_regs_truncated += len(mapped) - MAX_DST_REGS
                mapped = mapped[:MAX_DST_REGS]
            return tuple(mapped)

        # Original behaviour: exactly one destination register — the
        # *first* one the CVP-1 record lists.  CVP-1 orders the outputs of
        # base-updating memory instructions base-register first (the
        # address update commits before the memory data), so the original
        # converter leaves base-register consumers waiting on the full
        # memory latency — the inaccuracy the BASE_UPDATE improvement
        # removes (paper Sections 3.1.2 and 4.2).
        if not mapped:
            self.stats.forged_x0_dsts += 1
            return (REG_FORGED_X0,)
        if len(mapped) > 1:
            self.stats.dsts_dropped += len(mapped) - 1
        return (mapped[0],)

    def _infer_addressing(
        self, record: CvpRecord, registers: Optional[RegisterFile]
    ) -> AddressingInfo:
        """Addressing-mode inference hook (overridable for profiling)."""
        return infer_addressing(record, registers)

    def _final_sources(self, record: CvpRecord) -> Tuple[int, ...]:
        sources = [champsim_reg(reg) for reg in record.src_regs]
        sources = list(_dedupe(sources))
        if len(sources) > MAX_SRC_REGS:
            self.stats.src_regs_truncated += len(sources) - MAX_SRC_REGS
            sources = sources[:MAX_SRC_REGS]
        return tuple(sources)

    def _memory_addresses(
        self,
        record: CvpRecord,
        info: AddressingInfo,
        registers: Optional[RegisterFile],
    ) -> Tuple[int, ...]:
        """Memory slot contents for one access (1 or 2 addresses)."""
        address = record.mem_address or 0
        if Improvement.MEM_FOOTPRINT not in self.improvements:
            return (address,)
        if is_dc_zva(record):
            aligned = address & ~(CACHELINE_SIZE - 1)
            if aligned != address:
                self.stats.dc_zva_aligned += 1
            return (aligned,)
        lines = cachelines_touched(record, info, registers)
        if len(lines) == 2:
            self.stats.two_line_accesses += 1
            return (address, lines[1])
        return (address,)

    def _convert_nonbranch(
        self, record: CvpRecord, registers: Optional[RegisterFile]
    ) -> List[ChampSimInstr]:
        if not record.is_memory:
            return [
                ChampSimInstr(
                    ip=record.pc,
                    dst_regs=self._final_destinations(record, record.dst_regs),
                    src_regs=self._final_sources(record),
                )
            ]

        want_inference = (
            Improvement.BASE_UPDATE in self.improvements
            or Improvement.MEM_FOOTPRINT in self.improvements
        )
        info = (
            self._infer_addressing(record, registers)
            if want_inference
            else AddressingInfo(AddressingMode.NONE, None, None, record.dst_regs)
        )

        split = (
            Improvement.BASE_UPDATE in self.improvements and info.is_base_update
        )
        mem_dsts = info.memory_dst_regs if split else record.dst_regs
        dsts = self._final_destinations(record, mem_dsts)
        sources = self._final_sources(record)
        addresses = self._memory_addresses(record, info, registers)

        if not split:
            return [
                ChampSimInstr(
                    ip=record.pc,
                    dst_regs=dsts,
                    src_regs=sources,
                    src_mem=addresses if record.is_load else (),
                    dst_mem=addresses if record.is_store else (),
                )
            ]

        # Base-update split (paper Section 3.1.2): the ALU micro-op that
        # updates the base register, plus the memory micro-op.  Pre-index
        # puts the ALU first at the original PC and the memory access at
        # PC+2; post-index swaps them.
        self.stats.base_updates_split += 1
        assert info.base_reg is not None
        base = champsim_reg(info.base_reg)
        pre_index = info.mode is AddressingMode.PRE_INDEX
        if pre_index:
            self.stats.pre_index_splits += 1
        alu_ip = record.pc if pre_index else record.pc + 2
        mem_ip = record.pc + 2 if pre_index else record.pc

        alu_uop = ChampSimInstr(ip=alu_ip, dst_regs=(base,), src_regs=(base,))
        mem_uop = ChampSimInstr(
            ip=mem_ip,
            dst_regs=dsts,
            src_regs=sources,
            src_mem=addresses if record.is_load else (),
            dst_mem=addresses if record.is_store else (),
        )
        return [alu_uop, mem_uop] if pre_index else [mem_uop, alu_uop]


def convert_trace(
    source: Union[CvpTraceReader, Iterable[CvpRecord]],
    improvements: Improvement = Improvement.NONE,
) -> List[ChampSimInstr]:
    """Convert a whole CVP-1 trace in one call; return the instructions."""
    converter = Converter(improvements)
    return list(converter.convert(source))
