"""``repro-convert`` — command-line twin of the artifact's ``cvp2champsim``.

Usage::

    repro-convert -t trace.gz -i All_imps -o trace.champsimtrace.gz

Unlike the artifact binary (which writes to stdout), an explicit output
path is required; everything else mirrors the paper's appendix: ``-t``
selects the trace, ``-i`` one of the improvement sets (default
``No_imp``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core.improvements import IMPROVEMENT_NAMES, parse_improvements
from repro.core.pipeline import convert_file


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-convert",
        description="Convert a CVP-1 trace to the ChampSim format.",
    )
    parser.add_argument(
        "-t", "--trace", required=True, help="input CVP-1 trace (.gz ok)"
    )
    parser.add_argument(
        "-i",
        "--improvement",
        default="No_imp",
        help=(
            "improvement set to apply; one of: "
            + ", ".join(sorted(IMPROVEMENT_NAMES))
            + " (or '+'-joined singletons)"
        ),
    )
    parser.add_argument(
        "-o",
        "--output",
        required=True,
        help="output ChampSim trace (.gz/.xz compressed by suffix)",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true", help="print conversion stats"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        improvements = parse_improvements(args.improvement)
    except ValueError as exc:
        print(f"repro-convert: {exc}", file=sys.stderr)
        return 2
    result = convert_file(args.trace, args.output, improvements)
    if args.verbose:
        stats = result.stats
        print(f"records in:        {stats.records_in}")
        print(f"instructions out:  {stats.instructions_out}")
        print(f"base-update splits:{stats.base_updates_split}")
        print(f"two-line accesses: {stats.two_line_accesses}")
        print(f"flag dsts added:   {stats.flag_dsts_added}")
        print(f"branch rules:      {result.branch_rules.value}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
