"""``repro-convert`` — command-line twin of the artifact's ``cvp2champsim``.

Single-file mode mirrors the paper's appendix::

    repro-convert -t trace.gz -i All_imps -o trace.champsimtrace.gz

Suite mode is the on-disk twin of ``convert_traces_seq.sh``, with the
per-trace work fanned out across worker processes and previously
converted traces reused via sidecar stat files::

    repro-convert --suite CVP1public --output-dir traces/ --jobs 4

Unlike the artifact binary (which writes to stdout), an explicit output
path is required; everything else mirrors the paper's appendix: ``-t``
selects the trace, ``-i`` one of the improvement sets (default
``No_imp``).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro import obs
from repro.core.improvements import IMPROVEMENT_NAMES, parse_improvements
from repro.core.pipeline import ConversionResult, convert_file, convert_suite
from repro.obs import logutil


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-convert",
        description="Convert CVP-1 traces to the ChampSim format.",
    )
    parser.add_argument(
        "-t", "--trace", help="input CVP-1 trace (.gz ok; single-file mode)"
    )
    parser.add_argument(
        "-i",
        "--improvement",
        default="No_imp",
        help=(
            "improvement set to apply; one of: "
            + ", ".join(sorted(IMPROVEMENT_NAMES))
            + " (or '+'-joined singletons)"
        ),
    )
    parser.add_argument(
        "-o",
        "--output",
        help="output ChampSim trace (.gz/.xz compressed by suffix)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help=(
            "print conversion stats and raise the log level "
            "(-v INFO, -vv DEBUG)"
        ),
    )
    parser.add_argument(
        "--block-size",
        type=int,
        default=4096,
        help=(
            "records per conversion block of the fast path "
            "(default 4096; 0 = legacy record-at-a-time path; output is "
            "byte-identical either way)"
        ),
    )
    parser.add_argument(
        "--salvage",
        action="store_true",
        help=(
            "tolerate a truncated final record in the input trace: "
            "convert the complete leading records, warn, and report how "
            "many trailing bytes were dropped (single-file mode; "
            "requires the block path)"
        ),
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help=(
            "after converting, lint the source trace under the same "
            "improvement set (trace-lint rules; errors make the exit "
            "status non-zero)"
        ),
    )
    suite = parser.add_argument_group("suite mode")
    suite.add_argument(
        "--suite",
        choices=("CVP1public", "IPC1"),
        help="generate-and-convert a whole named suite instead of one file",
    )
    suite.add_argument(
        "--output-dir", help="directory for the suite's trace pairs"
    )
    suite.add_argument(
        "--instructions", type=int, default=20_000, help="trace length"
    )
    suite.add_argument(
        "--limit", type=int, default=None, help="cap the number of traces"
    )
    suite.add_argument(
        "--stride", type=int, default=1, help="sample every Nth suite trace"
    )
    suite.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for suite conversion (0 = all cores)",
    )
    suite.add_argument(
        "--no-cache",
        action="store_true",
        help="reconvert every trace even when sidecar stats match",
    )
    obs.add_obs_flags(parser)
    logutil.add_logging_flags(parser)
    return parser


def _lint_results(results: Sequence[ConversionResult]) -> int:
    """Lint each conversion's source trace; 0 unless any lint error."""
    from repro.analysis.engine import LintSummary
    from repro.analysis.reporters import render_text
    from repro.core.pipeline import lint_result

    reports = [lint_result(result) for result in results]
    print(render_text(reports))
    exit_code = LintSummary(reports=reports).exit_code()
    return exit_code if exit_code >= 2 else 0


def _main_suite(args: argparse.Namespace, improvements) -> int:
    from repro.experiments.cache import ConversionCache
    from repro.experiments.parallel import TaskFailure

    if not args.output_dir:
        print("repro-convert: --suite requires --output-dir", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ConversionCache(args.output_dir)
    jobs = None if args.jobs == 0 else args.jobs
    start = time.perf_counter()
    try:
        results = convert_suite(
            args.suite,
            args.output_dir,
            improvements,
            instructions=args.instructions,
            limit=args.limit,
            stride=args.stride,
            jobs=jobs,
            cache=cache,
            block_size=args.block_size,
        )
    except TaskFailure as exc:
        print(f"repro-convert: {exc}", file=sys.stderr)
        return 1
    for result in results:
        stats = result.stats
        print(
            f"{result.destination.name}: {stats.records_in} records -> "
            f"{stats.instructions_out} instructions "
            f"({result.branch_rules.value} rules)"
        )
    elapsed = time.perf_counter() - start
    print(f"[converted {len(results)} traces in {elapsed:.1f}s jobs={args.jobs}]")
    if cache is not None:
        print(f"[cache {cache.describe()}]")
    if args.lint:
        return _lint_results(results)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logutil.configure_from_args(args)
    obs.setup_cli("repro-convert", args)
    try:
        improvements = parse_improvements(args.improvement)
    except ValueError as exc:
        print(f"repro-convert: {exc}", file=sys.stderr)
        return 2

    if args.suite:
        if args.salvage:
            print(
                "repro-convert: --salvage applies to single-file mode only",
                file=sys.stderr,
            )
            return 2
        return _main_suite(args, improvements)

    if not args.trace or not args.output:
        print(
            "repro-convert: single-file mode requires -t/--trace and "
            "-o/--output (or use --suite)",
            file=sys.stderr,
        )
        return 2
    if args.salvage and not args.block_size:
        print(
            "repro-convert: --salvage requires the block path "
            "(--block-size > 0)",
            file=sys.stderr,
        )
        return 2
    result = convert_file(
        args.trace,
        args.output,
        improvements,
        block_size=args.block_size,
        salvage=args.salvage,
    )
    if result.salvaged_bytes:
        print(
            f"repro-convert: warning: dropped {result.salvaged_bytes} "
            "trailing bytes of an incomplete final record",
            file=sys.stderr,
        )
    if args.verbose:
        stats = result.stats
        print(f"records in:        {stats.records_in}")
        print(f"instructions out:  {stats.instructions_out}")
        print(f"base-update splits:{stats.base_updates_split}")
        print(f"two-line accesses: {stats.two_line_accesses}")
        print(f"flag dsts added:   {stats.flag_dsts_added}")
        print(f"branch rules:      {result.branch_rules.value}")
    if args.lint:
        return _lint_results([result])
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
