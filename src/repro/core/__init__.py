"""The paper's primary contribution: the ``cvp2champsim`` trace converter.

One conversion code path serves both the *original* converter (whose
design decisions — and bugs — the paper documents in Section 2) and the
*improved* converter, selected by the :class:`Improvement` flag set.  The
flag values and the named groups (``No_imp``, ``Memory_imps``,
``Branch_imps``, ``All_imps``) mirror the paper artifact's command line.

Typical use::

    from repro.core import Improvement, Converter, convert_trace

    instrs = convert_trace(cvp_records, improvements=Improvement.ALL)

    converter = Converter(Improvement.BASE_UPDATE | Improvement.CALL_STACK)
    for instr in converter.convert(cvp_records):
        ...
    print(converter.stats.base_updates_split)
"""

from repro.core.improvements import (
    Improvement,
    IMPROVEMENT_NAMES,
    parse_improvements,
    improvement_name,
)
from repro.core.convert import Converter, ConversionStats, convert_trace
from repro.core.pipeline import convert_file, convert_suite, ConversionResult

__all__ = [
    "Improvement",
    "IMPROVEMENT_NAMES",
    "parse_improvements",
    "improvement_name",
    "Converter",
    "ConversionStats",
    "convert_trace",
    "convert_file",
    "convert_suite",
    "ConversionResult",
]
