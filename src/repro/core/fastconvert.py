"""The fused block-conversion hot path (``repro-convert``'s default).

:meth:`repro.core.convert.Converter.convert` decodes, converts, encodes
and writes one record at a time through Python objects; this module
streams *blocks* of records (see :mod:`repro.cvp.blockio`) through the
same six improvements and emits one encoded ``bytes`` chunk per block,
with three structural speedups:

1. **Static-instruction memoization.**  Branch and register-only records
   convert identically for every dynamic instance of the same static
   instruction, so their packed 64-byte output and statistics deltas are
   computed once — *by calling the per-record converter itself* (a
   scratch-stats probe), so there is no second copy of the branch or
   destination-policy logic to drift — and replayed from a dict
   afterwards.
2. **Inlined memory-record conversion.**  Memory records depend on live
   register values (addressing-mode inference, store footprints) and
   cannot be memoized; their conversion is specialised here with the
   improvement flags hoisted to locals and the register-signature work
   shared through :func:`repro.cvp.addrmode._static_base_info`'s
   LRU memo.  Addressing inference and footprint math still go through
   :mod:`repro.cvp.addrmode` — only the converter's glue is inlined.
3. **Block-sized output.**  Instructions are packed straight into bytes
   with the precompiled ChampSim record struct and joined once per
   block; no intermediate :class:`~repro.champsim.trace.ChampSimInstr`
   objects exist on the fast path.

Differential tests (``tests/test_fastconvert.py``) pin the fast path
byte-for-byte and stat-for-stat against the per-record path on every
golden fixture and on property-based synthetic corpora.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Tuple, Union

from repro.champsim.regs import REG_FORGED_X0, champsim_reg
from repro.champsim.trace import _STRUCT, MAX_DST_REGS, MAX_SRC_REGS
from repro.core.convert import ConversionStats
from repro.core.improvements import Improvement
from repro.cvp.addrmode import (
    AddressingMode,
    _store_data_register_count,
    infer_addressing,
)
from repro.cvp.isa import CACHELINE_SIZE, InstClass
from repro.cvp.reader import CvpTraceReader, RegisterFile
from repro.cvp.record import CvpRecord

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.convert import Converter

#: Static-instruction memo bound.  One entry per unique (improvements,
#: class, registers, taken) signature — typically a few dozen per
#: improvement set; cleared wholesale if a pathological corpus exceeds
#: the bound so memory stays flat on million-record-scale inputs.
STATIC_MEMO_LIMIT = 1 << 20

#: Process-wide static-instruction memo, shared by every conversion.
#: Branch/register-only conversion output depends only on the memo key
#: (which includes the improvement bits), so entries stay valid across
#: files — suite conversions and repeated benchmarking hit warm.
_static_memo: Dict[tuple, "_MemoValue"] = {}


def clear_static_memo() -> None:
    """Drop every memoized static conversion (tests, long-lived tools)."""
    _static_memo.clear()


def static_memo_size() -> int:
    """Number of live static-conversion memo entries."""
    return len(_static_memo)

_U64_MASK = (1 << 64) - 1

#: Packer for the leading 8-byte ``ip`` field prepended to memoized
#: record bodies.
_PACK_IP = struct.Struct("<Q").pack

_LOAD = int(InstClass.LOAD)
_STORE = int(InstClass.STORE)
_FIRST_BRANCH = int(InstClass.COND_BRANCH)
_LAST_BRANCH = int(InstClass.UNCOND_INDIRECT_BRANCH)

# Indices of the delta counters a memoized conversion can carry,
# mirroring the ConversionStats field of the same name.
_DELTA_FIELDS = (
    "misclassified_calls_fixed",
    "misclassified_returns_emitted",
    "cond_branch_sources_kept",
    "x56_sources_replaced",
    "src_regs_truncated",
    "flag_dsts_added",
    "forged_x0_dsts",
    "dsts_dropped",
    "dst_regs_truncated",
)

#: Memo value: (packed output record *body* — everything after the
#: 8-byte instruction pointer —, branch category or None,
#: ((delta index, amount), ...)).  Branch and register-only conversions
#: depend on the PC only through the emitted ``ip`` field, so keying the
#: memo on the register signature alone (not the PC) collapses it to a
#: handful of entries per trace and hits on nearly every record.
_MemoValue = Tuple[bytes, object, Tuple[Tuple[int, int], ...]]


def _probe_convert(
    converter: "Converter", record: CvpRecord, registers: RegisterFile
) -> _MemoValue:
    """Convert one record through the per-record path, capturing deltas.

    Swaps a scratch :class:`ConversionStats` into the converter for the
    duration of the call, so the probe observes exactly the counters
    this record contributes — the memo replays them on every later hit.
    """
    from repro.champsim.trace import encode_block

    saved = converter.stats
    converter.stats = probe = ConversionStats()
    try:
        instrs = converter.convert_record(record, registers)
    finally:
        converter.stats = saved
    assert len(instrs) == 1  # branches/register-only records never split
    deltas = tuple(
        (index, value)
        for index, name in enumerate(_DELTA_FIELDS)
        if (value := getattr(probe, name))
    )
    category = None
    if probe.branch_counts:
        (category,) = probe.branch_counts
    return encode_block(instrs)[8:], category, deltas


class BlockConverter:
    """Carried state for one fused block-conversion stream.

    Owns the live register file, the per-stream source/destination memos,
    and the static-memo hit accounting, so a caller can drive conversion
    block by block — :func:`convert_blocks_to_bytes` for the plain fast
    path, :mod:`repro.core.obsconvert` to interleave sampled per-record
    profiling blocks between fused ones.  Register state carries across
    :meth:`convert_block` calls exactly as the per-record reader does.
    """

    def __init__(self, converter: "Converter"):
        self.converter = converter
        improvements = converter.improvements
        self.keep_all = Improvement.MEM_REGS in improvements
        self.base_update = Improvement.BASE_UPDATE in improvements
        self.footprint = Improvement.MEM_FOOTPRINT in improvements
        self.want_inference = self.base_update or self.footprint

        # Live register file, shared with the addressing inference; the
        # hot loop writes its backing list directly.
        self.registers = RegisterFile()

        self.imp_bits = improvements.value
        self.src_memo: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], int]] = {}
        self.dst_memo: Dict[
            Tuple[int, ...], Tuple[Tuple[int, ...], int, int, int]
        ] = {}

        #: Static-memo probes (branch/register-only records) and misses,
        #: kept here rather than in ConversionStats because they describe
        #: the fast path's machinery, not the conversion semantics.
        self.static_lookups = 0
        self.static_misses = 0

    def convert_block(self, block: List[CvpRecord]) -> bytes:
        """Convert one block of records into an encoded ChampSim chunk."""
        converter = self.converter
        keep_all = self.keep_all
        base_update = self.base_update
        footprint = self.footprint
        want_inference = self.want_inference
        registers = self.registers
        regvals = registers._values
        static_memo = _static_memo
        imp_bits = self.imp_bits
        src_memo = self.src_memo
        dst_memo = self.dst_memo

        pack = _STRUCT.pack
        pack_ip = _PACK_IP
        mask = _U64_MASK
        stats = converter.stats
        line_mask = ~(CACHELINE_SIZE - 1)

        parts: List[bytes] = []
        append = parts.append
        n_out = 0
        n_mem = 0
        n_static_miss = 0
        counters = [0] * len(_DELTA_FIELDS)
        branch_counts: Dict[object, int] = {}
        base_updates_split = 0
        pre_index_splits = 0
        two_line_accesses = 0
        dc_zva_aligned = 0

        for record in block:
            rdict = record.__dict__
            cls_value = rdict["inst_class"]
            dst_regs = rdict["dst_regs"]
            if _LOAD <= cls_value <= _STORE:
                # ----------------------------------------- memory record
                n_mem += 1
                src_regs = rdict["src_regs"]
                pc = rdict["pc"]
                address = rdict["mem_address"] or 0

                if want_inference:
                    info = infer_addressing(record, registers)
                    split = base_update and info.mode is not AddressingMode.NONE
                else:
                    info = None
                    split = False
                mem_dsts = info.memory_dst_regs if split else dst_regs

                hit = dst_memo.get(mem_dsts)
                if hit is None:
                    mapped = [champsim_reg(reg) for reg in mem_dsts]
                    forged = dropped = truncated = 0
                    if keep_all:
                        if len(mapped) > MAX_DST_REGS:
                            truncated = len(mapped) - MAX_DST_REGS
                            mapped = mapped[:MAX_DST_REGS]
                    elif not mapped:
                        forged = 1
                        mapped = [REG_FORGED_X0]
                    else:
                        dropped = len(mapped) - 1
                        mapped = mapped[:1]
                    hit = (tuple(mapped), forged, dropped, truncated)
                    dst_memo[mem_dsts] = hit
                dsts = hit[0]
                counters[6] += hit[1]
                counters[7] += hit[2]
                counters[8] += hit[3]

                shit = src_memo.get(src_regs)
                if shit is None:
                    seen = set()
                    sources: List[int] = []
                    for reg in src_regs:
                        mapped_reg = champsim_reg(reg)
                        if mapped_reg not in seen:
                            seen.add(mapped_reg)
                            sources.append(mapped_reg)
                    truncated = 0
                    if len(sources) > MAX_SRC_REGS:
                        truncated = len(sources) - MAX_SRC_REGS
                        sources = sources[:MAX_SRC_REGS]
                    shit = (tuple(sources), truncated)
                    src_memo[src_regs] = shit
                sources = shit[0]
                counters[4] += shit[1]

                if not footprint:
                    addr2 = 0
                elif cls_value == _STORE and rdict["mem_size"] == CACHELINE_SIZE:
                    # DC ZVA: one naturally-aligned line (Section 3.1.3).
                    aligned = address & line_mask
                    if aligned != address:
                        dc_zva_aligned += 1
                        address = aligned
                    addr2 = 0
                else:
                    # cachelines_touched/total_access_size, inlined: the
                    # data-register heuristic stays in addrmode, only the
                    # line arithmetic is unrolled here.
                    if cls_value == _LOAD:
                        size = rdict["mem_size"] * (
                            len(info.memory_dst_regs) or 1
                        )
                    else:
                        size = rdict["mem_size"] * _store_data_register_count(
                            record, registers
                        )
                    if size < 1:
                        size = 1
                    last = (address + size - 1) & line_mask
                    if last != address & line_mask:
                        two_line_accesses += 1
                        addr2 = last
                    else:
                        addr2 = 0

                s = sources + (0,) * (MAX_SRC_REGS - len(sources))
                d = dsts + (0,) * (MAX_DST_REGS - len(dsts))
                if cls_value == _LOAD:
                    dst_mem = (0, 0)
                    src_mem = (address, addr2, 0, 0)
                else:
                    dst_mem = (address, addr2)
                    src_mem = (0, 0, 0, 0)

                if split:
                    base_updates_split += 1
                    base = champsim_reg(info.base_reg)
                    if info.mode is AddressingMode.PRE_INDEX:
                        pre_index_splits += 1
                        alu_ip, mem_ip = pc, pc + 2
                    else:
                        alu_ip, mem_ip = pc + 2, pc
                    alu_packed = pack(
                        alu_ip & mask, 0, 0, base, 0, base, 0, 0, 0,
                        0, 0, 0, 0, 0, 0,
                    )
                    mem_packed = pack(
                        mem_ip & mask, 0, 0, *d, *s, *dst_mem, *src_mem
                    )
                    if info.mode is AddressingMode.PRE_INDEX:
                        append(alu_packed)
                        append(mem_packed)
                    else:
                        append(mem_packed)
                        append(alu_packed)
                    n_out += 2
                else:
                    append(pack(pc & mask, 0, 0, *d, *s, *dst_mem, *src_mem))
                    n_out += 1

                if want_inference and dst_regs:
                    for reg, value in zip(dst_regs, rdict["dst_values"]):
                        regvals[reg] = value
                continue

            # -------------------------------- branch / register-only record
            if _FIRST_BRANCH <= cls_value <= _LAST_BRANCH:
                key = (
                    imp_bits,
                    cls_value,
                    rdict["src_regs"],
                    dst_regs,
                    rdict["branch_taken"],
                )
            else:
                key = (imp_bits, cls_value, rdict["src_regs"], dst_regs)
            hit = static_memo.get(key)
            if hit is None:
                n_static_miss += 1
                if len(static_memo) >= STATIC_MEMO_LIMIT:
                    static_memo.clear()
                hit = _probe_convert(converter, record, registers)
                static_memo[key] = hit
            body, category, deltas = hit
            append(pack_ip(rdict["pc"] & mask) + body)
            n_out += 1
            if category is not None:
                branch_counts[category] = branch_counts.get(category, 0) + 1
            for index, value in deltas:
                counters[index] += value

            if want_inference and dst_regs:
                for reg, value in zip(dst_regs, rdict["dst_values"]):
                    regvals[reg] = value

        # Fold the block's locals into the shared ConversionStats.
        stats.records_in += len(block)
        stats.instructions_out += n_out
        for index, name in enumerate(_DELTA_FIELDS):
            if counters[index]:
                setattr(stats, name, getattr(stats, name) + counters[index])
        for category, count in branch_counts.items():
            stats.branch_counts[category] = (
                stats.branch_counts.get(category, 0) + count
            )
        stats.base_updates_split += base_updates_split
        stats.pre_index_splits += pre_index_splits
        stats.two_line_accesses += two_line_accesses
        stats.dc_zva_aligned += dc_zva_aligned

        self.static_lookups += len(block) - n_mem
        self.static_misses += n_static_miss
        return b"".join(parts)


def convert_blocks_to_bytes(
    converter: "Converter",
    source: Union[CvpTraceReader, Iterable[CvpRecord]],
    block_size: int = 4096,
) -> Iterator[bytes]:
    """Yield one encoded ChampSim byte chunk per block of CVP records.

    The concatenated chunks are byte-identical to encoding
    ``converter.convert(source)`` record by record, and
    ``converter.stats`` ends up equal as well.  Register state carries
    across block boundaries exactly as the per-record reader does.
    """
    reader = (
        source if isinstance(source, CvpTraceReader) else CvpTraceReader(source)
    )
    block_converter = BlockConverter(converter)
    for block in reader.blocks(block_size):
        yield block_converter.convert_block(block)
