"""File-to-file conversion driver (the ``repro-convert`` backend).

Mirrors the artifact workflow::

    ./cvp2champsim -i All_imps -t srv_0.gz > srv_0.champsimtrace

but as a library function that returns the conversion statistics alongside
the output path, so the experiment harness and the tests can assert on
what the conversion actually did.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.champsim.branch_info import BranchRules
from repro.champsim.trace import ChampSimTraceWriter
from repro.core.convert import ConversionStats, Converter
from repro.core.improvements import Improvement
from repro.cvp.reader import CvpTraceReader


@dataclass(frozen=True)
class ConversionResult:
    """Outcome of one file conversion."""

    source: Path
    destination: Path
    improvements: Improvement
    #: ChampSim branch-deduction rules the output trace requires.
    branch_rules: BranchRules
    stats: ConversionStats


def convert_file(
    source: Union[str, Path],
    destination: Union[str, Path],
    improvements: Improvement = Improvement.NONE,
) -> ConversionResult:
    """Convert a CVP-1 trace file to a ChampSim trace file.

    Compression is chosen by suffix on both ends (``.gz`` for CVP input,
    ``.gz``/``.xz`` for ChampSim output).
    """
    source = Path(source)
    destination = Path(destination)
    converter = Converter(improvements)
    with CvpTraceReader(source) as reader:
        with ChampSimTraceWriter(destination) as writer:
            writer.write_all(converter.convert(reader))
    return ConversionResult(
        source=source,
        destination=destination,
        improvements=improvements,
        branch_rules=converter.required_branch_rules,
        stats=converter.stats,
    )


def convert_suite(
    suite: str,
    output_dir: Union[str, Path],
    improvements: Improvement = Improvement.NONE,
    instructions: int = 20_000,
    limit: Optional[int] = None,
    stride: int = 1,
) -> List[ConversionResult]:
    """Generate-and-convert a whole named suite to disk.

    The on-disk twin of the artifact's ``convert_traces_seq.sh``:
    ``suite`` is ``"CVP1public"`` or ``"IPC1"``; each trace is synthesised,
    written as ``<name>.cvp.gz`` and converted to
    ``<name>.champsimtrace.gz`` under ``output_dir``.
    """
    from repro.cvp.writer import write_trace
    from repro.synth.suite import cvp1_public_suite, ipc1_suite

    suites = {"CVP1public": cvp1_public_suite, "IPC1": ipc1_suite}
    if suite not in suites:
        raise ValueError(f"unknown suite {suite!r}; known: {sorted(suites)}")
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    results: List[ConversionResult] = []
    for name, records in suites[suite](
        instructions=instructions, limit=limit, stride=stride
    ):
        cvp_path = output_dir / f"{name}.cvp.gz"
        out_path = output_dir / f"{name}.champsimtrace.gz"
        write_trace(records, cvp_path)
        results.append(convert_file(cvp_path, out_path, improvements))
    return results
