"""File-to-file conversion driver (the ``repro-convert`` backend).

Mirrors the artifact workflow::

    ./cvp2champsim -i All_imps -t srv_0.gz > srv_0.champsimtrace

but as a library function that returns the conversion statistics alongside
the output path, so the experiment harness and the tests can assert on
what the conversion actually did.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, List, Optional, Union

from repro.champsim.branch_info import BranchRules
from repro.champsim.trace import ChampSimTraceWriter
from repro.core.convert import ConversionStats, Converter
from repro.core.improvements import Improvement
from repro.cvp.reader import CvpTraceReader

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.cache import LintCache
    from repro.analysis.engine import LintReport
    from repro.experiments.cache import ConversionCache


@dataclass(frozen=True)
class ConversionResult:
    """Outcome of one file conversion."""

    source: Path
    destination: Path
    improvements: Improvement
    #: ChampSim branch-deduction rules the output trace requires.
    branch_rules: BranchRules
    stats: ConversionStats
    #: Trailing bytes of an incomplete final record dropped by salvage
    #: mode (0 = the source trace was intact or salvage was off).
    salvaged_bytes: int = 0


#: Records per conversion block of the default fast path.
DEFAULT_BLOCK_SIZE = 4096


def convert_file(
    source: Union[str, Path],
    destination: Union[str, Path],
    improvements: Improvement = Improvement.NONE,
    block_size: int = DEFAULT_BLOCK_SIZE,
    salvage: bool = False,
) -> ConversionResult:
    """Convert a CVP-1 trace file to a ChampSim trace file.

    Compression is chosen by suffix on both ends (``.gz`` for CVP input,
    ``.gz``/``.xz`` for ChampSim output).

    ``block_size`` selects the block-based fast path (records per
    block); pass ``0`` to force the legacy record-at-a-time path.  Both
    paths produce byte-identical output and statistics.

    ``salvage`` tolerates a truncated final source record: the complete
    leading records convert normally, a warning is logged, and the
    result's :attr:`~ConversionResult.salvaged_bytes` reports how many
    trailing bytes were dropped.  Salvage requires the block path
    (``block_size > 0``).
    """
    from repro import obs

    if salvage and not block_size:
        raise ValueError("salvage requires the block path (block_size > 0)")
    source = Path(source)
    destination = Path(destination)
    converter = Converter(improvements)
    with obs.span(
        "convert.file",
        source=str(source),
        improvements=improvements.value,
    ) as file_span:
        with CvpTraceReader(source, salvage=salvage) as reader:
            with ChampSimTraceWriter(destination) as writer:
                if block_size:
                    for chunk in converter.convert_to_bytes(reader, block_size):
                        writer.write_encoded(chunk)
                else:
                    writer.write_all(converter.convert(reader))
            salvaged = int(reader.salvage_info.get("trailing_bytes", 0))
        file_span.set(
            records=converter.stats.records_in,
            instructions=converter.stats.instructions_out,
        )
    return ConversionResult(
        source=source,
        destination=destination,
        improvements=improvements,
        branch_rules=converter.required_branch_rules,
        stats=converter.stats,
        salvaged_bytes=salvaged,
    )


def lint_result(
    result: ConversionResult,
    cache: Optional["LintCache"] = None,
) -> "LintReport":
    """Lint a finished conversion's *source* trace under its improvements.

    Replays the source through :class:`~repro.analysis.engine.TraceLinter`
    configured exactly as the conversion was (improvement set and branch
    rules), so the report states whether the file just produced preserves
    the paper's invariants.  Backs the ``repro-convert --lint`` flag.
    """
    from repro.analysis.cache import lint_file_cached
    from repro.analysis.engine import TraceLinter

    linter = TraceLinter(
        result.improvements, branch_rules=result.branch_rules
    )
    return lint_file_cached(linter, result.source, cache)


@dataclass(frozen=True)
class _SuiteTask:
    """One generate-write-convert unit of :func:`convert_suite`.

    Must stay picklable (shipped to worker processes); the trace is
    regenerated in the worker from ``generator`` rather than serialised.
    """

    name: str
    generator: str
    instructions: int
    improvements: Improvement
    output_dir: str
    block_size: int = DEFAULT_BLOCK_SIZE


def _convert_suite_task(task: _SuiteTask) -> ConversionResult:
    """Worker entry point: synthesise, write the CVP trace, convert it."""
    from repro.cvp.writer import write_trace
    from repro.synth.generator import make_trace

    records = make_trace(task.generator, task.instructions)
    output_dir = Path(task.output_dir)
    cvp_path = output_dir / f"{task.name}.cvp.gz"
    out_path = output_dir / f"{task.name}.champsimtrace.gz"
    write_trace(records, cvp_path)
    return convert_file(
        cvp_path, out_path, task.improvements, block_size=task.block_size
    )


def convert_suite(
    suite: str,
    output_dir: Union[str, Path],
    improvements: Improvement = Improvement.NONE,
    instructions: int = 20_000,
    limit: Optional[int] = None,
    stride: int = 1,
    jobs: int = 1,
    cache: Optional["ConversionCache"] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> List[ConversionResult]:
    """Generate-and-convert a whole named suite to disk.

    The on-disk twin of the artifact's ``convert_traces_seq.sh``:
    ``suite`` is ``"CVP1public"`` or ``"IPC1"``; each trace is synthesised,
    written as ``<name>.cvp.gz`` and converted to
    ``<name>.champsimtrace.gz`` under ``output_dir``.

    ``jobs`` fans the per-trace work out across processes (results keep
    suite order; ``None`` = all cores).  With a
    :class:`~repro.experiments.cache.ConversionCache`, traces whose
    sidecar key matches and whose output file is intact are skipped.
    """
    from repro.synth.suite import (
        IPC1_TO_CVP1,
        cvp1_public_trace_names,
        ipc1_trace_names,
    )

    if suite == "CVP1public":
        names = cvp1_public_trace_names()
        generator_of = {name: name for name in cvp1_public_trace_names()}
    elif suite == "IPC1":
        names = ipc1_trace_names()
        generator_of = dict(IPC1_TO_CVP1)
    else:
        raise ValueError(
            f"unknown suite {suite!r}; known: ['CVP1public', 'IPC1']"
        )
    names = names[::stride]
    if limit is not None:
        names = names[:limit]
    output_dir = Path(output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)

    resolved: dict = {}
    tasks: List[_SuiteTask] = []
    task_indices: List[int] = []
    for index, name in enumerate(names):
        if cache is not None:
            from repro.experiments.cache import conversion_key

            key = conversion_key(
                name, generator_of[name], instructions, improvements
            )
            hit = cache.load(name, key)
            if hit is not None:
                resolved[index] = hit
                continue
        tasks.append(
            _SuiteTask(
                name=name,
                generator=generator_of[name],
                instructions=instructions,
                improvements=improvements,
                output_dir=str(output_dir),
                block_size=block_size,
            )
        )
        task_indices.append(index)

    if tasks:
        from repro.experiments.parallel import run_tasks

        outcomes = run_tasks(tasks, jobs=jobs, task_fn=_convert_suite_task)
        for task, index, result in zip(tasks, task_indices, outcomes):
            if cache is not None:
                from repro.experiments.cache import conversion_key

                key = conversion_key(
                    task.name, task.generator, instructions, improvements
                )
                cache.store(task.name, key, result)
            resolved[index] = result

    return [resolved[index] for index in range(len(names))]
