"""The six converter improvements of the paper's Table 1, as a flag set.

==================  ========  ====================================================
Flag                Category  Paper description
==================  ========  ====================================================
``MEM_REGS``        Memory    convey all register writes of memory instructions
``BASE_UPDATE``     Memory    base registers ready at ALU latency, not memory
``MEM_FOOTPRINT``   Memory    access every cacheline the instruction touches
``CALL_STACK``      Branch    fix the identification of returns
``BRANCH_REGS``     Branch    convey the registers branches actually read
``FLAG_REG``        Branch    flags as destination of destination-less ALU/FP ops
==================  ========  ====================================================

The named sets match the artifact's CLI: ``No_imp``, ``Memory_imps``,
``Branch_imps``, ``All_imps`` plus the ``imp_*`` singletons.
"""

from __future__ import annotations

import enum
from typing import Dict


class Improvement(enum.Flag):
    """Toggleable conversion improvements (paper Table 1)."""

    NONE = 0
    MEM_REGS = enum.auto()
    BASE_UPDATE = enum.auto()
    MEM_FOOTPRINT = enum.auto()
    CALL_STACK = enum.auto()
    BRANCH_REGS = enum.auto()
    FLAG_REG = enum.auto()

    MEMORY = MEM_REGS | BASE_UPDATE | MEM_FOOTPRINT
    BRANCH = CALL_STACK | BRANCH_REGS | FLAG_REG
    ALL = MEMORY | BRANCH


#: Artifact-CLI spelling of every selectable improvement set.
IMPROVEMENT_NAMES: Dict[str, Improvement] = {
    "No_imp": Improvement.NONE,
    "imp_mem-regs": Improvement.MEM_REGS,
    "imp_base-update": Improvement.BASE_UPDATE,
    "imp_mem-footprint": Improvement.MEM_FOOTPRINT,
    "imp_call-stack": Improvement.CALL_STACK,
    "imp_branch-regs": Improvement.BRANCH_REGS,
    "imp_flag-regs": Improvement.FLAG_REG,
    "Memory_imps": Improvement.MEMORY,
    "Branch_imps": Improvement.BRANCH,
    "All_imps": Improvement.ALL,
}

_CANONICAL_NAME = {
    Improvement.NONE: "No_imp",
    Improvement.MEM_REGS: "imp_mem-regs",
    Improvement.BASE_UPDATE: "imp_base-update",
    Improvement.MEM_FOOTPRINT: "imp_mem-footprint",
    Improvement.CALL_STACK: "imp_call-stack",
    Improvement.BRANCH_REGS: "imp_branch-regs",
    Improvement.FLAG_REG: "imp_flag-regs",
    Improvement.MEMORY: "Memory_imps",
    Improvement.BRANCH: "Branch_imps",
    Improvement.ALL: "All_imps",
}


def parse_improvements(name: str) -> Improvement:
    """Parse an artifact-CLI improvement name, case-insensitively.

    Also accepts ``+``-joined combinations of the singleton names, e.g.
    ``"imp_base-update+imp_call-stack"``.
    """
    lookup = {key.lower(): value for key, value in IMPROVEMENT_NAMES.items()}
    combined = Improvement.NONE
    for part in name.split("+"):
        key = part.strip().lower()
        if key not in lookup:
            known = ", ".join(sorted(IMPROVEMENT_NAMES))
            raise ValueError(f"unknown improvement {part!r}; known: {known}")
        combined |= lookup[key]
    return combined


def improvement_name(improvements: Improvement) -> str:
    """Canonical artifact-CLI name of an improvement set."""
    if improvements in _CANONICAL_NAME:
        return _CANONICAL_NAME[improvements]
    parts = [
        _CANONICAL_NAME[flag]
        for flag in (
            Improvement.MEM_REGS,
            Improvement.BASE_UPDATE,
            Improvement.MEM_FOOTPRINT,
            Improvement.CALL_STACK,
            Improvement.BRANCH_REGS,
            Improvement.FLAG_REG,
        )
        if flag in improvements
    ]
    return "+".join(parts) if parts else "No_imp"
