"""Observability-instrumented twin of the fused conversion fast path.

:func:`convert_blocks_to_bytes_observed` produces byte-identical output
and identical :class:`~repro.core.convert.ConversionStats` to
:func:`repro.core.fastconvert.convert_blocks_to_bytes` (both paths are
pinned equal by the differential tests), while attributing where convert
time goes:

- **Block decode** is measured exactly, by timing the reader's block
  generator between yields.
- **Transform + encode** is measured exactly per block (histogram +
  running total).
- **Per-improvement attribution** cannot be measured inside the fused
  loop without wrecking its throughput, so it is *sampled*: every
  :data:`PROFILE_SAMPLE_INTERVAL`-th block stages its first
  :data:`PROFILE_CHUNK` records through a :class:`ProfilingConverter` —
  the per-record converter with wall-timed improvement hooks — and the
  rest of the block through the fused path.  The staged records' stage
  fractions are then scaled to the whole transform time and emitted as
  child spans marked ``estimated``.  Staging reuses the real per-record
  code (same instance state rules as the fused loop), so sampled blocks
  still produce identical bytes and stats.

Wired in by :meth:`repro.core.convert.Converter.convert_to_bytes`
whenever observability is enabled; the disabled path never imports this
module.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Union

from repro import obs
from repro.champsim.trace import encode_block
from repro.core.convert import _ALU_CLASSES, Converter
from repro.core.fastconvert import BlockConverter
from repro.core.improvements import Improvement
from repro.cvp.reader import CvpTraceReader
from repro.cvp.record import CvpRecord

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.cvp.addrmode import AddressingInfo
    from repro.cvp.reader import RegisterFile

#: Every Nth block stages a record prefix through the profiler.
PROFILE_SAMPLE_INTERVAL = 4
#: Records staged per sampled block.  The per-record profiling path is
#: several times slower than the fused loop, and block 0 is always
#: sampled, so this bounds the worst-case overhead on single-block
#: streams while staying large enough that every improvement stage a
#: short fixture exercises shows up in the attribution.  On real
#: workloads (many 4096-record blocks) staged records amortise to
#: ~0.2%; the CI gate holds obs-enabled throughput within 10% of
#: disabled on a 20k-record trace.
PROFILE_CHUNK = 32

#: Stage keys, one per Table 1 improvement, plus encode.
STAGE_KEYS = (
    "call_stack",
    "branch_regs",
    "mem_regs",
    "flag_reg",
    "base_update",
    "mem_footprint",
    "encode",
)

#: Buckets sized for per-block transform times (seconds).
_BLOCK_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 1.0,
)


class ProfilingConverter(Converter):
    """Per-record converter whose improvement hooks are wall-timed.

    Produces exactly the instructions and stats deltas of
    :class:`Converter` (it *is* one), accumulating per-stage time into
    :attr:`stage_time` on the side.
    """

    def __init__(self, improvements: Improvement):
        super().__init__(improvements)
        self.stage_time: Dict[str, float] = {key: 0.0 for key in STAGE_KEYS}

    def _classify_branch(self, record: CvpRecord):
        start = perf_counter()
        try:
            return super()._classify_branch(record)
        finally:
            self.stage_time["call_stack"] += perf_counter() - start

    def _branch_sources(self, record: CvpRecord, mandatory, synthetic):
        start = perf_counter()
        try:
            return super()._branch_sources(record, mandatory, synthetic)
        finally:
            self.stage_time["branch_regs"] += perf_counter() - start

    def _final_destinations(self, record: CvpRecord, dst_regs):
        # FLAG_REG governs destination-less ALU records; MEM_REGS governs
        # everything else this hook decides.
        key = (
            "flag_reg"
            if record.inst_class in _ALU_CLASSES and not record.dst_regs
            else "mem_regs"
        )
        start = perf_counter()
        try:
            return super()._final_destinations(record, dst_regs)
        finally:
            self.stage_time[key] += perf_counter() - start

    def _infer_addressing(
        self, record: CvpRecord, registers: "RegisterFile"
    ) -> "AddressingInfo":
        start = perf_counter()
        try:
            return super()._infer_addressing(record, registers)
        finally:
            self.stage_time["base_update"] += perf_counter() - start

    def _memory_addresses(self, record: CvpRecord, info, registers):
        start = perf_counter()
        try:
            return super()._memory_addresses(record, info, registers)
        finally:
            self.stage_time["mem_footprint"] += perf_counter() - start


def convert_blocks_to_bytes_observed(
    converter: Converter,
    source: Union[CvpTraceReader, Iterable[CvpRecord]],
    block_size: int = 4096,
) -> Iterator[bytes]:
    """Instrumented :func:`~repro.core.fastconvert.convert_blocks_to_bytes`.

    Same yielded bytes, same final ``converter.stats``; additionally
    emits a ``convert.stream`` span with measured ``convert.block_decode``
    and estimated per-improvement / encode children, plus record/block/
    memo counters and a per-block transform-time histogram.
    """
    reader = (
        source if isinstance(source, CvpTraceReader) else CvpTraceReader(source)
    )
    block_converter = BlockConverter(converter)
    profiler = ProfilingConverter(converter.improvements)
    # Share the stats object: staged records contribute the exact deltas
    # the fused loop would have folded (pinned by the differential tests).
    profiler.stats = converter.stats

    records_total = obs.counter(
        "repro_convert_records_total", "CVP records converted."
    )
    blocks_total = obs.counter(
        "repro_convert_blocks_total", "Record blocks converted."
    )
    instrs_total = obs.counter(
        "repro_convert_instructions_total", "ChampSim instructions emitted."
    )
    profiled_total = obs.counter(
        "repro_convert_profiled_records_total",
        "Records staged through the profiling converter.",
    )
    block_seconds = obs.histogram(
        "repro_convert_block_seconds",
        "Per-block transform+encode time.",
        buckets=_BLOCK_BUCKETS,
    )

    want_inference = block_converter.want_inference
    regvals = block_converter.registers._values
    # The converter's stats accumulate across files; count this stream's
    # contribution only.
    instrs_at_start = converter.stats.instructions_out

    with obs.span(
        "convert.stream",
        block_size=block_size,
        improvements=converter.improvements.value,
    ) as stream:
        stream_start = perf_counter()
        decode_time = 0.0
        transform_time = 0.0
        staged_time = 0.0
        n_blocks = 0
        n_records = 0
        n_staged = 0

        blocks = reader.blocks(block_size)
        while True:
            start = perf_counter()
            block = next(blocks, None)
            decode_time += perf_counter() - start
            if block is None:
                break

            start = perf_counter()
            if n_blocks % PROFILE_SAMPLE_INTERVAL == 0:
                prefix, rest = block[:PROFILE_CHUNK], block[PROFILE_CHUNK:]
                parts: List[bytes] = []
                stats = converter.stats
                registers = block_converter.registers
                staged_instrs: List = []
                for record in prefix:
                    staged_instrs.extend(
                        profiler.convert_record(record, registers)
                    )
                    if want_inference and record.dst_regs:
                        for reg, value in zip(
                            record.dst_regs, record.dst_values
                        ):
                            regvals[reg] = value
                # One encode for the whole prefix: identical bytes to
                # per-record encodes (fixed-size records), one timing.
                encode_start = perf_counter()
                parts.append(encode_block(staged_instrs))
                profiler.stage_time["encode"] += perf_counter() - encode_start
                stats.records_in += len(prefix)
                stats.instructions_out += len(staged_instrs)
                if rest:
                    parts.append(block_converter.convert_block(rest))
                chunk = b"".join(parts)
                n_staged += len(prefix)
                staged_time += perf_counter() - start
            else:
                chunk = block_converter.convert_block(block)
            elapsed = perf_counter() - start
            transform_time += elapsed
            block_seconds.observe(elapsed)

            n_blocks += 1
            n_records += len(block)
            yield chunk

        # Exact decode measurement: its own child span.
        obs.emit_child_span(
            "convert.block_decode",
            stream_start,
            decode_time,
            {"blocks": n_blocks},
        )

        # Sampled attribution: scale staged stage fractions to the whole
        # transform time.  staged_total is the staged records' *own*
        # wall time, so fractions survive the per-record-path slowdown.
        staged_total = sum(profiler.stage_time.values())
        overhead = staged_time - staged_total  # unhooked per-record glue
        if staged_total > 0.0 and staged_time > 0.0:
            scale = transform_time / staged_time
            for key in STAGE_KEYS:
                stage = profiler.stage_time[key]
                if stage <= 0.0:
                    continue
                name = (
                    "convert.encode"
                    if key == "encode"
                    else f"convert.improvement.{key}"
                )
                obs.emit_child_span(
                    name,
                    stream_start,
                    stage * scale,
                    {"estimated": True, "sampled_records": n_staged},
                )
            if overhead > 0.0:
                obs.emit_child_span(
                    "convert.transform_base",
                    stream_start,
                    overhead * scale,
                    {"estimated": True, "sampled_records": n_staged},
                )

        stream.set(
            blocks=n_blocks,
            records=n_records,
            transform_seconds=round(transform_time, 6),
            decode_seconds=round(decode_time, 6),
            profiled_records=n_staged,
        )

    records_total.inc(n_records)
    blocks_total.inc(n_blocks)
    instrs_total.inc(converter.stats.instructions_out - instrs_at_start)
    profiled_total.inc(n_staged)

    lookups = block_converter.static_lookups
    hits = lookups - block_converter.static_misses
    obs.counter(
        "repro_convert_static_memo_lookups_total",
        "Static-instruction memo probes.",
    ).inc(lookups)
    obs.counter(
        "repro_convert_static_memo_hits_total",
        "Static-instruction memo hits.",
    ).inc(hits)
