"""Shared exception types for the trace tool-chain.

Both trace formats — variable-length CVP-1 records and fixed 64-byte
ChampSim records — can be handed corrupt or truncated bytes, and every
layer above them (converter, linter, simulator, bench harness) wants to
catch "the input file is malformed" with one ``except`` clause.
:class:`TraceFormatError` is that common root.

:mod:`repro.cvp.encoding` re-exports it under its historical location,
and :class:`repro.champsim.trace.ChampSimTraceError` subclasses it, so
existing ``except`` clauses keep working unchanged.
"""

from __future__ import annotations


class TraceFormatError(Exception):
    """Raised when a byte stream does not decode as a trace record."""
