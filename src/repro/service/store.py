"""Content-addressed artifact store — the service's persistence layer.

One blob API for every artifact the pipeline persists.  The store grew
out of three sibling caches (:class:`~repro.experiments.cache.ResultCache`,
:class:`~repro.analysis.cache.LintCache`, and the conversion sidecars)
that each reimplemented the same contract; the contract now lives here
once and the caches are thin views over it:

- **keyed**: every artifact lives under the SHA-256 of a canonical JSON
  encoding of its inputs (the caller computes the key; the store never
  interprets it);
- **schema-stamped**: every envelope records its kind's schema version,
  and a mismatch on load is a plain miss (stale, not corrupt) so layout
  changes never misdecode old bytes;
- **digest-verified**: every envelope records the SHA-256 of its
  canonical body, recomputed on load, so a bit-flip or truncation
  anywhere in the payload — even one that still parses as valid JSON —
  is *detected* instead of served as a wrong-value hit;
- **quarantining**: damaged entries are moved to ``<root>/quarantine/``
  with a structured ``cache.corrupt`` obs event and counted as misses,
  so a corrupt blob costs exactly one recomputation and leaves forensic
  evidence, never a re-parse loop or a silent wrong answer.

Layout (two-level fan-out keeps directories small)::

    <root>/<kind>/<key[:2]>/<key>.json     # runs/, lint/, artifacts/
    <root>/quarantine/                     # damaged entries, preserved

The root defaults to ``~/.cache/repro`` and is overridden by the
``REPRO_CACHE_DIR`` environment variable, so the service and the one-shot
CLIs share artifacts byte-for-byte.

This module sits *below* :mod:`repro.experiments` in the import graph —
it must not import anything from the experiment or analysis packages
(they import it at startup).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro import faults
from repro.obs.instruments import CacheCounters

#: Envelope schema for rendered figure/table artifacts.  Bump on any
#: change to the artifact payload layout; old entries become plain
#: misses rather than misdecoded text.
ARTIFACT_SCHEMA = 1


def default_store_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro"


# ----------------------------------------------------------------------
# shared primitives (canonical home; the caches re-export them)
# ----------------------------------------------------------------------


def file_digest(path: Union[str, Path]) -> str:
    """SHA-256 of a file's bytes (the on-disk, possibly compressed form)."""
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 16), b""):
            digest.update(chunk)
    return digest.hexdigest()


def payload_digest(payload: Any) -> str:
    """SHA-256 of the canonical JSON encoding of ``payload``.

    Stored alongside every envelope and recomputed on load, so damage
    anywhere in the payload — even a bit-flip that still parses as valid
    JSON — is detected instead of served as a wrong-value hit.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def atomic_write_json(path: Path, payload: Dict[str, Any]) -> None:
    """Write JSON via a same-directory temp file + rename.

    Concurrent writers (parallel workers, fleet shards, parallel CI
    jobs) race benignly: both write the same content-addressed payload
    and the last rename wins.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)


def _emit_cache_corrupt(
    cache: str, key: str, path: Path, moved: str, reason: str
) -> None:
    """Structured ``cache.corrupt`` event (no-op when obs is off)."""
    from repro import obs

    if not obs.enabled():
        return
    obs.emit_event(
        "cache.corrupt",
        {
            "cache": cache,
            "key": key,
            "path": str(path),
            "quarantined_to": moved,
            "reason": reason,
        },
    )


def quarantine_entry(
    path: Path,
    quarantine_dir: Path,
    counters: CacheCounters,
    key: str,
    reason: str,
) -> None:
    """Move a corrupt entry aside; record what happened and why.

    Quarantining (instead of deleting or leaving in place) serves two
    needs at once: the bad bytes are preserved for diagnosis, and the
    next lookup of the key is a clean miss-then-store rather than a
    re-parse of the same damaged file on every run.  The move itself is
    best-effort — a store on failing storage must still degrade to a
    miss, never an exception.
    """
    try:
        quarantine_dir.mkdir(parents=True, exist_ok=True)
        destination = quarantine_dir / path.name
        os.replace(path, destination)
        _emit_cache_corrupt(counters.cache, key, path, str(destination), reason)
    except OSError as exc:
        _emit_cache_corrupt(
            counters.cache,
            key,
            path,
            "",
            f"{reason}; quarantine move failed: {exc}",
        )
    counters.quarantine()


def describe_counters(
    counters: CacheCounters,
    root: Union[str, Path],
    stores: bool = True,
    store_errors: bool = False,
    quarantined: bool = True,
) -> str:
    """The shared one-line counter summary every cache/store reports.

    One implementation for the ``hits=H misses=M [stores=S]
    [store_errors=E] [quarantined=Q] dir=<root>`` strings that
    :class:`~repro.experiments.cache.ResultCache`,
    :class:`~repro.experiments.cache.ConversionCache`, and
    :class:`~repro.analysis.cache.LintCache` used to assemble by hand.
    The flags mirror each cache's historic shape — the strings are CLI
    output contracts pinned by tests, so optional segments only appear
    where (and when) they always did: ``stores`` unconditionally when
    enabled, ``store_errors``/``quarantined`` only when non-zero.
    """
    out = counters.describe_hit_miss()
    if stores:
        out += f" stores={counters.stores}"
    if store_errors and counters.store_errors:
        out += f" store_errors={counters.store_errors}"
    if quarantined and counters.quarantined:
        out += f" quarantined={counters.quarantined}"
    return f"{out} dir={root}"


# ----------------------------------------------------------------------
# blob store
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BlobKind:
    """One artifact family's on-disk identity.

    Args:
        name: Subdirectory under the store root (``runs``, ``lint``,
            ``artifacts``).
        schema: Envelope schema stamp; a stored envelope whose stamp
            differs is a plain miss.
        body_field: Envelope field holding the payload (kept per-kind —
            ``result``/``report``/``artifact`` — so the pre-store cache
            files remain byte-identical and readable both ways).
    """

    name: str
    schema: int
    body_field: str


#: Rendered figure/table text keyed by the query fingerprint.
ARTIFACT_KIND = BlobKind(
    name="artifacts", schema=ARTIFACT_SCHEMA, body_field="artifact"
)


class BlobStore:
    """Keyed, schema-stamped, digest-verified blobs of one kind.

    Counter note: failed writes (unwritable/full store dir) are counted
    as ``store_errors``, never raised — the store is an optimisation
    layer and its callers must survive a broken directory.
    """

    def __init__(
        self,
        root: Optional[Union[str, Path]],
        kind: BlobKind,
        counters: Optional[CacheCounters] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self.kind = kind
        self.counters = (
            counters if counters is not None else CacheCounters(kind.name)
        )

    def path(self, key: str) -> Path:
        return self.root / self.kind.name / key[:2] / f"{key}.json"

    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def load(
        self,
        key: str,
        decode: Optional[Callable[[Any], Any]] = None,
    ) -> Optional[Any]:
        """The stored body for ``key``, or None (counted as hit/miss).

        Absent and schema-mismatched envelopes are plain misses.
        Corrupt envelopes — unparseable JSON, invalid UTF-8, missing
        fields, a digest that no longer matches the body, or a body
        ``decode`` rejects — are quarantined (moved to
        ``<root>/quarantine/`` with a ``cache.corrupt`` event) and then
        counted as misses, so they cost one recomputation and never
        surface as a wrong-value hit.
        """
        path = self.path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            # Absent (or unreadable) entry: the ordinary cold miss.
            self.counters.miss()
            return None
        try:
            # Decode inside the corruption guard: a flipped high byte
            # makes the entry invalid UTF-8, which is damage, not a
            # cold store (UnicodeDecodeError is a ValueError).
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("payload is not a JSON object")
            if payload.get("schema") != self.kind.schema:
                # Stale schema, not damage: a plain miss, no quarantine.
                self.counters.miss()
                return None
            body = payload[self.kind.body_field]
            if payload.get("digest") != payload_digest(body):
                raise ValueError("payload digest mismatch")
            value = body if decode is None else decode(body)
        except (ValueError, KeyError, TypeError) as exc:
            quarantine_entry(
                path,
                self.quarantine_dir(),
                self.counters,
                key,
                f"{type(exc).__name__}: {exc}",
            )
            self.counters.miss()
            return None
        self.counters.hit()
        return value

    def store(self, key: str, body: Any) -> None:
        """Persist ``body`` (a JSON-safe payload) under ``key``."""
        payload = {
            "schema": self.kind.schema,
            "digest": payload_digest(body),
            self.kind.body_field: body,
        }
        path = self.path(key)
        try:
            atomic_write_json(path, payload)
        except OSError:
            self.counters.store_error()
            return
        self.counters.store()
        faults.store_fault(path)

    def describe(self) -> str:
        """Counter summary for CLI/CI reporting."""
        return describe_counters(
            self.counters, self.root, store_errors=True
        )


# ----------------------------------------------------------------------
# the unified store
# ----------------------------------------------------------------------


def artifact_key(kind: str, fingerprint: Dict[str, Any]) -> str:
    """Content hash identifying one rendered artifact.

    ``fingerprint`` must carry everything that can change the rendered
    text (the sweep parameters fold in the result-cache schema and the
    generator version); the artifact schema is folded in here so bumping
    it invalidates old renders without explicit cleanup.
    """
    payload = {
        "schema": ARTIFACT_SCHEMA,
        "kind": kind,
        "fingerprint": fingerprint,
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ArtifactStore:
    """Every artifact kind under one root: the service's storage façade.

    One instance owns the result runs, lint reports, and rendered
    figure/table artifacts of a store directory (conversion sidecars
    share the same envelope helpers but live next to their output
    traces).  The per-kind views are the *same classes* the one-shot
    CLIs use, over the same root — so a sweep simulated by
    ``repro-experiment`` is a warm hit for ``repro-serve`` and vice
    versa.
    """

    def __init__(self, root: Optional[Union[str, Path]] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()
        self._artifacts: Optional[BlobStore] = None

    def result_cache(self) -> Any:
        """A :class:`~repro.experiments.cache.ResultCache` on this root."""
        from repro.experiments.cache import ResultCache

        return ResultCache(self.root)

    def lint_cache(self) -> Any:
        """A :class:`~repro.analysis.cache.LintCache` on this root."""
        from repro.analysis.cache import LintCache

        return LintCache(self.root)

    def artifacts(self) -> BlobStore:
        """The rendered figure/table blob store (one shared instance)."""
        if self._artifacts is None:
            self._artifacts = BlobStore(self.root, ARTIFACT_KIND)
        return self._artifacts

    def describe(self) -> str:
        return f"artifacts {self.artifacts().describe()}"
